"""Power modelling substrate: compute power, budgets, P-states, C-states, metrics.

This package contains the chip-level power machinery the paper's power-management
unit (PMU) relies on: the CV^2f + leakage power model of the compute domain, the
thermal-design-power (TDP) budget manager that splits the package budget across
domains (Sec. 1, Sec. 4.3), the P-state tables used to convert a power budget into
core/graphics frequencies (Sec. 4.4), the package C-states battery-life workloads
spend most of their time in (Sec. 7.3), and the energy / EDP metrics (Sec. 2.4).
"""

from repro.power.models import ComputePowerModel, ComputePowerBreakdown, SoCPowerModel
from repro.power.pstates import (
    build_cpu_vf_curve,
    build_gfx_vf_curve,
    build_cpu_pstates,
    build_gfx_pstates,
    max_pstate_within_budget,
)
from repro.power.cstates import CState, CStateResidency, HardwareDutyCycling
from repro.power.budget import PowerBudgetManager, DomainBudgets
from repro.power.energy import EnergyMetrics, energy_delay_product

__all__ = [
    "ComputePowerModel",
    "ComputePowerBreakdown",
    "SoCPowerModel",
    "build_cpu_vf_curve",
    "build_gfx_vf_curve",
    "build_cpu_pstates",
    "build_gfx_pstates",
    "max_pstate_within_budget",
    "CState",
    "CStateResidency",
    "HardwareDutyCycling",
    "PowerBudgetManager",
    "DomainBudgets",
    "EnergyMetrics",
    "energy_delay_product",
]
