"""TDP power-budget management (PBM) and budget-to-frequency planning.

A mobile SoC runs in a thermally-constrained envelope (TDP); the PMU's power budget
management algorithm distributes the package budget to the domains so that average
power stays within the TDP (Sec. 1).  Two behaviours matter for SysScale:

* **Baseline behaviour** (Observation 1): the IO and memory domains are allocated a
  *fixed* budget corresponding to their worst-case demand, regardless of actual
  utilization, and the compute domain gets whatever remains.
* **SysScale behaviour** (Sec. 4.3): when the IO/memory domains are scaled to a
  lower operating point, their (smaller) actual power is charged against the TDP
  and the freed budget is handed to the compute domain, whose PBM then raises the
  CPU or graphics frequency to the highest P-state that fits.

Within the compute domain, the PBM splits the budget between CPU cores and the
graphics engine according to the workload: for graphics workloads the cores
typically receive only 10-20 % of the compute budget and run at Pn (Sec. 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro import config
from repro.power.models import ActivityVector, ComputePowerModel
from repro.power.pstates import max_pstate_within_budget
from repro.soc.vf_curves import PState, PStateTable


@dataclass(frozen=True)
class DomainBudgets:
    """The package budget split across domains (watts)."""

    tdp: float
    compute: float
    io_memory: float
    platform_fixed: float

    def __post_init__(self) -> None:
        for name in ("tdp", "compute", "io_memory", "platform_fixed"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def allocated(self) -> float:
        """Sum of all allocations (should not exceed the TDP)."""
        return self.compute + self.io_memory + self.platform_fixed

    def as_dict(self) -> dict:
        """Flat dictionary view."""
        return {
            "tdp": self.tdp,
            "compute": self.compute,
            "io_memory": self.io_memory,
            "platform_fixed": self.platform_fixed,
        }


@dataclass(frozen=True)
class ComputePlan:
    """The compute-domain frequencies the PBM grants for a given budget."""

    cpu_state: PState
    gfx_state: PState
    projected_power: float

    def as_dict(self) -> dict:
        """Flat dictionary view."""
        return {
            "cpu_frequency_ghz": self.cpu_state.frequency / config.GHZ,
            "gfx_frequency_mhz": self.gfx_state.frequency / config.MHZ,
            "projected_power_w": self.projected_power,
        }


@dataclass
class PowerBudgetManager:
    """The PMU's power budget manager.

    Parameters
    ----------
    tdp:
        Package thermal design power in watts.
    compute_model:
        Power model used to project compute-domain power at candidate P-states.
    cpu_pstates / gfx_pstates:
        P-state tables of the CPU cores and the graphics engine.
    platform_fixed_power:
        Package power that no policy can reallocate.
    worst_case_io_memory_power:
        The fixed IO+memory reservation the *baseline* PBM makes (Observation 1).
    graphics_cpu_budget_share:
        Share of the compute budget given to the CPU cores when a graphics workload
        is running (Sec. 7.2: "10 % to 20 %"; the midpoint is used).
    """

    tdp: float
    compute_model: ComputePowerModel
    cpu_pstates: PStateTable
    gfx_pstates: PStateTable
    platform_fixed_power: float = config.PLATFORM_FIXED_POWER
    worst_case_io_memory_power: float = config.BASELINE_IO_MEMORY_RESERVATION
    graphics_cpu_budget_share: float = 0.15

    def __post_init__(self) -> None:
        if self.tdp <= 0:
            raise ValueError("TDP must be positive")
        if self.platform_fixed_power < 0 or self.worst_case_io_memory_power < 0:
            raise ValueError("power reservations must be non-negative")
        if not 0.0 < self.graphics_cpu_budget_share < 1.0:
            raise ValueError("graphics CPU budget share must be in (0, 1)")

    # ------------------------------------------------------------------
    # Budget computation
    # ------------------------------------------------------------------
    def budgets(self, io_memory_allocation: Optional[float] = None) -> DomainBudgets:
        """Split the TDP given an IO+memory allocation.

        ``io_memory_allocation`` defaults to the worst-case reservation, which is
        what the baseline PBM does; SysScale passes the *actual* (predicted) power
        of the IO and memory domains at the chosen operating point instead.
        """
        if io_memory_allocation is None:
            io_memory_allocation = self.worst_case_io_memory_power
        if io_memory_allocation < 0:
            raise ValueError("IO+memory allocation must be non-negative")
        compute = max(0.0, self.tdp - self.platform_fixed_power - io_memory_allocation)
        return DomainBudgets(
            tdp=self.tdp,
            compute=compute,
            io_memory=io_memory_allocation,
            platform_fixed=self.platform_fixed_power,
        )

    def redistributed_budget(self, saved_io_memory_power: float) -> DomainBudgets:
        """Budgets after handing ``saved_io_memory_power`` watts back to compute."""
        if saved_io_memory_power < 0:
            raise ValueError("saved power must be non-negative")
        allocation = max(0.0, self.worst_case_io_memory_power - saved_io_memory_power)
        return self.budgets(allocation)

    # ------------------------------------------------------------------
    # Compute-domain planning
    # ------------------------------------------------------------------
    def plan_cpu_centric(
        self, compute_budget: float, activity: ActivityVector
    ) -> ComputePlan:
        """Pick frequencies for a CPU-centric workload: graphics stays at its base.

        The graphics engine is parked at its lowest state; the CPU cluster gets the
        remaining budget after the uncore and graphics floors are charged.
        """
        self._check_budget(compute_budget)
        gfx_state = self.gfx_pstates.min_state
        gfx_power = self.compute_model.gfx_power(
            gfx_state.frequency, activity=min(activity.gfx_activity, 0.2)
        )
        uncore_power = self.compute_model.uncore_power(activity.cpu_activity * 0.6)
        cpu_budget = max(0.0, compute_budget - gfx_power - uncore_power)
        cpu_state = max_pstate_within_budget(
            self.cpu_pstates,
            lambda state: self.compute_model.cpu_power(
                state.frequency,
                activity=activity.cpu_activity,
                active_cores=activity.active_cores,
            ),
            cpu_budget,
        )
        projected = (
            self.compute_model.cpu_power(
                cpu_state.frequency,
                activity=activity.cpu_activity,
                active_cores=activity.active_cores,
            )
            + gfx_power
            + uncore_power
        )
        return ComputePlan(cpu_state=cpu_state, gfx_state=gfx_state, projected_power=projected)

    def plan_graphics_centric(
        self, compute_budget: float, activity: ActivityVector
    ) -> ComputePlan:
        """Pick frequencies for a graphics workload: CPU parked at Pn, GFX gets the rest.

        Sec. 7.2: during graphics workloads the PBM allocates only 10-20 % of the
        compute budget to the CPU cores, which run at the most efficient frequency
        Pn; the graphics engine consumes the remainder.
        """
        self._check_budget(compute_budget)
        cpu_state = self.cpu_pstates.pn
        cpu_share = compute_budget * self.graphics_cpu_budget_share
        cpu_power = self.compute_model.cpu_power(
            cpu_state.frequency,
            activity=min(activity.cpu_activity, 0.6),
            active_cores=activity.active_cores,
        )
        cpu_power = min(cpu_power, cpu_share) if cpu_share > 0 else cpu_power
        uncore_power = self.compute_model.uncore_power(activity.gfx_activity * 0.5)
        gfx_budget = max(0.0, compute_budget - cpu_power - uncore_power)
        gfx_state = max_pstate_within_budget(
            self.gfx_pstates,
            lambda state: self.compute_model.gfx_power(
                state.frequency, activity=activity.gfx_activity
            ),
            gfx_budget,
        )
        projected = (
            cpu_power
            + uncore_power
            + self.compute_model.gfx_power(gfx_state.frequency, activity=activity.gfx_activity)
        )
        return ComputePlan(cpu_state=cpu_state, gfx_state=gfx_state, projected_power=projected)

    def plan_fixed_performance(self) -> ComputePlan:
        """Plan for battery-life workloads: both CPU and GFX at their efficient floor.

        Battery-life workloads have fixed performance demands (Sec. 7.3); the
        compute domain runs at the lowest possible frequencies regardless of budget.
        """
        cpu_state = self.cpu_pstates.pn
        gfx_state = self.gfx_pstates.min_state
        projected = self.compute_model.cpu_power(
            cpu_state.frequency, activity=0.3
        ) + self.compute_model.gfx_power(gfx_state.frequency, activity=0.3)
        return ComputePlan(cpu_state=cpu_state, gfx_state=gfx_state, projected_power=projected)

    def plan(
        self,
        compute_budget: float,
        activity: ActivityVector,
        graphics_centric: bool = False,
        fixed_performance: bool = False,
    ) -> ComputePlan:
        """Dispatch to the appropriate planning strategy."""
        if fixed_performance:
            return self.plan_fixed_performance()
        if graphics_centric:
            return self.plan_graphics_centric(compute_budget, activity)
        return self.plan_cpu_centric(compute_budget, activity)

    # ------------------------------------------------------------------
    # Request demotion (Sec. 4.4)
    # ------------------------------------------------------------------
    def demote_request(
        self,
        requested: PState,
        table: PStateTable,
        power_of_state,
        budget: float,
    ) -> Tuple[PState, bool]:
        """Grant ``requested`` if it fits ``budget``, else demote to the highest fit.

        Returns the granted state and whether a demotion happened.  This mirrors
        Sec. 4.4: "If the request violates the power budget, then PBM demotes the
        request and places the requestor in a safe lower frequency".
        """
        self._check_budget(budget)
        if power_of_state(requested) <= budget + 1e-12:
            return requested, False
        granted = max_pstate_within_budget(table, power_of_state, budget)
        if granted.frequency > requested.frequency:
            granted = requested
        return granted, True

    @staticmethod
    def _check_budget(budget: float) -> None:
        if budget < 0:
            raise ValueError("power budget must be non-negative")
