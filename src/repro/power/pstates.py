"""P-state tables for the compute domain and budget-to-frequency mapping.

DVFS states of the CPU cores and graphics engines are known as P-states
(Sec. 4.4).  The OS / graphics driver request them, and the compute-domain power
budget manager (PBM) grants the highest state that fits the domain's power budget.
This module builds Skylake-Y-like V/F curves and P-state tables for the cores and
the graphics engine, and provides the "highest P-state within a power budget"
search that converts a redistributed power budget into a frequency increase --
the mechanism by which SysScale turns IO/memory power savings into compute
performance (Sec. 4.3).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import config
from repro.soc.vf_curves import PState, PStateTable, VFCurve


#: CPU core P-state frequencies for a Skylake-Y class part (Hz).  The 2.9 GHz top
#: bin corresponds to the single-core turbo of the M-6Y75; the 0.4 GHz bottom bin
#: is the lowest frequency exposed to the OS.
DEFAULT_CPU_FREQUENCIES = tuple(
    config.mhz(f) for f in (400, 600, 800, 1000, 1200, 1400, 1500, 1600, 1700, 1800,
                            1900, 2000, 2100, 2200, 2300, 2400, 2500, 2600, 2700,
                            2800, 2900)
)

#: Graphics engine P-state frequencies (Hz); 300 MHz base up to 1.0 GHz max turbo.
DEFAULT_GFX_FREQUENCIES = tuple(
    config.mhz(f) for f in (300, 350, 400, 450, 500, 550, 600, 650, 700, 750, 800,
                            850, 900, 950, 1000)
)


def build_cpu_vf_curve() -> VFCurve:
    """Minimum-voltage curve of the CPU cores.

    The curve has a flat Vmin region at low frequencies (the most efficient
    operating region, ``Pn``) and rises roughly linearly towards the turbo bins.
    """
    return VFCurve.from_points(
        [
            (config.mhz(400), 0.58),
            (config.mhz(800), 0.58),
            (config.ghz(1.2), 0.65),
            (config.ghz(1.8), 0.76),
            (config.ghz(2.4), 0.89),
            (config.ghz(2.9), 1.02),
        ]
    )


def build_gfx_vf_curve() -> VFCurve:
    """Minimum-voltage curve of the graphics engine."""
    return VFCurve.from_points(
        [
            (config.mhz(300), 0.56),
            (config.mhz(450), 0.56),
            (config.mhz(600), 0.64),
            (config.mhz(800), 0.74),
            (config.mhz(1000), 0.86),
        ]
    )


def build_cpu_pstates(frequencies: Sequence[float] = DEFAULT_CPU_FREQUENCIES) -> PStateTable:
    """P-state table of the CPU cores, sampled from the CPU V/F curve."""
    return PStateTable.from_curve(build_cpu_vf_curve(), frequencies, prefix="P")


def build_gfx_pstates(frequencies: Sequence[float] = DEFAULT_GFX_FREQUENCIES) -> PStateTable:
    """P-state table of the graphics engine, sampled from the GFX V/F curve."""
    return PStateTable.from_curve(build_gfx_vf_curve(), frequencies, prefix="GP")


def max_pstate_within_budget(
    table: PStateTable,
    power_at_state: Callable[[PState], float],
    budget: float,
) -> PState:
    """Return the highest-frequency P-state whose projected power fits ``budget``.

    ``power_at_state`` maps a P-state to the projected power of the component (and
    anything that must scale with it) at that state.  If even the lowest state
    exceeds the budget, the lowest state is returned -- the PBM cannot turn the
    cores off, it "places the requestor in a safe lower frequency" (Sec. 4.4).
    """
    if budget < 0:
        raise ValueError("power budget must be non-negative")
    best = table.min_state
    for state in table:
        if power_at_state(state) <= budget + 1e-12:
            best = state
    return best
