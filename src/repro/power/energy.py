"""Energy, average power, and energy-delay-product metrics.

The paper uses three evaluation metrics (Sec. 6): benchmark score / frames-per-
second for performance, average power for battery-life workloads, and the energy-
delay product (EDP, [23]) as the combined energy-efficiency metric -- "the lower
the EDP the better the energy efficiency" (footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass


def energy_delay_product(energy_joules: float, delay_seconds: float) -> float:
    """Energy-delay product (J*s).  Lower is better (footnote 2)."""
    if energy_joules < 0 or delay_seconds < 0:
        raise ValueError("energy and delay must be non-negative")
    return energy_joules * delay_seconds


@dataclass(frozen=True)
class EnergyMetrics:
    """Summary metrics of one simulation run."""

    energy_joules: float
    execution_time_seconds: float

    def __post_init__(self) -> None:
        if self.energy_joules < 0:
            raise ValueError("energy must be non-negative")
        if self.execution_time_seconds <= 0:
            raise ValueError("execution time must be positive")

    @property
    def average_power(self) -> float:
        """Average power in watts."""
        return self.energy_joules / self.execution_time_seconds

    @property
    def edp(self) -> float:
        """Energy-delay product in joule-seconds."""
        return energy_delay_product(self.energy_joules, self.execution_time_seconds)

    @property
    def performance(self) -> float:
        """Performance expressed as 1 / execution time (higher is better)."""
        return 1.0 / self.execution_time_seconds

    # ------------------------------------------------------------------
    # Relative comparisons (policy vs. baseline)
    # ------------------------------------------------------------------
    def speedup_over(self, baseline: "EnergyMetrics") -> float:
        """Performance ratio over ``baseline`` (>1 means faster)."""
        return baseline.execution_time_seconds / self.execution_time_seconds

    def performance_improvement_over(self, baseline: "EnergyMetrics") -> float:
        """Fractional performance improvement over ``baseline`` (0.092 = +9.2 %)."""
        return self.speedup_over(baseline) - 1.0

    def power_reduction_vs(self, baseline: "EnergyMetrics") -> float:
        """Fractional average-power reduction vs. ``baseline`` (0.107 = -10.7 %)."""
        if baseline.average_power <= 0:
            raise ValueError("baseline average power must be positive")
        return 1.0 - self.average_power / baseline.average_power

    def energy_reduction_vs(self, baseline: "EnergyMetrics") -> float:
        """Fractional energy reduction vs. ``baseline``."""
        if baseline.energy_joules <= 0:
            raise ValueError("baseline energy must be positive")
        return 1.0 - self.energy_joules / baseline.energy_joules

    def edp_improvement_over(self, baseline: "EnergyMetrics") -> float:
        """Fractional EDP improvement over ``baseline`` (positive = better)."""
        if self.edp <= 0:
            raise ValueError("EDP must be positive")
        return 1.0 - self.edp / baseline.edp

    def as_dict(self) -> dict:
        """Flat dictionary view."""
        return {
            "energy_j": self.energy_joules,
            "time_s": self.execution_time_seconds,
            "average_power_w": self.average_power,
            "edp_js": self.edp,
        }
