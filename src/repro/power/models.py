"""Compute-domain and whole-SoC power models.

The compute domain (CPU cores, graphics engines, LLC/ring) is modelled with the
classic decomposition of dynamic power ``C_eff * V^2 * f * activity`` plus leakage
``k * V^2`` per component (Sec. 2.4).  The whole-SoC model stitches the compute
model and the memory/IO model (``repro.memory.power``) together and adds the fixed
platform power, returning per-domain breakdowns that the experiments and the power
budget manager consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from repro import config
from repro.memory.mrc import MrcRegisterFile
from repro.memory.power import MemoryPowerBreakdown, MemoryPowerModel
from repro.soc.components import CpuCluster, GraphicsEngine, Uncore
from repro.soc.domains import SoCState
from repro.soc.vf_curves import VFCurve


@dataclass(frozen=True)
class ActivityVector:
    """Instantaneous utilization of the SoC blocks, all in [0, 1] except bandwidth.

    Parameters
    ----------
    cpu_activity:
        Switching activity of the active CPU cores (1.0 = fully busy).
    gfx_activity:
        Switching activity of the graphics engine.
    io_activity:
        Activity of the IO engines (display refresh, ISP streaming, ...).
    memory_bandwidth:
        Main-memory traffic in bytes/second (cores + graphics + IO agents).
    active_cores:
        Number of CPU cores that are not clock-gated.
    """

    cpu_activity: float = 1.0
    gfx_activity: float = 0.0
    io_activity: float = 0.3
    memory_bandwidth: float = 0.0
    active_cores: int = config.SKYLAKE_CORE_COUNT

    def __post_init__(self) -> None:
        for name in ("cpu_activity", "gfx_activity", "io_activity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.memory_bandwidth < 0:
            raise ValueError("memory bandwidth must be non-negative")
        if self.active_cores < 0:
            raise ValueError("active core count must be non-negative")

    @classmethod
    def idle(cls) -> "ActivityVector":
        """An all-idle activity vector (used for package C-state modelling)."""
        return cls(cpu_activity=0.0, gfx_activity=0.0, io_activity=0.0,
                   memory_bandwidth=0.0, active_cores=0)


@dataclass(frozen=True)
class ComputePowerBreakdown:
    """Per-component power of the compute domain, in watts."""

    cpu_cores: float
    graphics: float
    uncore: float

    def __post_init__(self) -> None:
        for component_field in fields(self):
            if getattr(self, component_field.name) < 0:
                raise ValueError(f"{component_field.name} must be non-negative")

    @property
    def total(self) -> float:
        """Total compute-domain power in watts."""
        return self.cpu_cores + self.graphics + self.uncore

    def as_dict(self) -> dict:
        """Flat dictionary view including the total."""
        return {
            "cpu_cores": self.cpu_cores,
            "graphics": self.graphics,
            "uncore": self.uncore,
            "total": self.total,
        }


@dataclass
class ComputePowerModel:
    """Power model of the compute domain (CPU cores, graphics engine, uncore)."""

    cpu: CpuCluster
    gfx: GraphicsEngine
    uncore: Uncore
    cpu_curve: VFCurve
    gfx_curve: VFCurve
    uncore_frequency: float = config.ghz(1.0)
    uncore_voltage: float = 0.75

    def __post_init__(self) -> None:
        if self.uncore_frequency <= 0 or self.uncore_voltage <= 0:
            raise ValueError("uncore frequency and voltage must be positive")

    def cpu_power(
        self,
        frequency: float,
        activity: float = 1.0,
        active_cores: Optional[int] = None,
        voltage: Optional[float] = None,
    ) -> float:
        """Power of the CPU cluster at ``frequency`` (voltage from the V/F curve)."""
        if voltage is None:
            voltage = self.cpu_curve.voltage_at(frequency)
        return self.cpu.cluster_power(voltage, frequency, active_cores, activity)

    def gfx_power(
        self,
        frequency: float,
        activity: float = 1.0,
        voltage: Optional[float] = None,
    ) -> float:
        """Power of the graphics engine at ``frequency``."""
        if voltage is None:
            voltage = self.gfx_curve.voltage_at(frequency)
        return self.gfx.total_power(voltage, frequency, activity)

    def uncore_power(self, activity: float = 0.5) -> float:
        """Power of the LLC + ring fabric (roughly constant clock on Skylake-Y)."""
        return self.uncore.total_power(self.uncore_voltage, self.uncore_frequency, activity)

    def breakdown(self, state: SoCState, activity: ActivityVector) -> ComputePowerBreakdown:
        """Per-component compute power for a given SoC state and activity vector."""
        if activity.active_cores == 0 and activity.cpu_activity == 0.0:
            cpu_power = self.cpu.core_count * self.cpu.leakage_power(
                self.cpu_curve.vmin
            )
        else:
            cpu_power = self.cpu_power(
                state.cpu_frequency,
                activity=activity.cpu_activity,
                active_cores=min(activity.active_cores, self.cpu.core_count),
            )
        gfx_power = self.gfx_power(state.gfx_frequency, activity=activity.gfx_activity)
        uncore_activity = max(
            activity.cpu_activity * 0.6,
            activity.gfx_activity * 0.5,
            min(1.0, activity.memory_bandwidth / config.LPDDR3_PEAK_BANDWIDTH),
        )
        return ComputePowerBreakdown(
            cpu_cores=cpu_power,
            graphics=gfx_power,
            uncore=self.uncore_power(uncore_activity),
        )

    def total(self, state: SoCState, activity: ActivityVector) -> float:
        """Total compute-domain power in watts."""
        return self.breakdown(state, activity).total


@dataclass(frozen=True)
class SoCPowerBreakdown:
    """Whole-package power split into the three domains plus fixed platform power."""

    compute: ComputePowerBreakdown
    memory_io: MemoryPowerBreakdown
    platform_fixed: float

    @property
    def compute_domain(self) -> float:
        """Compute-domain power (watts)."""
        return self.compute.total

    @property
    def io_domain(self) -> float:
        """IO-domain power (watts)."""
        return self.memory_io.io_domain

    @property
    def memory_domain(self) -> float:
        """Memory-domain power (watts)."""
        return self.memory_io.memory_domain

    @property
    def total(self) -> float:
        """Total package power (watts)."""
        return self.compute.total + self.memory_io.total + self.platform_fixed

    def as_dict(self) -> dict:
        """Flat dictionary view for result tables."""
        return {
            "compute_domain": self.compute_domain,
            "io_domain": self.io_domain,
            "memory_domain": self.memory_domain,
            "platform_fixed": self.platform_fixed,
            "total": self.total,
        }


@dataclass
class SoCPowerModel:
    """Whole-SoC power model: compute + memory/IO + fixed platform power."""

    compute: ComputePowerModel
    memory: MemoryPowerModel
    platform_fixed_power: float = config.PLATFORM_FIXED_POWER
    mrc: Optional[MrcRegisterFile] = None

    def __post_init__(self) -> None:
        if self.platform_fixed_power < 0:
            raise ValueError("platform fixed power must be non-negative")

    def breakdown(self, state: SoCState, activity: ActivityVector) -> SoCPowerBreakdown:
        """Per-domain power breakdown for a given SoC state and activity vector."""
        compute = self.compute.breakdown(state, activity)
        memory_io = self.memory.breakdown(
            dram_frequency=state.dram_frequency,
            interconnect_frequency=state.interconnect_frequency,
            v_sa_scale=state.v_sa_scale,
            v_io_scale=state.v_io_scale,
            bandwidth=activity.memory_bandwidth,
            io_activity=activity.io_activity,
            in_self_refresh=state.dram_in_self_refresh,
            mrc=self.mrc,
        )
        return SoCPowerBreakdown(
            compute=compute,
            memory_io=memory_io,
            platform_fixed=self.platform_fixed_power,
        )

    def total(self, state: SoCState, activity: ActivityVector) -> float:
        """Total package power (watts)."""
        return self.breakdown(state, activity).total

    def io_memory_power(self, state: SoCState, activity: ActivityVector) -> float:
        """Combined IO + memory domain power (watts) -- the pool SysScale can shrink."""
        breakdown = self.breakdown(state, activity)
        return breakdown.io_domain + breakdown.memory_domain
