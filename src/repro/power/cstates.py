"""Package C-states, residency profiles, and hardware duty cycling.

Battery-life workloads (Sec. 7.3) have fixed performance demands and long idle
phases: the SoC is in the active C0 state only 10-40 % of the time and spends the
rest in package idle states (C2, C6, C7, C8).  DRAM is active (and therefore
subject to SysScale's DVFS) only in C0 and C2; in deeper states DRAM is in
self-refresh and the compute domain is clock- or power-gated.

Hardware duty cycling (HDC, footnote 10) reduces the *effective* CPU frequency
below Pn at very low TDPs by periodically forcing idle states, which is modelled
here as a duty-cycle multiplier on active residency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro import config


class CState(str, enum.Enum):
    """Package power states referenced by the paper (Sec. 7.3, [24, 26, 27, 101])."""

    C0 = "C0"
    C2 = "C2"
    C6 = "C6"
    C7 = "C7"
    C8 = "C8"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Whether DRAM is active (out of self-refresh) in each package state (Sec. 7.3).
DRAM_ACTIVE_STATES = frozenset({CState.C0, CState.C2})

#: Residual package power (compute domain + always-on logic, excluding the IO and
#: memory domains) in each idle state, watts.
IDLE_PACKAGE_POWER: Dict[CState, float] = {
    CState.C2: config.PACKAGE_C2_POWER,
    CState.C6: config.PACKAGE_C6_POWER,
    CState.C7: config.PACKAGE_C7_POWER,
    CState.C8: config.PACKAGE_C8_POWER,
}


@dataclass(frozen=True)
class CStateResidency:
    """A residency profile: the fraction of time spent in each package state.

    Residencies must sum to 1.  The paper quotes, for video playback, residencies
    of 10 % C0, 5 % C2, and 85 % C8 (Sec. 7.3).
    """

    residencies: Mapping[CState, float] = field(
        default_factory=lambda: {CState.C0: 1.0}
    )

    def __post_init__(self) -> None:
        total = sum(self.residencies.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"residencies must sum to 1, got {total}")
        for state, value in self.residencies.items():
            if not isinstance(state, CState):
                raise TypeError("residency keys must be CState members")
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"residency of {state} must be in [0, 1]")

    @classmethod
    def active_only(cls) -> "CStateResidency":
        """A profile that is 100 % C0 (CPU and graphics benchmarks)."""
        return cls({CState.C0: 1.0})

    @classmethod
    def video_playback(cls) -> "CStateResidency":
        """The C0/C2/C8 = 10/5/85 % profile quoted for video playback (Sec. 7.3)."""
        return cls({CState.C0: 0.10, CState.C2: 0.05, CState.C8: 0.85})

    def fraction(self, state: CState) -> float:
        """Residency of ``state`` (0 if not present)."""
        return self.residencies.get(state, 0.0)

    @property
    def active_fraction(self) -> float:
        """Fraction of time in C0."""
        return self.fraction(CState.C0)

    @property
    def dram_active_fraction(self) -> float:
        """Fraction of time DRAM is out of self-refresh (C0 + C2).

        This bounds how much of the time SysScale's IO/memory DVFS can matter for a
        battery-life workload (Sec. 7.3, third observation).
        """
        return sum(self.fraction(state) for state in DRAM_ACTIVE_STATES)

    @property
    def idle_fraction(self) -> float:
        """Fraction of time in any non-C0 state."""
        return 1.0 - self.active_fraction

    def idle_package_power(self) -> float:
        """Average residual package power contributed by the idle states (watts)."""
        return sum(
            self.fraction(state) * IDLE_PACKAGE_POWER.get(state, 0.0)
            for state in self.residencies
            if state is not CState.C0
        )

    def scaled_active(self, active_fraction: float) -> "CStateResidency":
        """Return a profile with C0 residency set to ``active_fraction``.

        The non-C0 states keep their relative proportions.  Used to model
        race-to-sleep effects when compute frequency changes.
        """
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError("active fraction must be in (0, 1]")
        current_idle = self.idle_fraction
        if current_idle <= 0.0:
            return CStateResidency({CState.C0: 1.0})
        new_idle = 1.0 - active_fraction
        scale = new_idle / current_idle
        scaled = {CState.C0: active_fraction}
        for state, value in self.residencies.items():
            if state is CState.C0:
                continue
            scaled[state] = value * scale
        return CStateResidency(scaled)


@dataclass(frozen=True)
class HardwareDutyCycling:
    """Hardware duty cycling (HDC / SoC duty cycling, footnote 10).

    At very low TDPs the effective CPU frequency is reduced below Pn by forcing
    coarse-grained idle periods (C-states with power gating).  The model expresses
    this as a duty cycle in (0, 1]: effective frequency = duty_cycle * frequency.
    """

    duty_cycle: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in (0, 1]")

    def effective_frequency(self, frequency: float) -> float:
        """Effective (time-averaged) frequency under duty cycling."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.duty_cycle * frequency

    def average_power(self, active_power: float, gated_power: float = 0.0) -> float:
        """Time-averaged power when duty-cycling between active and gated power."""
        if active_power < 0 or gated_power < 0:
            raise ValueError("power values must be non-negative")
        return self.duty_cycle * active_power + (1.0 - self.duty_cycle) * gated_power
