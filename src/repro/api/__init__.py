"""The programmatic facade over the experiment registry and runtime.

:class:`Session` bundles everything the CLI wires together -- executor, result
cache, platform/context construction -- behind one object, so scripts and
notebooks drive experiments in two lines::

    from repro.api import Session

    session = Session(jobs=8)                      # 8 worker processes, cached
    report = session.run("fig7", quick=True)       # an ExperimentReport
    print(report["average"]["sysscale"])           # legacy dict access works
    print(session.summary())                       # "... 0 simulated ..." warm

Reports are structured (:class:`~repro.experiments.report.ExperimentReport`);
export them with :func:`~repro.experiments.report.render_json` /
:func:`~repro.experiments.report.render_csv` / ``report.to_dict()``.

Single simulations go through the same runtime (and therefore the same cache
and process pool) via :meth:`Session.simulate`::

    result = session.simulate("spec", "sysscale", name="470.lbm", duration=1.0)

The context -- platform build plus threshold calibration, the expensive part --
is constructed lazily on first use and shared across every ``run``/``simulate``
call of the session.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.api import ExperimentSpec, get_spec, registry
from repro.hw import HardwareSpec, resolve_hardware
from repro.experiments.report import (
    ExperimentReport,
    Metric,
    RunInfo,
    Series,
    Table,
    render_csv,
    render_json,
    render_text,
)
from repro.experiments.runner import ExperimentContext, ExperimentRuntime, build_context
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.executor import make_executor
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.sim.engine import SimulationConfig
from repro.sim.result import SimulationResult

__all__ = [
    "ExperimentReport",
    "ExperimentSpec",
    "HardwareSpec",
    "Metric",
    "RunInfo",
    "Series",
    "Session",
    "Table",
    "registry",
    "render_csv",
    "render_json",
    "render_text",
]


class Session:
    """One configured runtime + context, shared across experiment runs.

    Parameters
    ----------
    jobs:
        Worker processes (1 = serial in-process execution, the default).
    cache_dir:
        Result-cache directory; defaults to ``.repro-cache`` (or
        ``$REPRO_CACHE_DIR``).  Pass ``cache=False`` to disable caching.
    cache:
        Whether to consult/populate the content-addressed result cache.
    platform:
        The hardware description the session simulates: a registered name
        (``"skylake"``, ``"broadwell"``, ``python -m repro hw list``), a
        :class:`~repro.hw.HardwareSpec`, or ``None`` for the default Skylake.
    overrides:
        Hardware derivation deltas applied over ``platform`` (the
        :meth:`HardwareSpec.derive` keywords, e.g. ``{"tdp": 5.5}`` or
        ``{"uncore_leakage_coeff_scale": 1.08}``).
    tdp:
        Package TDP in watts for the session platform (shorthand for the
        corresponding ``overrides`` entry).
    duration:
        Default workload-trace duration in seconds.
    max_time:
        Optional cap on simulated time per run (smoke-run scaling).
    progress:
        Optional per-job progress callback (see ``repro.runtime.executor``).
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        cache: bool = True,
        platform: Optional[object] = None,
        overrides: Optional[Dict[str, object]] = None,
        tdp: Optional[float] = None,
        duration: float = 1.0,
        max_time: Optional[float] = None,
        progress=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        self.runtime = ExperimentRuntime(
            executor=make_executor(jobs),
            cache=ResultCache(cache_dir or default_cache_dir()) if cache else None,
            progress=progress,
        )
        hardware = resolve_hardware(platform)
        if overrides:
            hardware = hardware.derive(**overrides)
        self._hardware = hardware
        self._tdp = tdp
        self._duration = duration
        self._max_time = max_time
        self._context: Optional[ExperimentContext] = None

    @property
    def hardware(self) -> HardwareSpec:
        """The session's hardware description (before any ``tdp`` shorthand)."""
        return self._hardware

    # ------------------------------------------------------------------
    @property
    def context(self) -> ExperimentContext:
        """The lazily built experiment context (platform + calibration)."""
        if self._context is None:
            self._context = build_context(
                tdp=self._tdp,
                workload_duration=self._duration,
                sim_config=(
                    SimulationConfig(max_simulated_time=self._max_time)
                    if self._max_time
                    else None
                ),
                runtime=self.runtime,
                hardware=self._hardware,
            )
        return self._context

    def run(self, target: str, *, quick: bool = False, **params) -> ExperimentReport:
        """Run one registered experiment and return its structured report.

        ``params`` are the extra overrides the target's spec declares (e.g.
        ``subset=...`` for ``fig7``); unknown parameters raise ``TypeError``
        listing what the spec accepts.
        """
        return get_spec(target).run(self.context, quick=quick, **params)

    def simulate(
        self,
        trace: str,
        policy: str = "sysscale",
        *,
        peripherals: Optional[str] = None,
        policy_params: Optional[Dict[str, object]] = None,
        **trace_params,
    ) -> SimulationResult:
        """Run one (trace, policy) simulation through the session runtime.

        ``trace`` and ``policy`` are registered builder names (see ``python -m
        repro list``); ``trace_params`` are the builder's keyword parameters::

            session.simulate("spec", "baseline", name="470.lbm", duration=0.5)
            session.simulate("battery_life", name="video_playback",
                             peripherals="single_4k")
        """
        job = self.context.simulation_job(
            TraceSpec.make(trace, **trace_params),
            PolicySpec.make(policy, **(policy_params or {})),
            peripherals=peripherals,
        )
        return self.runtime.simulate([job])[0]

    def specs(self) -> Dict[str, ExperimentSpec]:
        """Every registered experiment spec, by target name."""
        return dict(registry())

    @property
    def metrics(self):
        """The runtime's :class:`~repro.obs.metrics.MetricsRegistry`.

        Always live (independent of ambient ``repro.obs`` state): job
        accounting, batch latencies, and engine loop totals accumulate here
        across every ``run``/``simulate`` call.  ``session.metrics.snapshot()``
        returns the JSON-able view.
        """
        return self.runtime.metrics

    def summary(self) -> str:
        """The runtime accounting line (submitted / unique / simulated / hits)."""
        return self.runtime.summary()

    def close(self) -> None:
        """Shut down the session's worker pool (if any).

        Parallel sessions keep one warm process pool alive across every
        ``run``/``simulate`` call; ``close`` releases it deterministically.
        The session remains usable -- the next parallel batch simply starts a
        fresh pool.
        """
        self.runtime.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        cache = self.runtime.cache.root if self.runtime.cache else "disabled"
        return f"Session(runtime={self.runtime.summary()!r}, cache={cache!r})"
