"""SysScale power-management (DVFS transition) flow -- Fig. 5 and Sec. 5.

The flow carries out the actual multi-domain voltage/frequency change.  Its nine
steps, in order:

1. the demand-prediction mechanism determines the target frequencies/voltages;
2. if frequencies *increase*, raise V_SA / V_IO first;
3. block and drain the IO interconnect and the LLC-to-memory-controller traffic;
4. put DRAM into self-refresh;
5. load the optimized MRC values for the new DRAM frequency from on-chip SRAM
   into the memory-controller, DDRIO, and DRAM configuration registers;
6. re-lock the PLLs/DLLs to the new frequencies;
7. if frequencies *decrease*, lower V_SA / V_IO now (after the clocks slowed);
8. DRAM exits self-refresh;
9. release the IO interconnect and the LLC traffic.

The total latency budget is under 10 us (Sec. 5): ~2 us of voltage slewing at
50 mV/us over ~100 mV, <1 us of interconnect drain, <5 us of self-refresh exit
with fast re-training, <1 us of MRC load from SRAM, and <1 us of firmware
overhead.  Voltage moves of V_SA and V_IO are performed in parallel, so the flow
pays the slower of the two.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import config
from repro.core.operating_points import OperatingPoint
from repro.memory.dram import DramDevice
from repro.memory.mrc import MrcRegisterFile, MrcSram
from repro.soc.interconnect import BlockDrainInterconnect
from repro.soc.vr import RailName, RailSet


class FlowStep(str, enum.Enum):
    """The steps of the Fig. 5 flow, in execution order."""

    DEMAND_PREDICTION = "demand_prediction"
    RAISE_VOLTAGES = "raise_voltages"
    BLOCK_AND_DRAIN = "block_and_drain"
    ENTER_SELF_REFRESH = "enter_self_refresh"
    LOAD_MRC = "load_mrc"
    RELOCK_PLLS = "relock_plls"
    LOWER_VOLTAGES = "lower_voltages"
    EXIT_SELF_REFRESH = "exit_self_refresh"
    RELEASE = "release"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TransitionReport:
    """What one transition did and how long each step took (seconds)."""

    source: str
    target: str
    increasing_frequency: bool
    step_latencies: Dict[FlowStep, float]
    mrc_reloaded: bool

    @property
    def total_latency(self) -> float:
        """Total transition latency in seconds."""
        return sum(self.step_latencies.values())

    @property
    def within_budget(self) -> bool:
        """True when the transition met the < 10 us budget of Sec. 5."""
        return self.total_latency <= config.TRANSITION_TOTAL_LATENCY_BUDGET + 1e-12

    def as_dict(self) -> dict:
        """Flat summary (latencies in microseconds)."""
        return {
            "source": self.source,
            "target": self.target,
            "increasing_frequency": self.increasing_frequency,
            "total_latency_us": self.total_latency / config.US,
            "within_budget": self.within_budget,
            **{
                f"{step.value}_us": latency / config.US
                for step, latency in self.step_latencies.items()
            },
        }


@dataclass
class TransitionFlow:
    """Executes the Fig. 5 flow against the platform's hardware models.

    Parameters
    ----------
    rails:
        The SoC voltage-regulator set (V_SA and V_IO are moved, in parallel).
    interconnect:
        The block-and-drain IO interconnect.
    dram:
        The DRAM device (self-refresh entry/exit, frequency-bin switch).
    mrc_sram / mrc_registers:
        Where the per-frequency MRC sets live and the live register file they are
        copied into (Fig. 5, step 5).
    firmware_latency:
        Fixed firmware and miscellaneous flow overhead (Sec. 5: < 1 us).
    pll_relock_latency:
        PLL/DLL re-lock time; overlapped with the self-refresh window in the real
        flow, modelled as a small separate cost here.
    """

    rails: RailSet
    interconnect: BlockDrainInterconnect
    dram: DramDevice
    mrc_sram: MrcSram
    mrc_registers: MrcRegisterFile
    firmware_latency: float = config.TRANSITION_FIRMWARE_LATENCY
    pll_relock_latency: float = 0.3 * config.US
    fast_self_refresh_training: bool = True
    _history: List[TransitionReport] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.firmware_latency < 0 or self.pll_relock_latency < 0:
            raise ValueError("latencies must be non-negative")

    # ------------------------------------------------------------------
    # Flow execution
    # ------------------------------------------------------------------
    def execute(
        self, source: OperatingPoint, target: OperatingPoint
    ) -> TransitionReport:
        """Run the full flow from ``source`` to ``target`` and return the report."""
        increasing = target.dram_frequency > source.dram_frequency
        latencies: Dict[FlowStep, float] = {}

        # Step 1: demand prediction already happened (the caller decided); charge
        # only firmware overhead here.
        latencies[FlowStep.DEMAND_PREDICTION] = self.firmware_latency

        voltage_targets = {
            RailName.V_SA: self.rails[RailName.V_SA].nominal_voltage * target.v_sa_scale,
            RailName.V_IO: self.rails[RailName.V_IO].nominal_voltage * target.v_io_scale,
        }

        # Step 2: raise voltages before the clocks speed up.
        if increasing:
            latencies[FlowStep.RAISE_VOLTAGES] = self.rails.apply(voltage_targets)
        else:
            latencies[FlowStep.RAISE_VOLTAGES] = 0.0

        # Step 3: block and drain the interconnect and LLC-to-MC traffic.
        self.interconnect.block()
        latencies[FlowStep.BLOCK_AND_DRAIN] = self.interconnect.drain()

        # Step 4: DRAM enters self-refresh (entry cost folded into exit budget).
        self.dram.enter_self_refresh()
        latencies[FlowStep.ENTER_SELF_REFRESH] = 0.0

        # Step 5: load the optimized MRC values for the new frequency from SRAM.
        mrc_reloaded = False
        if target.mrc_optimized and self.mrc_sram.has_frequency(target.dram_frequency):
            self.mrc_registers.load(self.mrc_sram.load(target.dram_frequency))
            latencies[FlowStep.LOAD_MRC] = self.mrc_sram.load_latency()
            mrc_reloaded = True
        else:
            latencies[FlowStep.LOAD_MRC] = 0.0

        # Step 6: re-lock PLLs/DLLs to the new frequencies.
        self.dram.set_frequency(target.dram_frequency)
        latencies[FlowStep.RELOCK_PLLS] = self.pll_relock_latency

        # Step 7: lower voltages after the clocks slowed down.
        if not increasing:
            latencies[FlowStep.LOWER_VOLTAGES] = self.rails.apply(voltage_targets)
        else:
            latencies[FlowStep.LOWER_VOLTAGES] = 0.0

        # Step 8: DRAM exits self-refresh.
        latencies[FlowStep.EXIT_SELF_REFRESH] = self.dram.exit_self_refresh(
            fast_training=self.fast_self_refresh_training
        )

        # Step 9: release the interconnect and LLC traffic at the new clock.
        self.interconnect.release(new_frequency=target.interconnect_frequency)
        latencies[FlowStep.RELEASE] = 0.0

        report = TransitionReport(
            source=source.name,
            target=target.name,
            increasing_frequency=increasing,
            step_latencies=latencies,
            mrc_reloaded=mrc_reloaded,
        )
        self._history.append(report)
        return report

    # ------------------------------------------------------------------
    # Latency estimation (no state changes)
    # ------------------------------------------------------------------
    def estimate_latency(
        self, source: OperatingPoint, target: OperatingPoint
    ) -> float:
        """Estimate the transition latency without touching any hardware state."""
        voltage_targets = {
            RailName.V_SA: self.rails[RailName.V_SA].nominal_voltage * target.v_sa_scale,
            RailName.V_IO: self.rails[RailName.V_IO].nominal_voltage * target.v_io_scale,
        }
        voltage_latency = self.rails.max_transition_time(voltage_targets)
        drain_latency = self.interconnect.estimated_drain_time()
        self_refresh_latency = (
            config.TRANSITION_SELF_REFRESH_EXIT_LATENCY
            if self.fast_self_refresh_training
            else config.TRANSITION_SELF_REFRESH_EXIT_LATENCY * 4.0
        )
        mrc_latency = (
            self.mrc_sram.load_latency()
            if target.mrc_optimized and self.mrc_sram.has_frequency(target.dram_frequency)
            else 0.0
        )
        return (
            self.firmware_latency
            + voltage_latency
            + drain_latency
            + self_refresh_latency
            + mrc_latency
            + self.pll_relock_latency
        )

    @property
    def history(self) -> List[TransitionReport]:
        """Reports of every transition executed so far."""
        return list(self._history)

    @property
    def worst_observed_latency(self) -> float:
        """The largest transition latency observed so far (seconds)."""
        if not self._history:
            return 0.0
        return max(report.total_latency for report in self._history)
