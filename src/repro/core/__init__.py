"""SysScale: the paper's primary contribution.

The package implements the three components of Sec. 4:

* a **demand prediction mechanism** (``demand``) combining static estimation from
  peripheral configuration registers with dynamic estimation from four dedicated
  performance counters whose thresholds are calibrated offline (``thresholds``);
* a **holistic power-management algorithm** (``algorithm``) that switches the IO
  and memory domains between operating points (``operating_points``) every
  evaluation interval and redistributes the freed power budget to the compute
  domain;
* a **power-management flow** (``flow``) that carries out the multi-domain DVFS
  transition itself -- voltage moves, interconnect block/drain, DRAM self-refresh,
  MRC reload from SRAM, PLL/DLL re-lock -- within the ~10 us budget of Sec. 5.

``sysscale.SysScaleController`` ties the three together into a
:class:`repro.sim.policy.Policy` the simulation engine can run.
"""

from repro.core.operating_points import OperatingPoint, OperatingPointTable, build_default_operating_points
from repro.core.thresholds import CounterThresholds, ThresholdCalibrator
from repro.core.demand import DemandPredictor, DemandPrediction, StaticDemandEstimator
from repro.core.algorithm import HolisticPowerAlgorithm, AlgorithmDecision
from repro.core.flow import TransitionFlow, TransitionReport, FlowStep
from repro.core.sysscale import SysScaleController

__all__ = [
    "OperatingPoint",
    "OperatingPointTable",
    "build_default_operating_points",
    "CounterThresholds",
    "ThresholdCalibrator",
    "DemandPredictor",
    "DemandPrediction",
    "StaticDemandEstimator",
    "HolisticPowerAlgorithm",
    "AlgorithmDecision",
    "TransitionFlow",
    "TransitionReport",
    "FlowStep",
    "SysScaleController",
]
