"""Holistic power-management algorithm (Sec. 4.3).

The PMU executes this algorithm once per evaluation interval (30 ms by default),
using counter values averaged over the interval.  The algorithm decides between
adjacent operating points: if any of the five demand conditions is satisfied the
SoC moves to (or stays at) the higher-performance point; otherwise it moves to the
lower-performance point.  When the SoC sits at a reduced point, the power budgets
of the IO and memory domains are reduced and the compute domain's budget is
increased by the difference, which the compute-domain PBM converts into higher
CPU-core or graphics frequencies (Sec. 4.3-4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import config
from repro.core.demand import DemandPredictor, DemandPrediction
from repro.core.operating_points import OperatingPoint, OperatingPointTable
from repro.perf.counters import CounterSample
from repro.sim.platform import Platform
from repro.sim.policy import StaticDemandInfo


@dataclass(frozen=True)
class AlgorithmDecision:
    """One decision of the holistic algorithm."""

    operating_point: OperatingPoint
    prediction: DemandPrediction
    changed: bool
    io_memory_budget: float
    compute_budget: float

    def as_dict(self) -> dict:
        """Flat summary for logging and result tables."""
        return {
            "operating_point": self.operating_point.name,
            "changed": self.changed,
            "io_memory_budget_w": self.io_memory_budget,
            "compute_budget_w": self.compute_budget,
            **self.prediction.as_dict(),
        }


@dataclass
class HolisticPowerAlgorithm:
    """The per-interval decision procedure of Sec. 4.3.

    Parameters
    ----------
    platform:
        The platform whose PBM and power models the algorithm uses to convert an
        operating point into domain budgets.
    operating_points:
        The table of IO/memory operating points (two on the real system).
    predictor:
        The demand predictor; in the general multi-point case each adjacent pair
        would carry its own thresholds -- the two-point implementation uses one
        predictor, matching the paper's real-system configuration.
    evaluation_interval:
        How often the PMU runs the algorithm (30 ms default).
    """

    platform: Platform
    operating_points: OperatingPointTable
    predictor: DemandPredictor
    evaluation_interval: float = config.EVALUATION_INTERVAL
    _current: Optional[OperatingPoint] = field(default=None, init=False)
    _decisions: List[AlgorithmDecision] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation interval must be positive")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> OperatingPoint:
        """Start a new run at the high-performance point (the boot default)."""
        self._current = self.operating_points.high
        self._decisions = []
        return self._current

    @property
    def current_point(self) -> OperatingPoint:
        """The operating point currently in force."""
        if self._current is None:
            return self.operating_points.high
        return self._current

    @property
    def decisions(self) -> List[AlgorithmDecision]:
        """All decisions taken so far in this run."""
        return list(self._decisions)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def decide(
        self,
        counters: CounterSample,
        static_info: Optional[StaticDemandInfo] = None,
    ) -> AlgorithmDecision:
        """Run one evaluation: move towards high or low based on the five conditions."""
        if self._current is None:
            self.reset()
        prediction = self.predictor.predict(counters, static_info)

        if prediction.requires_high_point:
            target = self.operating_points.next_higher(self._current)
        else:
            target = self.operating_points.next_lower(self._current)

        changed = target is not self._current
        self._current = target

        io_memory_budget = target.provisioned_io_memory_power(self.platform)
        budgets = self.platform.pbm.budgets(io_memory_budget)
        decision = AlgorithmDecision(
            operating_point=target,
            prediction=prediction,
            changed=changed,
            io_memory_budget=io_memory_budget,
            compute_budget=budgets.compute,
        )
        self._decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def low_point_fraction(self) -> float:
        """Fraction of decisions that selected a point below the highest one."""
        if not self._decisions:
            return 0.0
        below_high = sum(
            1
            for decision in self._decisions
            if decision.operating_point is not self.operating_points.high
        )
        return below_high / len(self._decisions)

    @property
    def transition_count(self) -> int:
        """Number of decisions that changed the operating point."""
        return sum(1 for decision in self._decisions if decision.changed)
