"""The SysScale controller: demand prediction + holistic algorithm + DVFS flow.

``SysScaleController`` is the :class:`repro.sim.policy.Policy` the simulation
engine runs to evaluate SysScale.  At every evaluation interval (30 ms) it feeds
the averaged performance counters and the static peripheral configuration to the
holistic power-management algorithm; when the algorithm changes the operating
point, the controller executes the Fig. 5 transition flow to obtain the actual
transition latency and to reload the MRC registers, and reports the selected
point's provisioned IO+memory power so the PBM can hand the difference to the
compute domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import config
from repro.core.algorithm import HolisticPowerAlgorithm
from repro.core.demand import DemandPredictor
from repro.core.flow import TransitionFlow, TransitionReport
from repro.core.operating_points import (
    OperatingPoint,
    OperatingPointTable,
    build_default_operating_points,
)
from repro.core.thresholds import CounterThresholds, ThresholdCalibrator
from repro.sim.platform import Platform
from repro.sim.policy import Policy, PolicyAction, PolicyObservation
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.trace import WorkloadTrace


def default_thresholds(
    platform: Platform,
    operating_points: Optional[OperatingPointTable] = None,
    method: str = "boundary",
    training_workloads: int = 120,
    seed: int = config.DEFAULT_SEED,
) -> CounterThresholds:
    """Calibrate the counter thresholds offline (Sec. 4.2).

    Two calibration procedures are provided:

    * ``"boundary"`` (default) probes each counter's degradation boundary directly
      against the platform model -- the outcome of the paper's empirical tuning
      loop;
    * ``"corpus"`` runs a synthetic training corpus through the mu + sigma
      procedure the paper describes (with boundary refinement), which is slower
      but exercises the full offline pipeline.
    """
    if operating_points is None:
        operating_points = build_default_operating_points(platform)
    calibrator = ThresholdCalibrator(platform=platform, operating_points=operating_points)
    if method == "boundary":
        return calibrator.calibrate_boundary()
    if method == "corpus":
        generator = CorpusGenerator(seed=seed)
        corpus = generator.generate(
            single_thread=max(20, training_workloads // 2),
            multi_thread=max(10, training_workloads // 4),
            graphics=max(10, training_workloads // 4),
        )
        calibrator.add_corpus(corpus)
        return calibrator.calibrate()
    raise ValueError(f"unknown calibration method {method!r}; use 'boundary' or 'corpus'")


@dataclass
class SysScaleController(Policy):
    """SysScale as a simulation policy.

    Parameters
    ----------
    platform:
        The evaluation platform.
    operating_points:
        Table of IO/memory operating points (two by default, as on the real chip).
    thresholds:
        Calibrated counter thresholds; calibrated on the fly when omitted.
    use_flow_latency:
        When True, each transition's latency is taken from the executed Fig. 5
        flow; when False, the nominal 10 us budget is charged (useful for
        ablations of the flow-latency model).
    """

    platform: Platform
    operating_points: Optional[OperatingPointTable] = None
    thresholds: Optional[CounterThresholds] = None
    use_flow_latency: bool = True
    name: str = "SysScale"

    algorithm: HolisticPowerAlgorithm = field(init=False)
    flow: TransitionFlow = field(init=False)
    _current_point: OperatingPoint = field(init=False)
    _transition_reports: List[TransitionReport] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.operating_points is None:
            self.operating_points = build_default_operating_points(self.platform)
        if self.thresholds is None:
            self.thresholds = default_thresholds(self.platform, self.operating_points)
        predictor = DemandPredictor(thresholds=self.thresholds)
        self.algorithm = HolisticPowerAlgorithm(
            platform=self.platform,
            operating_points=self.operating_points,
            predictor=predictor,
        )
        self.flow = TransitionFlow(
            rails=self.platform.soc.rails,
            interconnect=self.platform.soc.interconnect_fabric,
            dram=self.platform.dram,
            mrc_sram=self.platform.mrc_sram,
            mrc_registers=self.platform.mrc_registers,
        )
        self._current_point = self.operating_points.high

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------
    def reset(self, platform: Platform, trace: WorkloadTrace) -> PolicyAction:
        """Start a run at the high operating point (the boot default)."""
        del trace  # SysScale does not peek at the workload; it reacts to counters
        self.platform = platform
        self._current_point = self.algorithm.reset()
        self._transition_reports = []
        return self._action_for(self._current_point)

    def decide(self, observation: PolicyObservation) -> PolicyAction:
        """Run the holistic algorithm on the interval-averaged counters."""
        decision = self.algorithm.decide(observation.counters, observation.static_demand)
        target = decision.operating_point
        if target is not self._current_point:
            latency = self._execute_transition(self._current_point, target)
            self._current_point = target
            return self._action_for(target, transition_latency=latency)
        return self._action_for(target)

    def notify_transition(self, previous: PolicyAction, new: PolicyAction) -> None:
        """The engine applied the transition; nothing further to do."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_transition(
        self, source: OperatingPoint, target: OperatingPoint
    ) -> float:
        """Run the Fig. 5 flow (or charge the nominal budget) and return the latency."""
        if not self.use_flow_latency:
            return config.TRANSITION_TOTAL_LATENCY_BUDGET
        report = self.flow.execute(source, target)
        self._transition_reports.append(report)
        return report.total_latency

    def _action_for(
        self, point: OperatingPoint, transition_latency: Optional[float] = None
    ) -> PolicyAction:
        if transition_latency is None:
            transition_latency = self.flow.estimate_latency(self._current_point, point)
        return point.to_action(self.platform, transition_latency=transition_latency)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def transition_reports(self) -> List[TransitionReport]:
        """Reports of every executed Fig. 5 flow transition in the current run."""
        return list(self._transition_reports)

    @property
    def current_operating_point(self) -> OperatingPoint:
        """The operating point currently in force."""
        return self._current_point

    @property
    def low_point_fraction(self) -> float:
        """Fraction of decisions that chose a reduced operating point."""
        return self.algorithm.low_point_fraction
