"""Per-counter threshold calibration (Sec. 4.2).

SysScale decides whether the running workload can tolerate the low operating point
by comparing each performance counter with a threshold.  The thresholds are
derived offline: representative workloads are run in both the baseline and the
MD-DVFS setup, every run whose performance degradation is below the bound (1 % by
default) is marked, and for each counter the threshold is set to the mean plus one
standard deviation (mu + sigma) of that counter's values among the marked runs
[81].

This module implements that procedure against the simulated platform and a
training corpus (``repro.workloads.corpus``), so the thresholds the controller
uses are produced the same way the paper produces them rather than hand-tuned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import config
from repro.core.operating_points import OperatingPoint, OperatingPointTable
from repro.perf.counters import CounterName, CounterSample
from repro.sim.platform import Platform
from repro.soc.domains import SoCState
from repro.workloads.corpus import CorpusWorkload
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class CounterThresholds:
    """Calibrated thresholds, one per counter (Sec. 4.2)."""

    thresholds: Mapping[CounterName, float]
    degradation_bound: float = config.PREDICTION_DEGRADATION_BOUND
    static_bandwidth_threshold: float = 0.5 * config.LPDDR3_PEAK_BANDWIDTH

    def __post_init__(self) -> None:
        for name in CounterName:
            if name not in self.thresholds:
                raise ValueError(f"missing threshold for {name}")
            if self.thresholds[name] < 0:
                raise ValueError(f"threshold for {name} must be non-negative")
        if not 0 < self.degradation_bound < 1:
            raise ValueError("degradation bound must be in (0, 1)")
        if self.static_bandwidth_threshold < 0:
            raise ValueError("static bandwidth threshold must be non-negative")

    def __getitem__(self, name: CounterName) -> float:
        return self.thresholds[name]

    def exceeded(self, sample: CounterSample) -> Dict[CounterName, bool]:
        """Which counters exceed their thresholds in ``sample``."""
        return {name: sample[name] > self.thresholds[name] for name in CounterName}

    def any_exceeded(self, sample: CounterSample) -> bool:
        """True when any counter exceeds its threshold."""
        return any(self.exceeded(sample).values())

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view."""
        data = {str(name): value for name, value in self.thresholds.items()}
        data["degradation_bound"] = self.degradation_bound
        data["static_bandwidth_threshold_gbps"] = (
            self.static_bandwidth_threshold / config.GBPS
        )
        return data


@dataclass(frozen=True)
class CalibrationRun:
    """One training observation: counters at the high point and the measured slowdown."""

    workload: str
    counters: CounterSample
    degradation: float

    def __post_init__(self) -> None:
        if self.degradation < -0.5:
            raise ValueError("degradation below -50 % indicates a modelling error")


def _mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    if not values:
        raise ValueError("cannot compute statistics of an empty sequence")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return mean, math.sqrt(variance)


@dataclass
class ThresholdCalibrator:
    """Offline threshold-calibration procedure of Sec. 4.2.

    Parameters
    ----------
    platform:
        The platform whose counter unit and performance model are used.
    operating_points:
        The table whose high/low pair the calibration compares.
    degradation_bound:
        Performance-degradation bound below which a run is "marked" (1 % default).
    sigma_margin:
        Number of standard deviations added to the mean (1.0 reproduces mu + sigma).
    """

    platform: Platform
    operating_points: OperatingPointTable
    degradation_bound: float = config.PREDICTION_DEGRADATION_BOUND
    sigma_margin: float = 1.0
    _runs: List[CalibrationRun] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.degradation_bound < 1:
            raise ValueError("degradation bound must be in (0, 1)")
        if self.sigma_margin < 0:
            raise ValueError("sigma margin must be non-negative")

    # ------------------------------------------------------------------
    # Measurement of one workload
    # ------------------------------------------------------------------
    def _state_for_point(self, point: OperatingPoint, trace: WorkloadTrace) -> SoCState:
        """SoC state at ``point`` with the compute domain held at its reference clocks.

        The calibration isolates the memory/IO effect (Sec. 4.2 fixes the CPU
        frequency across the two setups, Table 1), so compute clocks stay at the
        trace's reference values.
        """
        return SoCState(
            cpu_frequency=trace.reference_cpu_frequency,
            gfx_frequency=trace.reference_gfx_frequency,
            dram_frequency=point.dram_frequency,
            interconnect_frequency=point.interconnect_frequency,
            v_sa_scale=point.v_sa_scale,
            v_io_scale=point.v_io_scale,
            mrc_optimized=point.mrc_optimized,
        )

    def measure_degradation(
        self,
        trace: WorkloadTrace,
        high: Optional[OperatingPoint] = None,
        low: Optional[OperatingPoint] = None,
    ) -> float:
        """Fractional slowdown of ``trace`` at the low point vs. the high point."""
        high = high or self.operating_points.high
        low = low or self.operating_points.low
        model = self.platform.performance_model
        high_time = 0.0
        low_time = 0.0
        for phase in trace.phases:
            high_time += model.execution_time(phase, self._state_for_point(high, trace))
            low_time += model.execution_time(phase, self._state_for_point(low, trace))
        if high_time <= 0:
            raise ValueError("high-point execution time must be positive")
        return low_time / high_time - 1.0

    def measure_counters(self, trace: WorkloadTrace) -> CounterSample:
        """Duration-weighted average counters of ``trace`` at the high operating point."""
        high = self.operating_points.high
        samples = []
        weights = []
        for phase in trace.phases:
            state = self._state_for_point(high, trace)
            samples.append(self.platform.counter_unit.sample(phase, state))
            weights.append(phase.duration)
        total = sum(weights)
        averaged = {
            name: sum(s[name] * w for s, w in zip(samples, weights)) / total
            for name in CounterName
        }
        return CounterSample(values=averaged)

    # ------------------------------------------------------------------
    # Corpus-level calibration
    # ------------------------------------------------------------------
    def add_run(self, trace: WorkloadTrace) -> CalibrationRun:
        """Measure one training workload and record the observation."""
        run = CalibrationRun(
            workload=trace.name,
            counters=self.measure_counters(trace),
            degradation=self.measure_degradation(trace),
        )
        self._runs.append(run)
        return run

    def add_corpus(self, corpus: Iterable[CorpusWorkload]) -> int:
        """Measure a whole training corpus; returns the number of runs added."""
        count = 0
        for workload in corpus:
            self.add_run(workload.trace)
            count += 1
        return count

    @property
    def runs(self) -> List[CalibrationRun]:
        """All recorded calibration runs."""
        return list(self._runs)

    def calibrate(self, refine: bool = True) -> CounterThresholds:
        """Derive thresholds from the marked (low-degradation) runs.

        The starting point is the paper's mu + sigma rule.  Because mu + sigma of
        the marked population can sit well below the actual degradation boundary
        (which would cause many unnecessary "stay high" decisions), the optional
        refinement step then raises each threshold as far as possible **without
        introducing a single false positive on the training set** -- i.e. without
        ever predicting "low is safe" for a run whose degradation exceeds the
        bound.  This reproduces the empirical, iterative tuning the paper
        describes ("we empirically prune our selection using an iterative process
        until the correlation ... is closer to our target") and its reported
        outcome: no false positives with 94-99 % accuracy.
        """
        if not self._runs:
            raise ValueError("no calibration runs recorded; call add_corpus first")
        marked = [run for run in self._runs if run.degradation <= self.degradation_bound]
        if not marked:
            raise ValueError(
                "no calibration run has degradation below the bound; the corpus is "
                "not representative or the bound is too tight"
            )
        thresholds: Dict[CounterName, float] = {}
        for name in CounterName:
            values = [run.counters[name] for run in marked]
            mean, std = _mean_and_std(values)
            thresholds[name] = mean + self.sigma_margin * std
        if refine:
            thresholds = self._refine_thresholds(thresholds)
        return CounterThresholds(
            thresholds=thresholds,
            degradation_bound=self.degradation_bound,
            static_bandwidth_threshold=self._static_bandwidth_threshold(),
        )

    def _refine_thresholds(
        self, thresholds: Dict[CounterName, float]
    ) -> Dict[CounterName, float]:
        """Raise thresholds towards the degradation boundary.

        The mu + sigma starting point is a *conservative* floor: it sits well below
        the counter value at which the low point actually starts to hurt, so using
        it directly would needlessly keep many tolerant workloads at the high
        point.  The refinement moves each counter's threshold up towards that
        boundary using the over-bound training runs: every such run is attributed
        to the counter it violates most strongly (relative to the mu + sigma
        floor), and that counter's threshold is capped just below the smallest
        attributed value.  Counters with no attributed runs get a bounded amount
        of extra headroom.  The result stays one-sided -- a run whose dominant
        cause of degradation is counter ``c`` is still flagged by ``c`` -- which
        is how the paper's calibration achieves no false positives.
        """
        guard = 0.95   # stay below the smallest constraining run's counter value
        headroom = 2.0  # growth cap when no training run constrains a counter
        unmarked = [
            run for run in self._runs if run.degradation > self.degradation_bound
        ]
        constraints: Dict[CounterName, List[float]] = {name: [] for name in CounterName}
        for run in unmarked:
            ratios = {
                name: run.counters[name] / thresholds[name] if thresholds[name] > 0 else 0.0
                for name in CounterName
            }
            dominant = max(ratios, key=ratios.get)
            if ratios[dominant] > 1.0:
                constraints[dominant].append(run.counters[dominant])
        refined: Dict[CounterName, float] = {}
        for name in CounterName:
            if constraints[name]:
                refined[name] = max(thresholds[name], guard * min(constraints[name]))
            else:
                refined[name] = thresholds[name] * headroom
        return refined

    # ------------------------------------------------------------------
    # Boundary-probe calibration
    # ------------------------------------------------------------------
    def calibrate_boundary(self, guard: float = 0.9) -> CounterThresholds:
        """Derive thresholds by probing the degradation boundary directly.

        For each counter, a family of synthetic probe workloads is swept along the
        single characteristic that drives that counter (latency-bound fraction,
        CPU bandwidth demand, graphics bandwidth demand, IO-bound fraction) until
        the measured slowdown at the low operating point reaches the degradation
        bound; the counter value of that boundary probe, multiplied by a guard
        band, becomes the threshold.  This is the model-level equivalent of the
        empirical tuning loop the paper describes for its counter selection and
        thresholds (Sec. 4.2), and it yields the paper's reported behaviour:
        essentially no false positives, with false negatives confined to a narrow
        band below the boundary.
        """
        if not 0.0 < guard <= 1.0:
            raise ValueError("guard must be in (0, 1]")
        thresholds: Dict[CounterName, float] = {
            CounterName.LLC_STALLS: self._probe_boundary(
                lambda x: self._probe_phase(latency_fraction=x, demand_gbps=1.0),
                CounterName.LLC_STALLS,
                lower=0.0,
                upper=0.8,
            ),
            CounterName.LLC_OCCUPANCY_TRACER: self._probe_boundary(
                lambda x: self._probe_phase(latency_fraction=0.05, demand_gbps=x),
                CounterName.LLC_OCCUPANCY_TRACER,
                lower=0.5,
                upper=20.0,
            ),
            CounterName.GFX_LLC_MISSES: self._probe_boundary(
                lambda x: self._probe_phase(
                    latency_fraction=0.04, demand_gbps=1.0, gfx_demand_gbps=x, gfx_fraction=0.7
                ),
                CounterName.GFX_LLC_MISSES,
                lower=0.5,
                upper=20.0,
            ),
            CounterName.IO_RPQ: self._probe_boundary(
                lambda x: self._probe_phase(latency_fraction=0.02, demand_gbps=1.0, io_fraction=x),
                CounterName.IO_RPQ,
                lower=0.0,
                upper=0.6,
            ),
        }
        thresholds = {name: guard * value for name, value in thresholds.items()}
        return CounterThresholds(
            thresholds=thresholds,
            degradation_bound=self.degradation_bound,
            static_bandwidth_threshold=self._static_bandwidth_threshold(),
        )

    def _probe_phase(
        self,
        latency_fraction: float,
        demand_gbps: float,
        gfx_demand_gbps: float = 0.0,
        gfx_fraction: float = 0.0,
        io_fraction: float = 0.0,
    ) -> WorkloadTrace:
        """Build a single-phase probe workload with the given characteristics."""
        from repro import config as cfg
        from repro.workloads.trace import Phase, WorkloadClass, uniform_phase_trace

        other = 0.03
        compute = max(0.0, 1.0 - latency_fraction - gfx_fraction - io_fraction - other)
        phase = Phase(
            name="probe",
            duration=0.2,
            compute_fraction=compute,
            gfx_fraction=gfx_fraction,
            memory_latency_fraction=latency_fraction,
            memory_bandwidth_fraction=0.0,
            io_fraction=io_fraction,
            other_fraction=1.0 - compute - gfx_fraction - latency_fraction - io_fraction,
            cpu_bandwidth_demand=cfg.gbps(demand_gbps),
            gfx_bandwidth_demand=cfg.gbps(gfx_demand_gbps),
            cpu_activity=0.95,
            gfx_activity=0.9 if gfx_fraction > 0 else 0.0,
            io_activity=0.3,
        )
        return uniform_phase_trace(
            name="probe", workload_class=WorkloadClass.MICROBENCHMARK, phase=phase
        )

    def _probe_boundary(
        self,
        probe_factory,
        counter: CounterName,
        lower: float,
        upper: float,
        iterations: int = 24,
    ) -> float:
        """Binary-search the probe parameter where degradation equals the bound.

        Returns the probed counter's value at the boundary.  If even the upper end
        of the sweep stays below the bound, the counter value at the upper end is
        returned (the characteristic cannot push the workload past the bound on
        its own).
        """
        if upper <= lower:
            raise ValueError("upper must exceed lower")
        if self.measure_degradation(probe_factory(upper)) <= self.degradation_bound:
            boundary = upper
        else:
            lo, hi = lower, upper
            for _ in range(iterations):
                mid = 0.5 * (lo + hi)
                if self.measure_degradation(probe_factory(mid)) <= self.degradation_bound:
                    lo = mid
                else:
                    hi = mid
            boundary = lo
        return self.measure_counters(probe_factory(boundary))[counter]

    def _static_bandwidth_threshold(self) -> float:
        """Static-demand threshold: the bandwidth the low point can still serve.

        The aggregated static demand must stay comfortably below the low point's
        achievable bandwidth, otherwise QoS-critical IO traffic (display, camera)
        would be at risk; a 70 % occupancy guard band is applied.
        """
        low = self.operating_points.low
        return 0.7 * low.achievable_bandwidth(self.platform)
