"""SysScale DVFS operating points for the IO and memory domains.

An operating point fixes the DRAM frequency bin, the IO-interconnect clock, the
V_SA and V_IO rail scales, and whether the MRC registers are re-optimized for the
selected frequency.  The paper implements two points on the real system
(Sec. 7.4): a high point at LPDDR3-1600 with the interconnect at 0.8 GHz and
nominal rail voltages, and a low point at LPDDR3-1066 with the interconnect at
0.4 GHz, V_SA at 0.8x nominal, and V_IO at 0.85x nominal (Table 1).  The general
algorithm supports more points, deciding between adjacent points with dedicated
thresholds (Sec. 4.3); the table built here can therefore hold an arbitrary
ordered list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro import config
from repro.sim.platform import Platform
from repro.sim.policy import PolicyAction


@dataclass(frozen=True)
class OperatingPoint:
    """One IO/memory-domain DVFS operating point."""

    name: str
    dram_frequency: float
    interconnect_frequency: float
    v_sa_scale: float
    v_io_scale: float
    mrc_optimized: bool = True

    def __post_init__(self) -> None:
        if self.dram_frequency <= 0 or self.interconnect_frequency <= 0:
            raise ValueError("operating-point frequencies must be positive")
        for scale_name in ("v_sa_scale", "v_io_scale"):
            if not 0 < getattr(self, scale_name) <= 1.0:
                raise ValueError(f"{scale_name} must be in (0, 1]")

    def provisioned_io_memory_power(self, platform: Platform) -> float:
        """Worst-case IO+memory power at this point -- the budget the PBM charges.

        SysScale charges the compute domain's budget with the *provisioned* power
        of the selected operating point rather than the global worst case, which
        is how scaling the IO and memory domains frees budget for compute
        (Sec. 4.3).
        """
        return platform.worst_case_io_memory_power(
            dram_frequency=self.dram_frequency,
            interconnect_frequency=self.interconnect_frequency,
            v_sa_scale=self.v_sa_scale,
            v_io_scale=self.v_io_scale,
        )

    def to_action(
        self,
        platform: Platform,
        transition_latency: float = config.TRANSITION_TOTAL_LATENCY_BUDGET,
        io_memory_budget: Optional[float] = None,
    ) -> PolicyAction:
        """Convert the operating point into the engine-facing :class:`PolicyAction`."""
        if io_memory_budget is None:
            io_memory_budget = self.provisioned_io_memory_power(platform)
        return PolicyAction(
            name=self.name,
            dram_frequency=self.dram_frequency,
            interconnect_frequency=self.interconnect_frequency,
            v_sa_scale=self.v_sa_scale,
            v_io_scale=self.v_io_scale,
            mrc_optimized=self.mrc_optimized,
            io_memory_budget=io_memory_budget,
            transition_latency=transition_latency,
        )

    def achievable_bandwidth(self, platform: Platform) -> float:
        """Achievable memory bandwidth (bytes/s) at this point with optimized MRC."""
        return platform.controller.achievable_bandwidth(self.dram_frequency, None)


@dataclass
class OperatingPointTable:
    """An ordered list of operating points, highest performance first."""

    points: List[OperatingPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("an operating-point table needs at least one point")
        self.points = sorted(
            self.points, key=lambda p: p.dram_frequency, reverse=True
        )
        frequencies = [p.dram_frequency for p in self.points]
        if len(set(frequencies)) != len(frequencies):
            raise ValueError("operating points must have distinct DRAM frequencies")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def high(self) -> OperatingPoint:
        """The highest-performance point (the boot default)."""
        return self.points[0]

    @property
    def low(self) -> OperatingPoint:
        """The lowest-performance point."""
        return self.points[-1]

    def by_name(self, name: str) -> OperatingPoint:
        """Look a point up by name; raises ``KeyError`` if absent."""
        for point in self.points:
            if point.name == name:
                return point
        raise KeyError(f"no operating point named {name!r}")

    def index_of(self, point: OperatingPoint) -> int:
        """Index of ``point`` in the table (0 = highest performance)."""
        return self.points.index(point)

    def next_lower(self, point: OperatingPoint) -> OperatingPoint:
        """The adjacent lower-performance point (or ``point`` if already lowest)."""
        index = self.index_of(point)
        return self.points[min(len(self.points) - 1, index + 1)]

    def next_higher(self, point: OperatingPoint) -> OperatingPoint:
        """The adjacent higher-performance point (or ``point`` if already highest)."""
        index = self.index_of(point)
        return self.points[max(0, index - 1)]


def build_default_operating_points(
    platform: Optional[Platform] = None,
    include_lowest_bin: bool = False,
    mrc_optimized: bool = True,
) -> OperatingPointTable:
    """Build the two-point (optionally three-point) table the paper implements.

    The high point is LPDDR3-1600 / 0.8 GHz interconnect / nominal rails; the low
    point is LPDDR3-1066 / 0.4 GHz / 0.8 V_SA / 0.85 V_IO (Table 1).  The optional
    third point adds the 0.8 GHz DRAM bin, which Sec. 7.4 evaluates and rejects as
    not energy efficient (V_SA has already hit Vmin at 1.06 GHz); it is exposed
    here for the sensitivity study and the ablation benchmarks.
    """
    del platform  # points are platform-independent; budgets are computed on demand
    bins = config.LPDDR3_FREQUENCY_BINS
    points = [
        OperatingPoint(
            name="high",
            dram_frequency=bins[0],
            interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
            v_sa_scale=1.0,
            v_io_scale=1.0,
            mrc_optimized=mrc_optimized,
        ),
        OperatingPoint(
            name="low",
            dram_frequency=bins[1],
            interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
            v_sa_scale=config.V_SA_LOW_SCALE,
            v_io_scale=config.V_IO_LOW_SCALE,
            mrc_optimized=mrc_optimized,
        ),
    ]
    if include_lowest_bin:
        points.append(
            OperatingPoint(
                name="lowest",
                dram_frequency=bins[2],
                interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
                # V_SA is already at its minimum functional voltage at 1.06 GHz
                # (Sec. 7.4), so the extra bin cannot reduce the rail further.
                v_sa_scale=config.V_SA_LOW_SCALE,
                v_io_scale=config.V_IO_LOW_SCALE,
                mrc_optimized=mrc_optimized,
            )
        )
    return OperatingPointTable(points=points)


def build_ddr4_operating_points(mrc_optimized: bool = True) -> OperatingPointTable:
    """Operating points for the DDR4 sensitivity study of Sec. 7.4.

    DDR4 scales from 1.86 GHz down to 1.33 GHz; the paper reports ~7 % lower
    average power savings than the LPDDR3 1.6 -> 1.06 GHz scaling.
    """
    return OperatingPointTable(
        points=[
            OperatingPoint(
                name="ddr4_high",
                dram_frequency=config.DDR4_FREQUENCY_BINS[1],
                interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
                v_sa_scale=1.0,
                v_io_scale=1.0,
                mrc_optimized=mrc_optimized,
            ),
            OperatingPoint(
                name="ddr4_low",
                dram_frequency=config.DDR4_FREQUENCY_BINS[2],
                interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
                v_sa_scale=0.85,
                v_io_scale=0.9,
                mrc_optimized=mrc_optimized,
            ),
        ]
    )
