"""Demand prediction mechanism (Sec. 4.2).

SysScale predicts the bandwidth/latency demands of the three SoC domains from two
sources:

* **Static demand** depends only on the system configuration (number of active
  display panels, their resolution and refresh rate, active cameras), which the
  PMU reads from peripheral control and status registers.  The firmware keeps a
  table mapping every peripheral configuration to its bandwidth/latency demand,
  which is deterministic for a given configuration.
* **Dynamic demand** depends on workload phase behaviour and is predicted from the
  four dedicated performance counters, each compared against its calibrated
  threshold (``repro.core.thresholds``).

The predictor's output is a :class:`DemandPrediction`: whether the workload can
run at a lower operating point without exceeding the degradation bound, and which
conditions (if any) require the high point.  The paper reports prediction
accuracies of 97.7 % / 94.2 % / 98.8 % for single-thread CPU, multi-thread CPU and
graphics workloads with *no false positives* (no case where the predictor says
"safe to go low" but the actual degradation exceeds the bound); the mu + sigma
threshold margin is what provides that one-sidedness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import config
from repro.core.thresholds import CounterThresholds
from repro.perf.counters import CounterName, CounterSample
from repro.sim.policy import StaticDemandInfo


@dataclass(frozen=True)
class StaticDemandEstimate:
    """Static demand derived from the peripheral configuration."""

    bandwidth_demand: float
    latency_sensitive: bool

    def __post_init__(self) -> None:
        if self.bandwidth_demand < 0:
            raise ValueError("bandwidth demand must be non-negative")


class StaticDemandEstimator:
    """The firmware table mapping peripheral configurations to demand (Sec. 4.2)."""

    def estimate(self, static_info: StaticDemandInfo) -> StaticDemandEstimate:
        """Estimate static bandwidth demand and latency sensitivity.

        The estimate is exact because the demand of a given peripheral
        configuration "is known and is deterministic" (Sec. 4.2).
        """
        return StaticDemandEstimate(
            bandwidth_demand=static_info.bandwidth_demand,
            latency_sensitive=static_info.latency_sensitive,
        )


@dataclass(frozen=True)
class DemandPrediction:
    """The outcome of one demand-prediction evaluation."""

    low_point_safe: bool
    triggered_conditions: Dict[str, bool]
    static_bandwidth_demand: float
    counter_values: Dict[str, float]

    @property
    def requires_high_point(self) -> bool:
        """True when any of the five conditions of Sec. 4.3 is satisfied."""
        return not self.low_point_safe

    def as_dict(self) -> dict:
        """Flat summary for logging and result tables."""
        return {
            "low_point_safe": self.low_point_safe,
            **{f"condition_{name}": value for name, value in self.triggered_conditions.items()},
            "static_bandwidth_gbps": self.static_bandwidth_demand / config.GBPS,
        }


@dataclass
class DemandPredictor:
    """Combines static and dynamic demand estimation into one prediction.

    The five conditions mirror Sec. 4.3 exactly:

    1. aggregated static demand exceeds ``STATIC_BW_THR``;
    2. the graphics engines are bandwidth limited (``GFX_LLC_MISSES`` > GFX_THR);
    3. the CPU cores are bandwidth limited (``LLC_Occupancy_Tracer`` > Core_THR);
    4. memory latency is a bottleneck (``LLC_STALLS`` > LAT_THR);
    5. IO latency is a bottleneck (``IO_RPQ`` > IO_THR).
    """

    thresholds: CounterThresholds
    static_estimator: StaticDemandEstimator = field(default_factory=StaticDemandEstimator)
    prediction_count: int = field(default=0, init=False)
    low_predictions: int = field(default=0, init=False)

    def predict(
        self,
        counters: CounterSample,
        static_info: Optional[StaticDemandInfo] = None,
    ) -> DemandPrediction:
        """Predict whether the low operating point is safe for the next interval."""
        static_estimate = self.static_estimator.estimate(
            static_info if static_info is not None else StaticDemandInfo()
        )
        conditions = {
            "static_bandwidth": static_estimate.bandwidth_demand
            > self.thresholds.static_bandwidth_threshold,
            "gfx_bandwidth_limited": counters[CounterName.GFX_LLC_MISSES]
            > self.thresholds[CounterName.GFX_LLC_MISSES],
            "cpu_bandwidth_limited": counters[CounterName.LLC_OCCUPANCY_TRACER]
            > self.thresholds[CounterName.LLC_OCCUPANCY_TRACER],
            "memory_latency_bound": counters[CounterName.LLC_STALLS]
            > self.thresholds[CounterName.LLC_STALLS],
            "io_latency_bound": counters[CounterName.IO_RPQ]
            > self.thresholds[CounterName.IO_RPQ],
        }
        low_point_safe = not any(conditions.values())
        self.prediction_count += 1
        if low_point_safe:
            self.low_predictions += 1
        return DemandPrediction(
            low_point_safe=low_point_safe,
            triggered_conditions=conditions,
            static_bandwidth_demand=static_estimate.bandwidth_demand,
            counter_values={str(name): counters[name] for name in CounterName},
        )

    @property
    def low_prediction_fraction(self) -> float:
        """Fraction of evaluations that predicted the low point to be safe."""
        if self.prediction_count == 0:
            return 0.0
        return self.low_predictions / self.prediction_count


@dataclass(frozen=True)
class PredictionQuality:
    """Accuracy statistics of the predictor against ground truth (Fig. 6)."""

    total: int
    correct: int
    false_positives: int
    false_negatives: int

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise ValueError("total must be positive")
        if self.correct + self.false_positives + self.false_negatives > self.total:
            raise ValueError("inconsistent prediction-quality counts")

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that match the ground truth."""
        return self.correct / self.total

    @property
    def false_positive_rate(self) -> float:
        """Fraction of predictions that were unsafe 'go low' decisions.

        The paper reports zero false positives (Sec. 4.2): a false positive would
        move the SoC to the low point while the actual degradation exceeds the
        bound.
        """
        return self.false_positives / self.total


def evaluate_prediction_quality(
    predictions: List[bool],
    ground_truth_safe: List[bool],
) -> PredictionQuality:
    """Score a list of 'low point safe' predictions against ground truth."""
    if len(predictions) != len(ground_truth_safe):
        raise ValueError("predictions and ground truth must have the same length")
    if not predictions:
        raise ValueError("at least one prediction is required")
    correct = sum(1 for p, t in zip(predictions, ground_truth_safe) if p == t)
    false_positives = sum(
        1 for p, t in zip(predictions, ground_truth_safe) if p and not t
    )
    false_negatives = sum(
        1 for p, t in zip(predictions, ground_truth_safe) if not p and t
    )
    return PredictionQuality(
        total=len(predictions),
        correct=correct,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )
