"""JEDEC-style DRAM timing sets per frequency bin.

The memory-latency model needs the handful of timing parameters that dominate a
random read: row-activate (tRCD), column access (tCL / tCAS), precharge (tRP), and
the burst transfer time.  JEDEC specifies these in nanoseconds for a device grade;
the cycle counts programmed into the memory controller therefore change with the
interface frequency, which is exactly what the MRC re-training of Sec. 2.5 is about.

This module provides timing sets for the frequency bins the paper uses (LPDDR3 at
1.6 / 1.06 / 0.8 GHz and DDR4 at 2.13 / 1.86 / 1.33 GHz) and a helper that derives a
timing set for an arbitrary frequency by holding the analog latencies constant in
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import config


@dataclass(frozen=True)
class DramTimings:
    """Timing parameters of a DRAM device at one interface frequency.

    All latencies are in seconds; ``data_rate`` is the effective transfers/second of
    the interface (equal to the DDR frequency for double-data-rate devices, which is
    how the paper quotes "1.6 GHz" LPDDR3).
    """

    data_rate: float
    trcd: float
    tcl: float
    trp: float
    trc: float
    burst_length: int = 8
    bus_width_bytes: int = 8
    channels: int = 2

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ValueError("data rate must be positive")
        for name in ("trcd", "tcl", "trp", "trc"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.burst_length <= 0 or self.bus_width_bytes <= 0 or self.channels <= 0:
            raise ValueError("burst length, bus width, and channel count must be positive")

    @property
    def clock_period(self) -> float:
        """One interface clock period in seconds (DDR: two transfers per clock)."""
        return 2.0 / self.data_rate

    @property
    def burst_duration(self) -> float:
        """Time to transfer one burst (``burst_length`` beats) in seconds."""
        return self.burst_length / self.data_rate

    @property
    def row_hit_latency(self) -> float:
        """Latency of a row-buffer hit: column access plus half a burst."""
        return self.tcl + self.burst_duration / 2

    @property
    def row_miss_latency(self) -> float:
        """Latency of a row-buffer miss: precharge + activate + column access."""
        return self.trp + self.trcd + self.tcl + self.burst_duration / 2

    @property
    def peak_bandwidth(self) -> float:
        """Peak theoretical bandwidth of all channels in bytes/second."""
        return self.data_rate * self.bus_width_bytes * self.channels

    def average_access_latency(self, row_hit_rate: float = 0.55) -> float:
        """Average device access latency for a given row-buffer hit rate."""
        if not 0.0 <= row_hit_rate <= 1.0:
            raise ValueError("row hit rate must be in [0, 1]")
        return (
            row_hit_rate * self.row_hit_latency
            + (1.0 - row_hit_rate) * self.row_miss_latency
        )


#: Reference analog latencies (seconds), held constant across frequency bins because
#: they are set by the DRAM array, not by the interface clock.
_LPDDR3_REFERENCE = {
    "trcd": 18e-9,
    "tcl": 15e-9,
    "trp": 18e-9,
    "trc": 60e-9,
}

_DDR4_REFERENCE = {
    "trcd": 14.06e-9,
    "tcl": 13.5e-9,
    "trp": 14.06e-9,
    "trc": 47e-9,
}


def _quantize(latency: float, clock_period: float) -> float:
    """Round a latency up to an integer number of interface clocks.

    The memory controller programs timings in clock cycles, so the effective
    nanosecond latency is the JEDEC value rounded *up* to the next clock edge.
    This quantization is why lower frequencies have slightly worse-than-constant
    analog latencies, and why per-frequency MRC values matter.
    """
    import math

    cycles = math.ceil(latency / clock_period - 1e-12)
    return cycles * clock_period


def timings_for_frequency(
    data_rate: float,
    technology: str = "lpddr3",
    channels: int = 2,
    bus_width_bytes: int = 8,
) -> DramTimings:
    """Return the timing set for a device of ``technology`` at ``data_rate`` Hz.

    The analog latencies are taken from the technology's reference grade and
    quantized to the interface clock, mirroring what MRC training produces for each
    supported frequency (Sec. 2.5).
    """
    if data_rate <= 0:
        raise ValueError("data rate must be positive")
    technology = technology.lower()
    if technology in ("lpddr3", "ddr3l", "ddr3"):
        reference = _LPDDR3_REFERENCE
    elif technology == "ddr4":
        reference = _DDR4_REFERENCE
    else:
        raise ValueError(f"unknown DRAM technology {technology!r}")

    clock_period = 2.0 / data_rate
    quantized: Dict[str, float] = {
        name: _quantize(latency, clock_period) for name, latency in reference.items()
    }
    return DramTimings(
        data_rate=data_rate,
        trcd=quantized["trcd"],
        tcl=quantized["tcl"],
        trp=quantized["trp"],
        trc=quantized["trc"],
        channels=channels,
        bus_width_bytes=bus_width_bytes,
    )


#: Pre-built timing sets for the LPDDR3 bins the paper uses (Sec. 3, footnote 4).
LPDDR3_TIMINGS: Dict[float, DramTimings] = {
    frequency: timings_for_frequency(frequency, "lpddr3")
    for frequency in config.LPDDR3_FREQUENCY_BINS
}

#: Pre-built timing sets for the DDR4 bins of the Sec. 7.4 sensitivity study.
DDR4_TIMINGS: Dict[float, DramTimings] = {
    frequency: timings_for_frequency(frequency, "ddr4")
    for frequency in config.DDR4_FREQUENCY_BINS
}
