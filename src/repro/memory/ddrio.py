"""DDRIO (DRAM interface) model.

Fig. 1 splits the DRAM interface into a digital part (on the V_IO rail, scalable)
and an analog part (on VDDQ together with the DRAM devices, not scalable on
commercial parts -- Sec. 2.4).  SysScale concurrently applies DVFS to DDRIO-digital
whenever it scales the memory subsystem; one of its domain-specialized mechanisms
is "adding a dedicated scalable voltage supply" to the DRAM interface (Sec. 1).

The model exposes the interface power as a function of frequency, voltage scale,
and utilization, separating the frequency-dependent IO/register power from the
utilization-dependent termination power (Sec. 2.3: "termination power depends on
interface utilization and it is not directly frequency-dependent").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import config


@dataclass
class DdrioModel:
    """Power model of the DDRIO digital and analog sections.

    Parameters
    ----------
    digital_power_high:
        Power of the digital section at the high operating point, full V_IO, watts.
    analog_power_high:
        Power of the analog section (drivers/receivers on VDDQ) at the high
        operating point, watts.
    termination_power_peak:
        Termination power at 100 % interface utilization, watts.
    reference_frequency:
        The data rate at which the ``*_high`` figures were characterised (Hz).
    """

    digital_power_high: float = config.DDRIO_DIGITAL_POWER_HIGH
    analog_power_high: float = 0.08
    termination_power_peak: float = 0.12
    reference_frequency: float = config.LPDDR3_FREQUENCY_BINS[0]

    def __post_init__(self) -> None:
        for name in (
            "digital_power_high",
            "analog_power_high",
            "termination_power_peak",
            "reference_frequency",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.reference_frequency <= 0:
            raise ValueError("reference frequency must be positive")

    def digital_power(self, frequency: float, v_io_scale: float = 1.0) -> float:
        """Power of the DDRIO-digital section (V_IO rail): ``P ~ V^2 * f``."""
        self._check(frequency, v_io_scale)
        frequency_ratio = frequency / self.reference_frequency
        return self.digital_power_high * v_io_scale ** 2 * frequency_ratio

    def analog_power(self, frequency: float) -> float:
        """Power of the DDRIO-analog section (VDDQ rail, voltage fixed): ``P ~ f``."""
        self._check(frequency, 1.0)
        return self.analog_power_high * (frequency / self.reference_frequency)

    def termination_power(self, utilization: float) -> float:
        """Termination power: proportional to utilization, frequency-independent."""
        if not 0.0 <= utilization <= 1.0:
            raise ValueError("utilization must be in [0, 1]")
        return self.termination_power_peak * utilization

    def total_power(
        self,
        frequency: float,
        utilization: float,
        v_io_scale: float = 1.0,
        in_self_refresh: bool = False,
    ) -> float:
        """Total DDRIO power; in self-refresh only a small fraction of digital power remains."""
        if in_self_refresh:
            return 0.1 * self.digital_power(frequency, v_io_scale)
        return (
            self.digital_power(frequency, v_io_scale)
            + self.analog_power(frequency)
            + self.termination_power(utilization)
        )

    @staticmethod
    def _check(frequency: float, scale: float) -> None:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        if not 0 < scale <= 1.5:
            raise ValueError("voltage scale must be in (0, 1.5]")
