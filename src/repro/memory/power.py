"""Memory subsystem power model: background, operation, termination, MC power.

Sec. 2.3 decomposes DRAM system power into background power, operation power, and
memory-controller power; Sec. 2.4 gives the scaling rules under memory DVFS:

* background power reduces roughly linearly with frequency;
* memory-controller power reduces approximately cubically (voltage^2 x frequency,
  with the voltage following the frequency);
* per-access read/write/termination *energy* increases at lower frequency because
  each access takes longer (the power model captures this by charging operation
  energy per byte with a mild low-frequency inflation);
* DRAM array voltage (VDDQ) is fixed, so array energy per access does not scale.

The model returns a :class:`MemoryPowerBreakdown` so experiments can report and
ablate the individual components.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from repro import config
from repro.memory.ddrio import DdrioModel
from repro.memory.dram import DramDevice
from repro.memory.mrc import MrcRegisterFile


@dataclass(frozen=True)
class MemoryPowerBreakdown:
    """Per-component power of the memory subsystem and the V_SA agents, in watts."""

    dram_background: float
    dram_operation: float
    ddrio_digital: float
    ddrio_analog: float
    termination: float
    memory_controller: float
    io_interconnect: float
    io_engines: float
    self_refresh: float

    def __post_init__(self) -> None:
        for component_field in fields(self):
            if getattr(self, component_field.name) < 0:
                raise ValueError(f"{component_field.name} must be non-negative")

    @property
    def total(self) -> float:
        """Total memory + IO domain power in watts."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def memory_domain(self) -> float:
        """Power of the memory domain proper (MC + DDRIO + DRAM)."""
        return (
            self.dram_background
            + self.dram_operation
            + self.ddrio_digital
            + self.ddrio_analog
            + self.termination
            + self.memory_controller
            + self.self_refresh
        )

    @property
    def io_domain(self) -> float:
        """Power of the IO domain (interconnect + IO engines)."""
        return self.io_interconnect + self.io_engines

    def as_dict(self) -> dict:
        """Flat dictionary view, including the totals."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["memory_domain"] = self.memory_domain
        data["io_domain"] = self.io_domain
        data["total"] = self.total
        return data


@dataclass
class MemoryPowerModel:
    """Analytic power model of the memory and IO domains.

    The high-operating-point component powers come from ``repro.config`` (documented
    calibration constants); the model scales them with frequency and rail voltage
    according to the rules of Sec. 2.4.
    """

    device: DramDevice
    ddrio: DdrioModel
    mc_power_high: float = config.V_SA_MC_POWER_HIGH
    interconnect_power_high: float = config.V_SA_INTERCONNECT_POWER_HIGH
    io_engines_power_high: float = config.V_SA_IO_ENGINES_POWER_HIGH
    background_power_high: float = config.DRAM_BACKGROUND_POWER_HIGH
    background_frequency_fraction: float = config.DRAM_BACKGROUND_FREQUENCY_SCALED_FRACTION
    operation_energy_per_byte: float = config.DRAM_OPERATION_ENERGY_PER_BYTE
    self_refresh_power: float = config.DRAM_SELF_REFRESH_POWER
    reference_frequency: float = config.LPDDR3_FREQUENCY_BINS[0]
    reference_interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY

    def __post_init__(self) -> None:
        numeric_fields = (
            "mc_power_high",
            "interconnect_power_high",
            "io_engines_power_high",
            "background_power_high",
            "operation_energy_per_byte",
            "self_refresh_power",
        )
        for name in numeric_fields:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 <= self.background_frequency_fraction <= 1.0:
            raise ValueError("background frequency fraction must be in [0, 1]")
        if self.reference_frequency <= 0 or self.reference_interconnect_frequency <= 0:
            raise ValueError("reference frequencies must be positive")

    # ------------------------------------------------------------------
    # Individual components
    # ------------------------------------------------------------------
    def dram_background_power(self, dram_frequency: float, in_self_refresh: bool) -> float:
        """Background (maintenance + refresh) power; linear-in-frequency portion scales."""
        self._check_frequency(dram_frequency)
        if in_self_refresh:
            return 0.0
        ratio = dram_frequency / self.reference_frequency
        scaled = self.background_power_high * (
            (1.0 - self.background_frequency_fraction)
            + self.background_frequency_fraction * ratio
        )
        return scaled

    def dram_operation_power(
        self,
        bandwidth: float,
        dram_frequency: float,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Array + IO operation power for ``bandwidth`` bytes/s of traffic.

        Per-access energy rises mildly at lower frequency (longer bursts, Sec. 2.4)
        and rises substantially when the MRC registers are unoptimized (Fig. 4).
        """
        if bandwidth < 0:
            raise ValueError("bandwidth must be non-negative")
        self._check_frequency(dram_frequency)
        frequency_ratio = self.reference_frequency / dram_frequency
        energy_per_byte = self.operation_energy_per_byte * (1.0 + 0.10 * (frequency_ratio - 1.0))
        if mrc is not None:
            energy_per_byte *= mrc.interface_power_factor(dram_frequency)
        return bandwidth * energy_per_byte

    def memory_controller_power(self, dram_frequency: float, v_sa_scale: float) -> float:
        """MC power: ``P ~ V_SA^2 * f_MC`` (approximately cubic under DVFS, Sec. 2.4)."""
        self._check_frequency(dram_frequency)
        self._check_scale(v_sa_scale)
        frequency_ratio = dram_frequency / self.reference_frequency
        return self.mc_power_high * v_sa_scale ** 2 * frequency_ratio

    def interconnect_power(self, interconnect_frequency: float, v_sa_scale: float) -> float:
        """IO interconnect power: ``P ~ V_SA^2 * f_IC``."""
        if interconnect_frequency <= 0:
            raise ValueError("interconnect frequency must be positive")
        self._check_scale(v_sa_scale)
        ratio = interconnect_frequency / self.reference_interconnect_frequency
        return self.interconnect_power_high * v_sa_scale ** 2 * ratio

    def io_engines_power(self, v_sa_scale: float, io_activity: float = 1.0) -> float:
        """IO engines/controllers power on the V_SA rail, scaled by activity."""
        self._check_scale(v_sa_scale)
        if not 0.0 <= io_activity <= 1.0:
            raise ValueError("IO activity must be in [0, 1]")
        floor = 0.3  # clock-tree and always-on logic
        activity_term = floor + (1.0 - floor) * io_activity
        return self.io_engines_power_high * v_sa_scale ** 2 * activity_term

    # ------------------------------------------------------------------
    # Aggregate
    # ------------------------------------------------------------------
    def breakdown(
        self,
        dram_frequency: float,
        interconnect_frequency: float,
        v_sa_scale: float,
        v_io_scale: float,
        bandwidth: float,
        io_activity: float = 0.5,
        in_self_refresh: bool = False,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> MemoryPowerBreakdown:
        """Full per-component breakdown of memory + IO domain power (watts)."""
        self._check_frequency(dram_frequency)
        utilization = 0.0
        ceiling = self.device.peak_bandwidth(dram_frequency)
        if ceiling > 0 and not in_self_refresh:
            utilization = min(1.0, bandwidth / ceiling)

        if in_self_refresh:
            dram_operation = 0.0
            termination = 0.0
            ddrio_digital = self.ddrio.total_power(
                dram_frequency, 0.0, v_io_scale, in_self_refresh=True
            )
            ddrio_analog = 0.0
            self_refresh = self.self_refresh_power
        else:
            operation_total = self.dram_operation_power(bandwidth, dram_frequency, mrc)
            termination = self.ddrio.termination_power(utilization)
            if mrc is not None:
                termination *= mrc.interface_power_factor(dram_frequency)
            dram_operation = operation_total
            ddrio_digital = self.ddrio.digital_power(dram_frequency, v_io_scale)
            ddrio_analog = self.ddrio.analog_power(dram_frequency)
            if mrc is not None:
                # Mistrained drive-strength/equalization settings burn extra
                # interface power (Fig. 4), not just extra array energy.
                interface_factor = mrc.interface_power_factor(dram_frequency)
                ddrio_digital *= interface_factor
                ddrio_analog *= interface_factor
            self_refresh = 0.0

        return MemoryPowerBreakdown(
            dram_background=self.dram_background_power(dram_frequency, in_self_refresh),
            dram_operation=dram_operation,
            ddrio_digital=ddrio_digital,
            ddrio_analog=ddrio_analog,
            termination=termination,
            memory_controller=self.memory_controller_power(dram_frequency, v_sa_scale),
            io_interconnect=self.interconnect_power(interconnect_frequency, v_sa_scale),
            io_engines=self.io_engines_power(v_sa_scale, io_activity),
            self_refresh=self_refresh,
        )

    def total_power(self, **kwargs) -> float:
        """Total memory + IO domain power (watts); same arguments as :meth:`breakdown`."""
        return self.breakdown(**kwargs).total

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_scale(scale: float) -> None:
        if not 0 < scale <= 1.5:
            raise ValueError("voltage scale must be in (0, 1.5]")

    @staticmethod
    def _check_frequency(frequency: float) -> None:
        if frequency <= 0:
            raise ValueError("frequency must be positive")
