"""Memory controller model: achievable bandwidth and access latency.

The controller model converts a memory-domain configuration (DRAM frequency bin,
MC clock, interconnect clock, MRC state) and an offered load into the two
quantities the performance model needs:

* the **achievable bandwidth ceiling**, derated from the interface peak by the
  controller's scheduling efficiency and by an unoptimized MRC register file;
* the **average access latency**, composed of controller pipeline latency (scales
  with the MC clock), interconnect traversal (scales with the interconnect clock),
  DRAM device latency (from the timing set), and a queueing term that grows as the
  offered load approaches the bandwidth ceiling (Sec. 2.4: reducing frequency
  "increases the queuing delays at the memory controller").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.memory.dram import DramDevice
from repro.memory.mrc import MrcRegisterFile


@dataclass
class MemoryControllerModel:
    """Analytic memory-controller model.

    Parameters
    ----------
    device:
        The attached DRAM device.
    scheduling_efficiency:
        Fraction of the interface peak bandwidth a well-tuned controller achieves
        on mixed traffic (row-hit friendly streaming achieves more, random less).
    pipeline_cycles:
        Controller pipeline depth in MC clock cycles (request ingress to command
        issue).
    interconnect_cycles:
        System-agent traversal in interconnect clock cycles; only a small part of
        a CPU request's path crosses logic clocked by the interconnect, IO-agent
        requests cross more of it.
    row_hit_rate:
        Average row-buffer hit rate used for device latency.
    core_path_latency:
        Fixed load-to-use latency outside the memory subsystem (core queues, L2/L3
        lookup and fill path).  It does not scale with memory-domain DVFS, which
        is why the *effective* latency ratio between operating points is much
        smaller than the ratio of the scaled components alone.
    """

    device: DramDevice
    scheduling_efficiency: float = 0.88
    pipeline_cycles: int = 8
    interconnect_cycles: int = 3
    row_hit_rate: float = 0.55
    core_path_latency: float = 55e-9

    def __post_init__(self) -> None:
        if not 0.0 < self.scheduling_efficiency <= 1.0:
            raise ValueError("scheduling efficiency must be in (0, 1]")
        if self.pipeline_cycles <= 0 or self.interconnect_cycles <= 0:
            raise ValueError("pipeline and interconnect cycle counts must be positive")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row hit rate must be in [0, 1]")
        if self.core_path_latency < 0:
            raise ValueError("core path latency must be non-negative")

    # ------------------------------------------------------------------
    # Bandwidth
    # ------------------------------------------------------------------
    def peak_bandwidth(self, dram_frequency: Optional[float] = None) -> float:
        """Interface peak bandwidth (bytes/s) at the given or current bin."""
        return self.device.peak_bandwidth(dram_frequency)

    def achievable_bandwidth(
        self,
        dram_frequency: Optional[float] = None,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Bandwidth ceiling after scheduling efficiency and MRC derate (bytes/s)."""
        frequency = (
            self.device.current_frequency if dram_frequency is None else dram_frequency
        )
        ceiling = self.peak_bandwidth(frequency) * self.scheduling_efficiency
        if mrc is not None:
            ceiling *= mrc.effective_bandwidth_derate(frequency)
        return ceiling

    def utilization(
        self,
        demand_bandwidth: float,
        dram_frequency: Optional[float] = None,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Offered load as a fraction of the achievable ceiling, clamped to [0, 1]."""
        if demand_bandwidth < 0:
            raise ValueError("demand bandwidth must be non-negative")
        ceiling = self.achievable_bandwidth(dram_frequency, mrc)
        if ceiling <= 0:
            return 1.0
        return min(1.0, demand_bandwidth / ceiling)

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def unloaded_latency(
        self,
        dram_frequency: Optional[float] = None,
        interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Average latency (seconds) of an isolated request.

        Composed of MC pipeline, interconnect traversal, and DRAM device latency.
        """
        frequency = (
            self.device.current_frequency if dram_frequency is None else dram_frequency
        )
        if interconnect_frequency <= 0:
            raise ValueError("interconnect frequency must be positive")
        mc_frequency = frequency * config.MC_TO_DDR_FREQUENCY_RATIO
        timings = self.device.timings(frequency)
        device_latency = timings.average_access_latency(self.row_hit_rate)
        if mrc is not None:
            device_latency *= mrc.access_latency_factor(frequency)
        controller_latency = self.pipeline_cycles / mc_frequency
        interconnect_latency = self.interconnect_cycles / interconnect_frequency
        return (
            self.core_path_latency
            + controller_latency
            + interconnect_latency
            + device_latency
        )

    def loaded_latency(
        self,
        demand_bandwidth: float,
        dram_frequency: Optional[float] = None,
        interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY,
        mrc: Optional[MrcRegisterFile] = None,
    ) -> float:
        """Average latency (seconds) including the queueing penalty under load.

        A standard M/D/1-flavoured inflation ``1 + k * u / (1 - u)`` (clamped) is
        used: latency grows mildly at moderate utilization and steeply as the
        offered load approaches the ceiling, which reproduces the paper's
        observation that reducing memory frequency hurts bandwidth-bound workloads
        far more than others.
        """
        base = self.unloaded_latency(dram_frequency, interconnect_frequency, mrc)
        utilization = self.utilization(demand_bandwidth, dram_frequency, mrc)
        utilization = min(utilization, 0.98)
        queueing_factor = 1.0 + 0.5 * utilization / (1.0 - utilization)
        return base * min(queueing_factor, 8.0)

    def describe(self) -> dict:
        """Flat summary for result tables."""
        return {
            "scheduling_efficiency": self.scheduling_efficiency,
            "pipeline_cycles": self.pipeline_cycles,
            "interconnect_cycles": self.interconnect_cycles,
            "row_hit_rate": self.row_hit_rate,
            "peak_bandwidth_gbps": self.peak_bandwidth() / config.GBPS,
        }
