"""Memory subsystem substrate: DRAM device, timings, DDRIO, MRC, controller, power.

This package models the memory domain of Fig. 1: the memory controller, the DRAM
interface (DDRIO, analog and digital), and the DRAM devices themselves, including
the frequency bins the devices support, the self-refresh state used during DVFS
transitions, and the memory-reference-code (MRC) configuration registers whose
per-frequency optimization is one of SysScale's key mechanisms (Sec. 2.5, Fig. 4).
"""

from repro.memory.timings import DramTimings, timings_for_frequency
from repro.memory.dram import (
    DramTechnology,
    DramDevice,
    DramOrganization,
    SelfRefreshError,
    lpddr3_device,
    ddr4_device,
)
from repro.memory.ddrio import DdrioModel
from repro.memory.mrc import (
    MrcConfigurationSet,
    MrcRegisterFile,
    MrcSram,
    MrcTrainingError,
    train_mrc,
)
from repro.memory.controller import MemoryControllerModel
from repro.memory.power import MemoryPowerModel, MemoryPowerBreakdown

__all__ = [
    "DramTimings",
    "timings_for_frequency",
    "DramTechnology",
    "DramDevice",
    "DramOrganization",
    "SelfRefreshError",
    "lpddr3_device",
    "ddr4_device",
    "DdrioModel",
    "MrcConfigurationSet",
    "MrcRegisterFile",
    "MrcSram",
    "MrcTrainingError",
    "train_mrc",
    "MemoryControllerModel",
    "MemoryPowerModel",
    "MemoryPowerBreakdown",
]
