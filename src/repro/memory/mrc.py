"""Memory Reference Code (MRC): per-frequency configuration registers.

Sec. 2.5 explains that the BIOS MRC trains the memory controller, DDRIO, and DIMM
configuration registers for *one* DRAM frequency; when DVFS moves the memory
subsystem to a different frequency those registers are stale ("unoptimized") and
can degrade performance and negate the benefits of DVFS.  Fig. 4 quantifies the
penalty on a peak-bandwidth microbenchmark: roughly 22 % higher average power and
10 % lower performance.

SysScale fixes this by performing MRC training for every supported frequency at
reset, storing the resulting register sets in ~0.5 KB of on-chip SRAM, and loading
the right set during each DVFS transition (Sec. 5, Fig. 5 step 5).  This module
models the register sets, the SRAM that stores them, and the penalty of running
with a mismatched set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import config
from repro.memory.timings import DramTimings


class MrcTrainingError(ValueError):
    """Raised when MRC training or register loading is given invalid input."""


@dataclass(frozen=True)
class MrcConfigurationSet:
    """The register values MRC training produces for one DRAM frequency.

    The fields are the quantities that actually matter to the model: the cycle-count
    timings programmed into the memory controller, the DDRIO drive/equalization
    settings (abstracted as a single efficiency factor), and the frequency the set
    was trained for.
    """

    trained_frequency: float
    trcd_cycles: int
    tcl_cycles: int
    trp_cycles: int
    drive_strength_code: int
    equalization_code: int
    register_bytes: int = 96

    def __post_init__(self) -> None:
        if self.trained_frequency <= 0:
            raise MrcTrainingError("trained frequency must be positive")
        for name in ("trcd_cycles", "tcl_cycles", "trp_cycles"):
            if getattr(self, name) <= 0:
                raise MrcTrainingError(f"{name} must be positive")
        if self.register_bytes <= 0:
            raise MrcTrainingError("register footprint must be positive")

    def matches(self, frequency: float, tolerance: float = 1e3) -> bool:
        """True if this set was trained for ``frequency``."""
        return abs(self.trained_frequency - frequency) <= tolerance


def train_mrc(timings: DramTimings) -> MrcConfigurationSet:
    """Perform (model-level) MRC training for one frequency bin.

    The cycle counts come straight from the timing set; the interface training
    codes are deterministic functions of the data rate, standing in for the real
    eye-training procedure (JEDEC [47]).
    """
    clock = timings.clock_period
    if clock <= 0:
        raise MrcTrainingError("invalid timing set: non-positive clock period")
    return MrcConfigurationSet(
        trained_frequency=timings.data_rate,
        trcd_cycles=max(1, round(timings.trcd / clock)),
        tcl_cycles=max(1, round(timings.tcl / clock)),
        trp_cycles=max(1, round(timings.trp / clock)),
        drive_strength_code=int(timings.data_rate / config.MHZ) % 64,
        equalization_code=int(timings.data_rate / config.MHZ) % 16,
    )


@dataclass
class MrcSram:
    """The on-chip SRAM that holds one trained register set per frequency bin.

    Sec. 5: "To support MRC updates, we need to dedicate approximately 0.5 KB of
    SRAM".  The model enforces that budget so mis-parameterisation is caught.
    """

    capacity_bytes: int = config.MRC_SRAM_BYTES
    _sets: Dict[float, MrcConfigurationSet] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise MrcTrainingError("SRAM capacity must be positive")

    def store(self, configuration: MrcConfigurationSet) -> None:
        """Store a trained set; raises if the SRAM budget would be exceeded."""
        projected = self.used_bytes + configuration.register_bytes
        key = configuration.trained_frequency
        if key in self._sets:
            projected -= self._sets[key].register_bytes
        if projected > self.capacity_bytes:
            raise MrcTrainingError(
                f"storing the set for {key / config.GHZ:.2f} GHz would use "
                f"{projected} B, exceeding the {self.capacity_bytes} B SRAM budget"
            )
        self._sets[key] = configuration

    def load(self, frequency: float) -> MrcConfigurationSet:
        """Retrieve the set trained for ``frequency``; raises ``KeyError`` if absent."""
        for trained, configuration in self._sets.items():
            if abs(trained - frequency) <= 1e3:
                return configuration
        raise KeyError(
            f"no MRC set stored for {frequency / config.GHZ:.2f} GHz; stored: "
            f"{[f / config.GHZ for f in self._sets]}"
        )

    def has_frequency(self, frequency: float) -> bool:
        """True if a set trained for ``frequency`` is stored."""
        return any(abs(trained - frequency) <= 1e3 for trained in self._sets)

    @property
    def used_bytes(self) -> int:
        """Bytes of SRAM currently occupied."""
        return sum(s.register_bytes for s in self._sets.values())

    @property
    def stored_frequencies(self) -> List[float]:
        """Frequencies with a stored set, highest first."""
        return sorted(self._sets, reverse=True)

    def load_latency(self) -> float:
        """Latency of copying a set from SRAM into the configuration registers.

        Sec. 5 budgets this at less than 1 us.
        """
        return config.TRANSITION_MRC_LOAD_LATENCY


@dataclass
class MrcRegisterFile:
    """The live configuration registers of the MC, DDRIO, and DRAM devices.

    The register file always holds exactly one configuration set.  Whether that set
    matches the *current* operating frequency determines the optimized/unoptimized
    penalties applied by the performance and power models (Fig. 4).
    """

    loaded: MrcConfigurationSet
    bandwidth_penalty: float = config.UNOPTIMIZED_MRC_PERFORMANCE_PENALTY
    power_penalty: float = config.UNOPTIMIZED_MRC_POWER_PENALTY

    def __post_init__(self) -> None:
        if not 0.0 <= self.bandwidth_penalty < 1.0:
            raise MrcTrainingError("bandwidth penalty must be in [0, 1)")
        if self.power_penalty < 0.0:
            raise MrcTrainingError("power penalty must be non-negative")

    def load(self, configuration: MrcConfigurationSet) -> None:
        """Overwrite the live registers with ``configuration``."""
        self.loaded = configuration

    def is_optimized_for(self, frequency: float) -> bool:
        """True when the loaded set was trained for ``frequency``."""
        return self.loaded.matches(frequency)

    def effective_bandwidth_derate(self, frequency: float) -> float:
        """Multiplier (<= 1) on achievable bandwidth at ``frequency``.

        An optimized register file achieves the full interface bandwidth; a
        mismatched one loses ``bandwidth_penalty`` (Fig. 4: ~10 % performance loss
        on a peak-bandwidth microbenchmark).
        """
        if self.is_optimized_for(frequency):
            return 1.0
        return 1.0 - self.bandwidth_penalty

    def access_latency_factor(self, frequency: float) -> float:
        """Multiplier (>= 1) on DRAM access latency at ``frequency``."""
        if self.is_optimized_for(frequency):
            return 1.0
        # Guard-banded timings: a mismatched set runs with padded cycle counts.
        return 1.0 + self.bandwidth_penalty

    def interface_power_factor(self, frequency: float) -> float:
        """Multiplier (>= 1) on DRAM interface/operation power at ``frequency``.

        Fig. 4: unoptimized values cost ~22 % more average power on a
        bandwidth-intensive microbenchmark; the factor applies to the operation
        and termination components, which dominate in that scenario.
        """
        if self.is_optimized_for(frequency):
            return 1.0
        return 1.0 + self.power_penalty


def build_mrc_sram_for_bins(
    timing_sets: Iterable[DramTimings],
    capacity_bytes: int = config.MRC_SRAM_BYTES,
) -> Tuple[MrcSram, Dict[float, MrcConfigurationSet]]:
    """Train MRC for every timing set and store the results in a fresh SRAM.

    Returns the populated SRAM and the mapping of frequency to configuration set.
    This is the reset-time procedure described in Sec. 5.
    """
    sram = MrcSram(capacity_bytes=capacity_bytes)
    trained: Dict[float, MrcConfigurationSet] = {}
    for timings in timing_sets:
        configuration = train_mrc(timings)
        sram.store(configuration)
        trained[timings.data_rate] = configuration
    if not trained:
        raise MrcTrainingError("at least one timing set is required")
    return sram, trained
