"""DRAM device model: organization, frequency bins, and self-refresh state.

Sec. 2.2 of the paper sketches the DRAM organization (ranks, banks, rows/columns of
cells); Sec. 2.4 and 3 describe the discrete frequency bins commercial devices
support and the fact that VDDQ cannot be scaled.  This module models a DRAM device
at that level: enough structure to reason about bandwidth, latency, refresh, and
the self-refresh entry/exit that brackets every SysScale DVFS transition
(Fig. 5, steps 4 and 8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import config
from repro.memory.timings import DramTimings, timings_for_frequency


class DramTechnology(str, enum.Enum):
    """DRAM device families used in the paper's evaluation."""

    LPDDR3 = "lpddr3"
    DDR4 = "ddr4"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SelfRefreshError(RuntimeError):
    """Raised when self-refresh entry/exit or frequency changes are mis-sequenced."""


@dataclass(frozen=True)
class DramOrganization:
    """Physical organization of the memory attached to the SoC."""

    ranks: int = 2
    banks_per_rank: int = 8
    rows_per_bank: int = 32768
    row_size_bytes: int = 4096
    capacity_bytes: int = 8 * 1024 ** 3

    def __post_init__(self) -> None:
        for name in ("ranks", "banks_per_rank", "rows_per_bank", "row_size_bytes", "capacity_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def total_banks(self) -> int:
        """Banks across all ranks (the unit of bank-level parallelism)."""
        return self.ranks * self.banks_per_rank


@dataclass
class DramDevice:
    """A DRAM subsystem supporting a discrete set of frequency bins.

    Parameters
    ----------
    technology:
        Device family (LPDDR3 for the main evaluation, DDR4 for Sec. 7.4).
    frequency_bins:
        Discrete data rates the device supports, highest first (footnote 4:
        "DRAM devices support a few discrete frequency bins, normally only three").
    organization:
        Physical organization (ranks/banks/rows).
    vddq:
        The DRAM supply voltage; fixed, because commercial devices do not support
        voltage scaling of the array (Sec. 2.4).
    """

    technology: DramTechnology
    frequency_bins: Tuple[float, ...]
    organization: DramOrganization = field(default_factory=DramOrganization)
    vddq: float = 1.2
    channels: int = 2
    bus_width_bytes: int = 8
    current_frequency: float = field(init=False)
    in_self_refresh: bool = field(init=False, default=False)
    _frequency_switch_count: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not self.frequency_bins:
            raise ValueError("a DRAM device needs at least one frequency bin")
        if any(f <= 0 for f in self.frequency_bins):
            raise ValueError("frequency bins must be positive")
        bins = tuple(sorted(set(self.frequency_bins), reverse=True))
        object.__setattr__(self, "frequency_bins", bins)
        if self.vddq <= 0:
            raise ValueError("VDDQ must be positive")
        if self.channels <= 0 or self.bus_width_bytes <= 0:
            raise ValueError("channel count and bus width must be positive")
        # The default bin for most systems is the highest frequency (footnote 4).
        self.current_frequency = bins[0]

    # ------------------------------------------------------------------
    # Frequency bins
    # ------------------------------------------------------------------
    @property
    def max_frequency(self) -> float:
        """Highest supported data rate (the default bin)."""
        return self.frequency_bins[0]

    @property
    def min_frequency(self) -> float:
        """Lowest supported data rate."""
        return self.frequency_bins[-1]

    def supports_frequency(self, frequency: float) -> bool:
        """True if ``frequency`` is one of the device's discrete bins."""
        return any(abs(frequency - f) < 1e3 for f in self.frequency_bins)

    def nearest_bin(self, frequency: float) -> float:
        """The supported bin closest to ``frequency``."""
        return min(self.frequency_bins, key=lambda f: abs(f - frequency))

    def next_lower_bin(self, frequency: Optional[float] = None) -> Optional[float]:
        """The bin one step below ``frequency`` (default: the current bin), if any."""
        reference = self.current_frequency if frequency is None else frequency
        lower = [f for f in self.frequency_bins if f < reference - 1e3]
        return lower[0] if lower else None

    def next_higher_bin(self, frequency: Optional[float] = None) -> Optional[float]:
        """The bin one step above ``frequency`` (default: the current bin), if any."""
        reference = self.current_frequency if frequency is None else frequency
        higher = [f for f in reversed(self.frequency_bins) if f > reference + 1e3]
        return higher[0] if higher else None

    # ------------------------------------------------------------------
    # Self-refresh and frequency switching (Fig. 5 steps 4, 6, 8)
    # ------------------------------------------------------------------
    def enter_self_refresh(self) -> None:
        """Put the device into self-refresh; required before a frequency change."""
        if self.in_self_refresh:
            raise SelfRefreshError("device is already in self-refresh")
        self.in_self_refresh = True

    def exit_self_refresh(self, fast_training: bool = True) -> float:
        """Leave self-refresh; returns the exit latency in seconds.

        Sec. 5 budgets "less than 5 us with a fast training process"; without fast
        training (the re-lock path legacy flows use) the exit costs noticeably more,
        which is part of why prior-work transitions are slower.
        """
        if not self.in_self_refresh:
            raise SelfRefreshError("device is not in self-refresh")
        self.in_self_refresh = False
        if fast_training:
            return config.TRANSITION_SELF_REFRESH_EXIT_LATENCY
        return config.TRANSITION_SELF_REFRESH_EXIT_LATENCY * 4.0

    def set_frequency(self, frequency: float) -> None:
        """Switch the device to a new bin; only legal while in self-refresh."""
        if not self.in_self_refresh:
            raise SelfRefreshError(
                "DRAM frequency may only be changed while the device is in "
                "self-refresh (Fig. 5, step 4 precedes step 6)"
            )
        if not self.supports_frequency(frequency):
            raise ValueError(
                f"frequency {frequency / config.GHZ:.2f} GHz is not a supported bin; "
                f"supported bins: {[f / config.GHZ for f in self.frequency_bins]}"
            )
        self.current_frequency = self.nearest_bin(frequency)
        self._frequency_switch_count += 1

    @property
    def frequency_switch_count(self) -> int:
        """Number of frequency-bin switches performed so far."""
        return self._frequency_switch_count

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def timings(self, frequency: Optional[float] = None) -> DramTimings:
        """Timing set at ``frequency`` (default: the current operating frequency).

        The frequency does not need to be one of the device's bins: callers such as
        the Fig. 6 sensitivity sweep evaluate hypothetical frequencies, for which
        the JEDEC reference latencies are simply re-quantized to the new clock.
        """
        target = self.current_frequency if frequency is None else frequency
        return timings_for_frequency(
            target,
            self.technology.value,
            channels=self.channels,
            bus_width_bytes=self.bus_width_bytes,
        )

    def peak_bandwidth(self, frequency: Optional[float] = None) -> float:
        """Peak theoretical bandwidth (bytes/second) at ``frequency``."""
        return self.timings(frequency).peak_bandwidth

    def describe(self) -> dict:
        """Flat summary for result tables."""
        return {
            "technology": self.technology.value,
            "frequency_bins_ghz": [f / config.GHZ for f in self.frequency_bins],
            "current_frequency_ghz": self.current_frequency / config.GHZ,
            "channels": self.channels,
            "capacity_gib": self.organization.capacity_bytes / 1024 ** 3,
            "peak_bandwidth_gbps": self.peak_bandwidth() / config.GBPS,
            "vddq": self.vddq,
            "in_self_refresh": self.in_self_refresh,
        }


def lpddr3_device(
    frequency_bins: Tuple[float, ...] = config.LPDDR3_FREQUENCY_BINS,
    capacity_bytes: int = 8 * 1024 ** 3,
    channels: int = 2,
) -> DramDevice:
    """The LPDDR3-1600 dual-channel, 8 GB, non-ECC configuration of Table 2."""
    return DramDevice(
        technology=DramTechnology.LPDDR3,
        frequency_bins=frequency_bins,
        organization=DramOrganization(capacity_bytes=capacity_bytes),
        vddq=1.2,
        channels=channels,
    )


def ddr4_device(
    frequency_bins: Tuple[float, ...] = config.DDR4_FREQUENCY_BINS,
    capacity_bytes: int = 8 * 1024 ** 3,
    channels: int = 2,
) -> DramDevice:
    """The DDR4 configuration used in the Sec. 7.4 sensitivity study."""
    return DramDevice(
        technology=DramTechnology.DDR4,
        frequency_bins=frequency_bins,
        organization=DramOrganization(capacity_bytes=capacity_bytes),
        vddq=1.2,
        channels=channels,
    )
