"""CoScale [14] comparison point and its -Redist variant.

CoScale coordinates CPU-core DVFS with memory-subsystem DVFS in server systems: it
searches for the joint (CPU frequency, memory frequency) configuration that
minimizes energy while staying inside a performance-slack bound.  Relative to
MemScale, the coordination gives it two advantages the paper's projection reflects
(Sec. 6-8):

* it can scale the memory subsystem during a larger fraction of the time because
  the joint model accounts for how CPU and memory slowdowns interact, so its
  decisions are less conservative than MemScale's per-domain slack accounting;
* during memory-bound episodes it additionally lowers the CPU frequency, whose
  saved power also lands in the redistributable pool of the -Redist variant.

It still shares MemScale's structural limitations on a mobile SoC: no IO
interconnect or DDRIO voltage scaling (those are outside both papers' scope) and
no MRC re-optimization, so the Fig. 4 penalties still apply.  For graphics and
battery-life workloads the CPU already sits at its lowest frequency, so CoScale's
CPU-side advantage disappears and it matches MemScale (Sec. 7.2-7.3), which is
exactly how the paper explains the near-identical bars of Figs. 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.baselines.memscale import (
    MemScalePolicy,
    MemScaleRedistProjection,
    UNOPTIMIZED_MRC_SLOWDOWN_SHARE,
)
from repro.baselines.projection import ProjectionResult, RedistProjection
from repro.sim.platform import Platform
from repro.workloads.trace import WorkloadClass, WorkloadTrace


#: CoScale's epoch controller selects the reduced memory frequency more often than
#: MemScale's because the joint CPU+memory model bounds slack more accurately.
#: Modelling parameter; see DESIGN.md.
COSCALE_LOW_RESIDENCY = 0.80

#: Fraction of the per-core power CoScale can shed by lowering the CPU frequency
#: during memory-bound execution (one or two bins of headroom at these TDPs).
COSCALE_CPU_SCALING_DEPTH = 0.35


@dataclass
class CoScalePolicy(MemScalePolicy):
    """Engine-runnable CoScale: like MemScale but with a less conservative guard.

    The joint-slack accounting is represented by a higher utilization threshold
    before it backs off to the high memory frequency.
    """

    utilization_threshold: float = 0.60
    name: str = "CoScale"


@dataclass
class CoScaleRedistProjection(MemScaleRedistProjection):
    """CoScale-Redist: the paper's projection of CoScale plus budget redistribution."""

    low_residency: float = COSCALE_LOW_RESIDENCY
    technique: str = "CoScale-Redist"
    cpu_scaling_depth: float = COSCALE_CPU_SCALING_DEPTH

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.cpu_scaling_depth <= 1.0:
            raise ValueError("CPU scaling depth must be in [0, 1]")

    def estimate_power_savings(self, trace: WorkloadTrace) -> float:
        """MemScale-style memory savings plus CPU-side savings from coordination.

        The CPU-side term exists only for CPU workloads: for graphics and
        battery-life workloads the cores already run at the lowest possible
        frequency, so "CoScale cannot further scale down the CPU frequency"
        (Sec. 7.2) and the estimate collapses to the memory-only term.
        """
        memory_savings = super().estimate_power_savings(trace)
        if trace.workload_class in (WorkloadClass.GRAPHICS, WorkloadClass.BATTERY_LIFE):
            # Without a CPU to slow down, CoScale behaves like MemScale (Sec. 7.2):
            # rescale the memory-only savings to MemScale's decision residency so
            # the two techniques project identically, as the paper observes.
            from repro.baselines.memscale import MEMSCALE_LOW_RESIDENCY

            return memory_savings * MEMSCALE_LOW_RESIDENCY / self.low_residency

        phase = max(trace.phases, key=lambda p: p.duration)
        state = self.platform.default_state()
        cpu_power = self.platform.compute_power.cpu_power(
            state.cpu_frequency,
            activity=phase.cpu_activity,
            active_cores=phase.active_cores,
        )
        memory_bound = trace.average_memory_bound_fraction
        cpu_savings = cpu_power * self.cpu_scaling_depth * memory_bound
        return memory_savings + cpu_savings

    def low_point_slowdown(self, trace: WorkloadTrace) -> float:
        """CoScale bounds its own slowdown more tightly, but MRC staleness remains."""
        memory_bound = trace.average_memory_bound_fraction
        return (
            memory_bound
            * config.UNOPTIMIZED_MRC_PERFORMANCE_PENALTY
            * UNOPTIMIZED_MRC_SLOWDOWN_SHARE
            * self.low_residency
            * 0.8
        )
