"""The evaluation baseline: SysScale disabled.

With SysScale disabled (Sec. 6: "For our baseline measurements we disable SysScale
on the same SoC"), the IO and memory domains stay at their default high operating
point and the PBM reserves their worst-case power regardless of actual demand
(Observation 1).  The compute domain still applies its own DVFS within the fixed
compute budget, which the simulation engine handles through the PBM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.sim.platform import Platform
from repro.sim.policy import Policy, PolicyAction, PolicyObservation
from repro.workloads.trace import WorkloadTrace


@dataclass
class FixedBaselinePolicy(Policy):
    """Keep the IO and memory domains at the worst-case-provisioned high point."""

    name: str = "Baseline"
    _action: Optional[PolicyAction] = field(default=None, init=False)

    def reset(self, platform: Platform, trace: WorkloadTrace) -> PolicyAction:
        """Build the single action the baseline ever uses."""
        del trace
        self._action = PolicyAction(
            name="baseline_high",
            dram_frequency=platform.dram.max_frequency,
            interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
            v_sa_scale=1.0,
            v_io_scale=1.0,
            mrc_optimized=True,
            io_memory_budget=platform.worst_case_io_memory_power(),
            transition_latency=0.0,
        )
        return self._action

    def decide(self, observation: PolicyObservation) -> PolicyAction:
        """The baseline never changes the operating point."""
        del observation
        if self._action is None:
            raise RuntimeError("reset() must be called before decide()")
        return self._action
