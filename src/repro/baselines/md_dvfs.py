"""Static multi-domain DVFS setup (Sec. 3, Table 1).

For the motivation study the paper emulates a crude, *static* version of SysScale
on a Broadwell system: the DRAM frequency is dropped one bin (1.6 -> 1.06 GHz), the
IO interconnect clock is halved (0.8 -> 0.4 GHz), V_SA is reduced to 0.8x nominal
and V_IO to 0.85x nominal, while the CPU cores stay at 1.2 GHz.  Because the
configuration never changes at run time, it shows both the power upside (10-11 %
lower average power) and the performance downside (>10 % slowdown on
memory-bound workloads) of multi-domain DVFS without demand prediction.

The policy also supports the Fig. 2(a) "redistribute" variant in which the saved
average power raises the CPU frequency from 1.2 to 1.3 GHz, and an unoptimized-MRC
variant used by the Fig. 4 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.sim.platform import Platform
from repro.sim.policy import Policy, PolicyAction, PolicyObservation
from repro.workloads.trace import WorkloadTrace


def build_md_dvfs_action(
    platform: Platform,
    mrc_optimized: bool = True,
    redistribute_to_compute: bool = False,
) -> PolicyAction:
    """Build the static MD-DVFS action of Table 1.

    ``redistribute_to_compute`` charges the (smaller) provisioned power of the low
    point to the IO/memory domains so the PBM can raise the compute frequency --
    this is the 1.2 -> 1.3 GHz experiment of Fig. 2(a).  Without it, the compute
    budget is identical to the baseline's, isolating the power effect.
    """
    low_dram = platform.dram.next_lower_bin(platform.dram.max_frequency)
    if low_dram is None:
        raise ValueError("the attached DRAM device has a single frequency bin")
    if redistribute_to_compute:
        io_memory_budget = platform.worst_case_io_memory_power(
            dram_frequency=low_dram,
            interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
            v_sa_scale=config.V_SA_LOW_SCALE,
            v_io_scale=config.V_IO_LOW_SCALE,
        )
    else:
        io_memory_budget = platform.worst_case_io_memory_power()
    return PolicyAction(
        name="md_dvfs_low",
        dram_frequency=low_dram,
        interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
        v_sa_scale=config.V_SA_LOW_SCALE,
        v_io_scale=config.V_IO_LOW_SCALE,
        mrc_optimized=mrc_optimized,
        io_memory_budget=io_memory_budget,
        transition_latency=0.0,
    )


@dataclass
class StaticMdDvfsPolicy(Policy):
    """Always run the IO and memory domains at the Table 1 reduced operating point."""

    mrc_optimized: bool = True
    redistribute_to_compute: bool = False
    name: str = "MD-DVFS"
    _action: Optional[PolicyAction] = field(default=None, init=False)

    def reset(self, platform: Platform, trace: WorkloadTrace) -> PolicyAction:
        """Build the single static action used for the whole run."""
        del trace
        self._action = build_md_dvfs_action(
            platform,
            mrc_optimized=self.mrc_optimized,
            redistribute_to_compute=self.redistribute_to_compute,
        )
        return self._action

    def decide(self, observation: PolicyObservation) -> PolicyAction:
        """The static setup never changes."""
        del observation
        if self._action is None:
            raise RuntimeError("reset() must be called before decide()")
        return self._action
