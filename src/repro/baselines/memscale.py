"""MemScale [16] comparison point and its -Redist variant.

MemScale applies DVFS to the *memory domain only*: it scales the memory
controller's frequency (and voltage) together with the DRAM bus frequency during
low-activity periods, but it does not touch the IO interconnect or the DDRIO
digital voltage rail, and -- like all the prior memory-DVFS work the paper
surveys -- it does not re-optimize the DRAM interface configuration registers for
the new frequency.  Those three omissions are what limit its savings on a mobile
SoC (Sec. 8):

* on our platform the memory controller shares V_SA with the IO interconnect and
  the IO engines, so MemScale cannot lower the rail voltage without coordinating
  with components it does not manage -- only the frequency-proportional part of
  the MC power is saved;
* the DDRIO-digital rail (V_IO) is likewise left at nominal voltage;
* the stale MRC values inflate the DRAM operation/termination power at the low
  frequency (Fig. 4) and slow down memory-bound phases.

The module provides both an engine-runnable policy (``MemScalePolicy``) and the
projection used for Fig. 7-9 (``MemScaleRedistProjection``), which follows the
paper's own three-step methodology (Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.baselines.projection import ProjectionResult, RedistProjection
from repro.core.operating_points import OperatingPoint
from repro.sim.platform import Platform
from repro.sim.policy import Policy, PolicyAction, PolicyObservation
from repro.workloads.trace import WorkloadClass, WorkloadTrace


#: Fraction of evaluation intervals in which MemScale's epoch-based controller
#: actually selects the reduced memory frequency for a workload that could
#: tolerate it.  MemScale's decisions are conservative (it must bound slack
#: without cross-domain information) and its transitions are slower (no MRC sets
#: in SRAM, full re-training on every frequency change), so it captures only part
#: of the opportunity SysScale captures.  Modelling parameter; see DESIGN.md.
MEMSCALE_LOW_RESIDENCY = 0.55

#: Performance cost charged to memory-bound execution when running at the reduced
#: frequency with unoptimized MRC values (Fig. 4 measures ~10 % on a saturating
#: microbenchmark; typical workloads see a fraction of that).
UNOPTIMIZED_MRC_SLOWDOWN_SHARE = 0.5


def memscale_low_point(platform: Platform) -> OperatingPoint:
    """The reduced operating point MemScale can reach on this platform.

    DRAM drops one bin and the MC clock follows it, but the interconnect clock,
    V_SA, and V_IO stay at nominal, and the MRC registers are not re-optimized.
    """
    low_dram = platform.dram.next_lower_bin(platform.dram.max_frequency)
    if low_dram is None:
        raise ValueError("the attached DRAM device has a single frequency bin")
    return OperatingPoint(
        name="memscale_low",
        dram_frequency=low_dram,
        interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
        v_sa_scale=1.0,
        v_io_scale=1.0,
        mrc_optimized=False,
    )


@dataclass
class MemScalePolicy(Policy):
    """Engine-runnable MemScale: memory-only DVFS driven by memory utilization."""

    #: Utilization of the low point's bandwidth ceiling above which MemScale keeps
    #: the high frequency (its performance-slack guard).
    utilization_threshold: float = 0.45
    name: str = "MemScale"
    _platform: Optional[Platform] = field(default=None, init=False)
    _high: Optional[PolicyAction] = field(default=None, init=False)
    _low: Optional[PolicyAction] = field(default=None, init=False)

    def reset(self, platform: Platform, trace: WorkloadTrace) -> PolicyAction:
        """Start at the high point with the baseline's fixed budget."""
        del trace
        self._platform = platform
        worst_case = platform.worst_case_io_memory_power()
        self._high = PolicyAction(
            name="memscale_high",
            dram_frequency=platform.dram.max_frequency,
            interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
            v_sa_scale=1.0,
            v_io_scale=1.0,
            mrc_optimized=True,
            io_memory_budget=worst_case,
            transition_latency=0.0,
        )
        low_point = memscale_low_point(platform)
        # MemScale (non-redist) keeps the baseline compute budget: its savings are
        # not handed to the compute domain.
        self._low = PolicyAction(
            name="memscale_low",
            dram_frequency=low_point.dram_frequency,
            interconnect_frequency=low_point.interconnect_frequency,
            v_sa_scale=low_point.v_sa_scale,
            v_io_scale=low_point.v_io_scale,
            mrc_optimized=False,
            io_memory_budget=worst_case,
            # Without SRAM-resident MRC sets the transition requires a full
            # interface re-training, which is an order of magnitude slower than
            # the SysScale flow.
            transition_latency=10 * config.TRANSITION_TOTAL_LATENCY_BUDGET,
        )
        return self._high

    def decide(self, observation: PolicyObservation) -> PolicyAction:
        """Drop the memory frequency when measured traffic leaves enough slack."""
        if self._platform is None or self._high is None or self._low is None:
            raise RuntimeError("reset() must be called before decide()")
        from repro.perf.counters import CounterName  # local import to avoid cycles

        occupancy = observation.counters[CounterName.LLC_OCCUPANCY_TRACER]
        gfx = observation.counters[CounterName.GFX_LLC_MISSES]
        low_ceiling = self._platform.controller.achievable_bandwidth(
            self._low.dram_frequency, self._platform.mrc_registers
        )
        # Reconstruct an approximate demand from the occupancy counter: occupancy
        # is demand/line_size x latency, so demand ~ occupancy x line / latency.
        latency = self._platform.latency_model.reference_latency(0.0)
        approx_demand = (occupancy * 64.0 / latency) + gfx * 64.0 / observation.counters.interval
        if approx_demand > self.utilization_threshold * low_ceiling:
            return self._high
        return self._low


@dataclass
class MemScaleRedistProjection:
    """MemScale-Redist: the paper's projection of MemScale plus budget redistribution."""

    platform: Platform
    low_residency: float = MEMSCALE_LOW_RESIDENCY
    technique: str = "MemScale-Redist"

    def __post_init__(self) -> None:
        if not 0.0 <= self.low_residency <= 1.0:
            raise ValueError("low residency must be in [0, 1]")
        self._projection = RedistProjection(platform=self.platform)

    # ------------------------------------------------------------------
    # Step 1: estimated average power savings
    # ------------------------------------------------------------------
    def estimate_power_savings(self, trace: WorkloadTrace) -> float:
        """Average power MemScale saves on ``trace`` (watts).

        Only the components MemScale can scale contribute: the
        frequency-proportional share of the memory-controller power, the DRAM
        background power, and the frequency-proportional DDRIO power.  The stale
        MRC registers add back part of the operation power (Fig. 4), and the
        savings only accrue during the fraction of time MemScale actually selects
        the low frequency, which in turn is bounded by how memory-bound the
        workload is.
        """
        platform = self.platform
        high_f = platform.dram.max_frequency
        low_f = platform.dram.next_lower_bin(high_f)
        if low_f is None:
            return 0.0
        ratio = low_f / high_f

        mc_high = platform.memory_power.memory_controller_power(high_f, 1.0)
        mc_saving = mc_high * (1.0 - ratio)  # frequency only; V_SA untouched

        background_high = platform.memory_power.dram_background_power(high_f, False)
        background_low = platform.memory_power.dram_background_power(low_f, False)
        background_saving = background_high - background_low

        ddrio_high = platform.memory_power.ddrio.digital_power(high_f, 1.0)
        ddrio_low = platform.memory_power.ddrio.digital_power(low_f, 1.0)
        analog_high = platform.memory_power.ddrio.analog_power(high_f)
        analog_low = platform.memory_power.ddrio.analog_power(low_f)
        ddrio_saving = (ddrio_high - ddrio_low) + (analog_high - analog_low)

        # Unoptimized MRC inflates operation power at the low frequency,
        # clawing back part of the savings (Fig. 4).
        operation = platform.memory_power.dram_operation_power(
            trace.average_bandwidth_demand, low_f, None
        )
        mrc_penalty = operation * config.UNOPTIMIZED_MRC_POWER_PENALTY

        gross = mc_saving + background_saving + ddrio_saving - mrc_penalty
        gross = max(0.0, gross)

        # MemScale only scales down while the workload leaves slack; the more
        # memory-bound the workload, the less of the time the low frequency is
        # selected.
        opportunity = max(0.0, 1.0 - trace.average_memory_bound_fraction)
        residency = self.low_residency * opportunity
        if trace.workload_class is WorkloadClass.BATTERY_LIFE:
            # Savings apply only while DRAM is active (C0 + C2), Sec. 7.3.
            residency = self.low_residency * self._dram_active_fraction(trace)
        return gross * residency

    def _dram_active_fraction(self, trace: WorkloadTrace) -> float:
        total = trace.total_duration
        return sum(
            phase.residency.dram_active_fraction * phase.duration for phase in trace.phases
        ) / total

    # ------------------------------------------------------------------
    # Steps 2-3: redistribute and project
    # ------------------------------------------------------------------
    def low_point_slowdown(self, trace: WorkloadTrace) -> float:
        """Performance cost of running memory at the low bin with stale MRC values."""
        memory_bound = trace.average_memory_bound_fraction
        return (
            memory_bound
            * config.UNOPTIMIZED_MRC_PERFORMANCE_PENALTY
            * UNOPTIMIZED_MRC_SLOWDOWN_SHARE
            * self.low_residency
        )

    def project(
        self, trace: WorkloadTrace, baseline_average_power: Optional[float] = None
    ) -> ProjectionResult:
        """Full Sec. 6 projection of MemScale-Redist on one workload.

        ``baseline_average_power`` (watts) lets the caller supply the measured
        baseline power of a battery-life workload so the projected reduction is
        expressed against the same baseline the other policies are compared to.
        """
        savings = self.estimate_power_savings(trace)
        return self._projection.project(
            trace,
            technique=self.technique,
            power_savings=savings,
            low_point_slowdown=self.low_point_slowdown(trace),
            baseline_average_power=baseline_average_power,
        )
