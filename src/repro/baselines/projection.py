"""Projection methodology for the MemScale-Redist / CoScale-Redist comparison.

The paper cannot measure MemScale [16] or CoScale [14] on real silicon, so it
projects their results in three steps (Sec. 6):

1. estimate each technique's average power savings from per-component power
   measurements of the Skylake system;
2. build a performance/power model that maps an increase in the compute-domain
   power budget to an increase in CPU-core or graphics-engine frequency;
3. use the running workload's performance scalability with that frequency to
   project the performance improvement.

This module implements the three steps against the simulated platform.  Each
prior-work policy supplies step 1 (its estimated power savings for a workload);
steps 2 and 3 are shared here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro import config
from repro.perf.scalability import amdahl_speedup, frequency_scalability
from repro.power.models import ActivityVector
from repro.sim.platform import Platform
from repro.workloads.trace import WorkloadClass, WorkloadTrace


@dataclass(frozen=True)
class ProjectionResult:
    """The projected effect of one prior-work technique on one workload."""

    workload: str
    technique: str
    power_savings: float
    frequency_ratio: float
    scalability: float
    performance_improvement: float
    power_reduction: float

    def as_dict(self) -> dict:
        """Flat summary for result tables."""
        return {
            "workload": self.workload,
            "technique": self.technique,
            "power_savings_w": self.power_savings,
            "frequency_ratio": self.frequency_ratio,
            "scalability": self.scalability,
            "performance_improvement": self.performance_improvement,
            "power_reduction": self.power_reduction,
        }


@dataclass
class RedistProjection:
    """Shared steps 2-3 of the Sec. 6 projection methodology."""

    platform: Platform

    # ------------------------------------------------------------------
    # Step 2: power budget -> frequency
    # ------------------------------------------------------------------
    def _representative_activity(self, trace: WorkloadTrace) -> ActivityVector:
        phase = max(trace.phases, key=lambda p: p.duration)
        return ActivityVector(
            cpu_activity=phase.cpu_activity,
            gfx_activity=phase.gfx_activity,
            io_activity=phase.io_activity,
            memory_bandwidth=phase.memory_bandwidth_demand,
            active_cores=phase.active_cores,
        )

    def frequency_ratio_for_extra_budget(
        self, trace: WorkloadTrace, extra_budget: float
    ) -> float:
        """Frequency increase the compute domain gains from ``extra_budget`` watts.

        The PBM plans the compute frequencies once with the baseline budget and
        once with the augmented budget; the ratio of granted frequencies (CPU for
        CPU workloads, graphics for graphics workloads) is the step-2 output.
        The extra budget is converted to frequency *continuously* along the V/F
        curve rather than through the discrete P-state table, matching how the
        paper's projection model is described ("a 100 mW increase in compute power
        budget can lead to an increase in the core frequency by 100 MHz").
        """
        if extra_budget < 0:
            raise ValueError("extra budget must be non-negative")
        activity = self._representative_activity(trace)
        baseline_budget = self.platform.pbm.budgets(None).compute
        graphics_centric = trace.workload_class is WorkloadClass.GRAPHICS
        fixed = trace.workload_class is WorkloadClass.BATTERY_LIFE
        base_plan = self.platform.pbm.plan(
            baseline_budget, activity, graphics_centric=graphics_centric, fixed_performance=fixed
        )
        if graphics_centric:
            curve = self.platform.soc.gfx_curve
            base_frequency = base_plan.gfx_state.frequency
            base_power = self.platform.compute_power.gfx_power(
                base_frequency, activity=activity.gfx_activity
            )

            def power_at(frequency: float) -> float:
                return self.platform.compute_power.gfx_power(
                    frequency,
                    activity=activity.gfx_activity,
                    voltage=curve.voltage_at(frequency),
                )

        else:
            curve = self.platform.soc.cpu_curve
            base_frequency = base_plan.cpu_state.frequency
            base_power = self.platform.compute_power.cpu_power(
                base_frequency,
                activity=activity.cpu_activity,
                active_cores=activity.active_cores,
            )

            def power_at(frequency: float) -> float:
                return self.platform.compute_power.cpu_power(
                    frequency,
                    activity=activity.cpu_activity,
                    active_cores=activity.active_cores,
                    voltage=curve.voltage_at(frequency),
                )

        target_power = base_power + extra_budget
        lo, hi = base_frequency, curve.fmax
        if power_at(hi) <= target_power:
            return hi / base_frequency
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if power_at(mid) <= target_power:
                lo = mid
            else:
                hi = mid
        return lo / base_frequency

    # ------------------------------------------------------------------
    # Step 3: frequency -> performance
    # ------------------------------------------------------------------
    def project(
        self,
        trace: WorkloadTrace,
        technique: str,
        power_savings: float,
        low_point_slowdown: float = 0.0,
        baseline_average_power: Optional[float] = None,
    ) -> ProjectionResult:
        """Project performance improvement and power reduction for one workload.

        ``low_point_slowdown`` captures the performance *cost* of the technique's
        own memory scaling (e.g. running memory-bound phases at a lower frequency
        with unoptimized MRC values); it is subtracted from the frequency-driven
        gain, mirroring how the paper notes that unoptimized configuration
        registers can negate DVFS benefits.
        """
        if power_savings < 0:
            raise ValueError("power savings must be non-negative")
        if low_point_slowdown < 0:
            raise ValueError("slowdown must be non-negative")

        if trace.workload_class is WorkloadClass.BATTERY_LIFE:
            # Battery-life workloads have fixed performance: savings stay savings.
            baseline_power = (
                baseline_average_power
                if baseline_average_power is not None
                else self._baseline_average_power(trace)
            )
            reduction = power_savings / baseline_power if baseline_power > 0 else 0.0
            return ProjectionResult(
                workload=trace.name,
                technique=technique,
                power_savings=power_savings,
                frequency_ratio=1.0,
                scalability=0.0,
                performance_improvement=0.0,
                power_reduction=reduction,
            )

        target = "gfx" if trace.workload_class is WorkloadClass.GRAPHICS else "cpu"
        scalability = frequency_scalability(trace, target)
        ratio = self.frequency_ratio_for_extra_budget(trace, power_savings)
        improvement = amdahl_speedup(scalability, ratio) - 1.0
        improvement = max(0.0, improvement - low_point_slowdown)
        return ProjectionResult(
            workload=trace.name,
            technique=technique,
            power_savings=power_savings,
            frequency_ratio=ratio,
            scalability=scalability,
            performance_improvement=improvement,
            power_reduction=0.0,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _baseline_average_power(self, trace: WorkloadTrace) -> float:
        """Rough baseline average power of a battery-life workload (for step 3)."""
        phase = max(trace.phases, key=lambda p: p.duration)
        activity = self._representative_activity(trace)
        state = self.platform.default_state()
        active_power = self.platform.soc_power.total(state, activity)
        residency = phase.residency
        idle_power = residency.idle_package_power() + config.DRAM_SELF_REFRESH_POWER
        return residency.active_fraction * active_power + idle_power
