"""Baseline and prior-work policies.

* ``fixed`` -- the evaluation baseline: the SoC with SysScale disabled, which keeps
  the IO and memory domains at their worst-case-provisioned high operating point.
* ``md_dvfs`` -- the *static* multi-domain DVFS setup of Sec. 3 (Table 1), used to
  collect the motivation data on Broadwell.
* ``memscale`` / ``coscale`` -- the MemScale [16] and CoScale [14] comparison
  points, including the ``-Redist`` variants the paper constructs by allowing the
  prior techniques to hand their saved power to the compute domain (Sec. 6).
"""

from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy, build_md_dvfs_action
from repro.baselines.memscale import MemScalePolicy, MemScaleRedistProjection
from repro.baselines.coscale import CoScalePolicy, CoScaleRedistProjection
from repro.baselines.projection import RedistProjection, ProjectionResult

__all__ = [
    "FixedBaselinePolicy",
    "StaticMdDvfsPolicy",
    "build_md_dvfs_action",
    "MemScalePolicy",
    "MemScaleRedistProjection",
    "CoScalePolicy",
    "CoScaleRedistProjection",
    "RedistProjection",
    "ProjectionResult",
]
