"""3DMark graphics workload traces (3DMark06, 3DMark11, 3DMark Vantage).

Graphics workload performance is "highly scalable with the graphics engine
frequency" (Sec. 7.2): the PBM gives the graphics engine 80-90 % of the compute
budget, the CPU cores run at Pn, and SysScale's benefit comes from boosting the
graphics frequency with the power freed from the IO and memory domains.  The three
3DMark variants differ mainly in how memory-bandwidth hungry their scenes are,
which is why their measured improvements differ (8.9 % / 6.7 % / 8.1 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import config
from repro.workloads.trace import (
    PerformanceMetric,
    Phase,
    WorkloadClass,
    WorkloadTrace,
)


@dataclass(frozen=True)
class GraphicsCharacteristics:
    """Per-scene structure of one 3DMark variant.

    ``scenes`` is a list of (gfx_fraction, memory fractions, demand) tuples: each
    scene becomes one phase.  ``gfx_demand_gbps`` is the graphics engines' own
    main-memory traffic; the CPU contributes a small additional stream for scene
    preparation and driver work.
    """

    scenes: Tuple[Tuple[str, float, float, float, float], ...]
    cpu_demand_gbps: float = 1.0


#: Scene tables: (name, gfx_fraction, mem_latency_fraction, mem_bandwidth_fraction,
#: gfx_demand_gbps).  The remaining fraction is split between CPU and "other".
#: Demands are sized for the small 4.5 W-class graphics slice of Table 2 running
#: at a few hundred MHz: a handful of GB/s per scene, with 3DMark11 (the most
#: bandwidth-hungry of the three) highest -- which is why it benefits least from
#: SysScale in Fig. 8.
GRAPHICS_BENCHMARKS: Dict[str, GraphicsCharacteristics] = {
    "3DMark06": GraphicsCharacteristics(
        scenes=(
            ("gt1_return_to_proxycon", 0.91, 0.03, 0.03, 4.0),
            ("gt2_firefly_forest", 0.92, 0.02, 0.03, 3.6),
            ("cpu_test", 0.45, 0.08, 0.04, 2.0),
            ("hdr_deep_freeze", 0.91, 0.02, 0.04, 4.4),
        ),
        cpu_demand_gbps=0.9,
    ),
    "3DMark11": GraphicsCharacteristics(
        scenes=(
            ("gt1_deep_sea", 0.86, 0.04, 0.07, 6.2),
            ("gt2_deep_sea", 0.85, 0.04, 0.08, 6.6),
            ("gt3_high_temple", 0.87, 0.04, 0.06, 5.8),
            ("physics_test", 0.45, 0.10, 0.06, 2.8),
        ),
        cpu_demand_gbps=1.1,
    ),
    "3DMark Vantage": GraphicsCharacteristics(
        scenes=(
            ("gt1_jane_nash", 0.89, 0.03, 0.05, 5.0),
            ("gt2_new_calico", 0.90, 0.02, 0.05, 5.3),
            ("cpu_ai_test", 0.46, 0.08, 0.05, 2.4),
        ),
        cpu_demand_gbps=1.0,
    ),
}

#: Nominal duration per scene, seconds.
DEFAULT_SCENE_DURATION = 1.0


def _scene_phase(
    name: str,
    gfx_fraction: float,
    latency_fraction: float,
    bandwidth_fraction: float,
    gfx_demand_gbps: float,
    cpu_demand_gbps: float,
    duration: float,
) -> Phase:
    remaining = 1.0 - gfx_fraction - latency_fraction - bandwidth_fraction
    compute_fraction = max(0.0, remaining * 0.7)
    other_fraction = max(0.0, remaining - compute_fraction)
    return Phase(
        name=name,
        duration=duration,
        compute_fraction=compute_fraction,
        gfx_fraction=gfx_fraction,
        memory_latency_fraction=latency_fraction,
        memory_bandwidth_fraction=bandwidth_fraction,
        other_fraction=other_fraction,
        cpu_bandwidth_demand=config.gbps(cpu_demand_gbps),
        gfx_bandwidth_demand=config.gbps(gfx_demand_gbps),
        io_bandwidth_demand=config.gbps(0.5),
        cpu_activity=0.45,
        gfx_activity=0.95,
        io_activity=0.35,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )


def graphics_workload(
    name: str, scene_duration: float = DEFAULT_SCENE_DURATION
) -> WorkloadTrace:
    """Build the trace for one 3DMark variant by name."""
    if name not in GRAPHICS_BENCHMARKS:
        raise KeyError(
            f"unknown graphics benchmark {name!r}; known: {sorted(GRAPHICS_BENCHMARKS)}"
        )
    if scene_duration <= 0:
        raise ValueError("scene duration must be positive")
    char = GRAPHICS_BENCHMARKS[name]
    phases: List[Phase] = [
        _scene_phase(
            scene_name,
            gfx_fraction,
            latency_fraction,
            bandwidth_fraction,
            gfx_demand,
            char.cpu_demand_gbps,
            scene_duration,
        )
        for scene_name, gfx_fraction, latency_fraction, bandwidth_fraction, gfx_demand in char.scenes
    ]
    return WorkloadTrace(
        name=name,
        workload_class=WorkloadClass.GRAPHICS,
        phases=tuple(phases),
        metric=PerformanceMetric.FRAMES_PER_SECOND,
        description=f"{name} graphics benchmark (synthetic scene trace)",
    )


def graphics_suite(scene_duration: float = DEFAULT_SCENE_DURATION) -> List[WorkloadTrace]:
    """The three 3DMark variants of Fig. 8."""
    return [graphics_workload(name, scene_duration) for name in GRAPHICS_BENCHMARKS]
