"""Workload substrate: phase traces for SPEC, graphics, battery-life, and IO devices.

The paper evaluates SysScale with three workload classes (Sec. 6): SPEC CPU2006 for
CPU performance, 3DMark for graphics, and a set of battery-life workloads (web
browsing, light gaming, video conferencing, video playback).  Because the original
binaries and the >1600-workload calibration corpus are not available, each workload
is represented as a *phase trace*: a sequence of phases carrying the bottleneck
structure, bandwidth demand, and activity factors that drive the performance and
power models (see DESIGN.md for the substitution argument).
"""

from repro.workloads.trace import (
    Phase,
    WorkloadClass,
    WorkloadTrace,
    PerformanceMetric,
)
from repro.workloads.spec2006 import spec_cpu2006_suite, spec_workload
from repro.workloads.graphics import graphics_suite, graphics_workload
from repro.workloads.batterylife import battery_life_suite, battery_life_workload
from repro.workloads.microbenchmarks import peak_bandwidth_microbenchmark
from repro.workloads.io_devices import (
    DisplayConfiguration,
    CameraConfiguration,
    PeripheralConfiguration,
    DisplayResolution,
)
from repro.workloads.corpus import CorpusGenerator, CorpusWorkload

__all__ = [
    "Phase",
    "WorkloadClass",
    "WorkloadTrace",
    "PerformanceMetric",
    "spec_cpu2006_suite",
    "spec_workload",
    "graphics_suite",
    "graphics_workload",
    "battery_life_suite",
    "battery_life_workload",
    "peak_bandwidth_microbenchmark",
    "DisplayConfiguration",
    "CameraConfiguration",
    "PeripheralConfiguration",
    "DisplayResolution",
    "CorpusGenerator",
    "CorpusWorkload",
]
