"""Synthetic workload corpus for predictor calibration and Fig. 6.

Sec. 4.2 of the paper calibrates the demand predictor against "a large number of
representative mobile workloads" and evaluates the prediction quality on more than
1600 workloads spanning three classes (single-threaded CPU, multi-threaded CPU,
graphics) and three DRAM frequency pairs.  The original corpus (SPEC06, SYSmark,
MobileMark, 3DMark traces) is not redistributable, so this module generates a
synthetic corpus with the same *structure*: per-class populations of workloads with
controlled, widely varying memory sensitivity, each with a known ground truth for
how much it slows down when the memory subsystem is scaled.

The corpus serves two purposes:

* :mod:`repro.core.thresholds` uses a training split to derive the per-counter
  thresholds (mean + standard deviation of the counter values among runs whose
  degradation is below the bound);
* :mod:`repro.experiments.fig6` uses a disjoint evaluation split to reproduce the
  nine panels of Fig. 6 (actual vs. predicted performance impact and the
  correlation coefficients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.workloads.trace import (
    PerformanceMetric,
    Phase,
    WorkloadClass,
    WorkloadTrace,
)


@dataclass(frozen=True)
class CorpusWorkload:
    """One synthetic workload plus the latent parameters used to generate it."""

    trace: WorkloadTrace
    workload_class: WorkloadClass
    memory_sensitivity: float
    demand_gbps: float
    index: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.memory_sensitivity <= 1.0:
            raise ValueError("memory sensitivity must be in [0, 1]")
        if self.demand_gbps < 0:
            raise ValueError("demand must be non-negative")


@dataclass
class CorpusGenerator:
    """Generates the synthetic calibration/evaluation corpus.

    Parameters
    ----------
    seed:
        Random seed; the corpus is fully deterministic for a given seed.
    duration:
        Duration (seconds) of each generated workload at the reference config.
    """

    seed: int = config.DEFAULT_SEED
    duration: float = 1.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    # Single-workload generation
    # ------------------------------------------------------------------
    def _cpu_workload(
        self, index: int, workload_class: WorkloadClass, rng: np.random.Generator
    ) -> CorpusWorkload:
        """A CPU workload with random memory sensitivity and demand.

        Memory-latency sensitivity and bandwidth demand are drawn (mostly)
        independently: plenty of real workloads stream several GB/s without being
        latency bound, and plenty of pointer-chasing workloads are latency bound
        at a fraction of a GB/s.  Only near the bandwidth ceiling does demand
        force a bandwidth-bound fraction.
        """
        # Latency sensitivity: most mobile workloads are only mildly latency
        # sensitive, a tail is heavily latency bound.
        if rng.random() < 0.65:
            latency_fraction = float(rng.uniform(0.0, 0.25))
        else:
            latency_fraction = float(rng.uniform(0.25, 0.75))

        if workload_class is WorkloadClass.CPU_SINGLE_THREAD:
            active_cores = 1
            demand_scale = 0.6
        else:
            active_cores = config.SKYLAKE_CORE_COUNT
            demand_scale = 1.0
        demand_gbps = float(demand_scale * rng.uniform(0.3, 12.0))

        # Bandwidth-bound fraction grows only as demand approaches the interface
        # ceiling (dual-channel LPDDR3-1600: ~22 GB/s achievable).
        ceiling_gbps = 22.0
        pressure = max(0.0, demand_gbps / ceiling_gbps - 0.3)
        bandwidth_fraction = float(min(0.6, pressure * rng.uniform(0.6, 1.4)))

        # Office/productivity-style traces touch IO devices too: a small
        # IO-latency-bound fraction and some display/storage streaming traffic.
        io_fraction = float(rng.uniform(0.0, 0.12)) if rng.random() < 0.4 else 0.0
        io_demand_gbps = float(rng.uniform(0.0, 5.0)) if rng.random() < 0.5 else 0.0

        other_fraction = float(rng.uniform(0.02, 0.06))
        total_memory = latency_fraction + bandwidth_fraction
        available = 1.0 - other_fraction - io_fraction
        if total_memory > available:
            scale = available / total_memory
            latency_fraction *= scale
            bandwidth_fraction *= scale
        sensitivity = latency_fraction + bandwidth_fraction
        compute_fraction = 1.0 - sensitivity - other_fraction - io_fraction
        phase = Phase(
            name=f"corpus_{index}",
            duration=self.duration,
            compute_fraction=compute_fraction,
            memory_latency_fraction=latency_fraction,
            memory_bandwidth_fraction=bandwidth_fraction,
            io_fraction=io_fraction,
            other_fraction=other_fraction,
            cpu_bandwidth_demand=config.gbps(demand_gbps),
            io_bandwidth_demand=config.gbps(io_demand_gbps),
            cpu_activity=float(rng.uniform(0.8, 1.0)),
            io_activity=float(rng.uniform(0.05, 0.3)),
            active_cores=active_cores,
        )
        trace = WorkloadTrace(
            name=f"{workload_class.value}_{index:04d}",
            workload_class=workload_class,
            phases=(phase,),
            metric=PerformanceMetric.BENCHMARK_SCORE,
            description="synthetic corpus workload",
        )
        return CorpusWorkload(
            trace=trace,
            workload_class=workload_class,
            memory_sensitivity=sensitivity,
            demand_gbps=demand_gbps,
            index=index,
        )

    def _graphics_workload(self, index: int, rng: np.random.Generator) -> CorpusWorkload:
        """A graphics workload with random bandwidth appetite."""
        gfx_fraction = float(rng.uniform(0.55, 0.85))
        sensitivity = float(rng.uniform(0.02, 0.45))
        sensitivity = min(sensitivity, 1.0 - gfx_fraction - 0.04)
        latency_fraction = sensitivity * 0.35
        bandwidth_fraction = sensitivity * 0.65
        head_room = 1.0 - gfx_fraction - latency_fraction - bandwidth_fraction
        compute_fraction = head_room * 0.7
        other_fraction = head_room - compute_fraction
        gfx_demand = float(rng.uniform(2.0, 11.0))
        phase = Phase(
            name=f"corpus_gfx_{index}",
            duration=self.duration,
            compute_fraction=compute_fraction,
            gfx_fraction=gfx_fraction,
            memory_latency_fraction=latency_fraction,
            memory_bandwidth_fraction=bandwidth_fraction,
            other_fraction=other_fraction,
            cpu_bandwidth_demand=config.gbps(float(rng.uniform(0.5, 2.0))),
            gfx_bandwidth_demand=config.gbps(gfx_demand),
            io_bandwidth_demand=config.gbps(0.5),
            cpu_activity=float(rng.uniform(0.3, 0.6)),
            gfx_activity=float(rng.uniform(0.8, 1.0)),
            io_activity=float(rng.uniform(0.2, 0.5)),
            active_cores=config.SKYLAKE_CORE_COUNT,
        )
        trace = WorkloadTrace(
            name=f"graphics_{index:04d}",
            workload_class=WorkloadClass.GRAPHICS,
            phases=(phase,),
            metric=PerformanceMetric.FRAMES_PER_SECOND,
            description="synthetic corpus graphics workload",
        )
        return CorpusWorkload(
            trace=trace,
            workload_class=WorkloadClass.GRAPHICS,
            memory_sensitivity=sensitivity,
            demand_gbps=gfx_demand,
            index=index,
        )

    # ------------------------------------------------------------------
    # Population generation
    # ------------------------------------------------------------------
    def generate_class(
        self, workload_class: WorkloadClass, count: int
    ) -> List[CorpusWorkload]:
        """Generate ``count`` workloads of one class."""
        if count <= 0:
            raise ValueError("count must be positive")
        rng = np.random.default_rng(self._rng.integers(0, 2 ** 31 - 1))
        workloads: List[CorpusWorkload] = []
        for index in range(count):
            if workload_class is WorkloadClass.GRAPHICS:
                workloads.append(self._graphics_workload(index, rng))
            elif workload_class in (
                WorkloadClass.CPU_SINGLE_THREAD,
                WorkloadClass.CPU_MULTI_THREAD,
            ):
                workloads.append(self._cpu_workload(index, workload_class, rng))
            else:
                raise ValueError(f"corpus generation does not cover {workload_class}")
        return workloads

    def generate(
        self,
        single_thread: int = 300,
        multi_thread: int = 140,
        graphics: int = 100,
    ) -> List[CorpusWorkload]:
        """Generate the full corpus (defaults give ~540 workloads per frequency pair,
        i.e. >1600 evaluation points across the three pairs of Fig. 6)."""
        corpus: List[CorpusWorkload] = []
        corpus.extend(self.generate_class(WorkloadClass.CPU_SINGLE_THREAD, single_thread))
        corpus.extend(self.generate_class(WorkloadClass.CPU_MULTI_THREAD, multi_thread))
        corpus.extend(self.generate_class(WorkloadClass.GRAPHICS, graphics))
        return corpus

    def train_eval_split(
        self,
        corpus: Sequence[CorpusWorkload],
        train_fraction: float = 0.5,
    ) -> Tuple[List[CorpusWorkload], List[CorpusWorkload]]:
        """Split a corpus into disjoint training and evaluation sets."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train fraction must be in (0, 1)")
        corpus = list(corpus)
        rng = np.random.default_rng(self.seed + 1)
        order = rng.permutation(len(corpus))
        cut = int(len(corpus) * train_fraction)
        train = [corpus[i] for i in order[:cut]]
        evaluation = [corpus[i] for i in order[cut:]]
        return train, evaluation


def iter_traces(corpus: Sequence[CorpusWorkload]) -> Iterator[WorkloadTrace]:
    """Convenience iterator over the traces of a corpus."""
    for workload in corpus:
        yield workload.trace
