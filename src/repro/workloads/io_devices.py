"""IO device (peripheral) configurations and their static bandwidth demands.

The SysScale demand predictor treats demand that depends only on the system
configuration as *static* (Sec. 4.2): the number of connected display panels, their
resolution and refresh rate, and the number of active cameras determine a
deterministic bandwidth demand that the PMU reads from control and status
registers.  Fig. 3(b) quantifies the display engine's demand: an HD panel consumes
roughly 17 % of the dual-channel LPDDR3 peak (25.6 GB/s at 1.6 GHz), a single 4K
panel roughly 70 %, and three panels roughly three times one panel.

This module provides those configurations and the lookup table (configuration ->
bandwidth/latency demand) that the PMU firmware maintains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro import config


class DisplayResolution(str, enum.Enum):
    """Display panel resolutions referenced by the paper (HD up to 4K)."""

    HD = "hd"            # 1366 x 768
    FHD = "fhd"          # 1920 x 1080
    QHD = "qhd"          # 2560 x 1440
    UHD_4K = "uhd_4k"    # 3840 x 2160

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Memory-bandwidth demand of one panel as a fraction of the LPDDR3 peak
#: (Fig. 3(b): HD ~17 %, 4K ~70 %; FHD/QHD interpolated by pixel count).
DISPLAY_BANDWIDTH_FRACTION: Dict[DisplayResolution, float] = {
    DisplayResolution.HD: 0.17,
    DisplayResolution.FHD: 0.28,
    DisplayResolution.QHD: 0.45,
    DisplayResolution.UHD_4K: 0.70,
}

#: Reference refresh rate the fractions above were characterised at (Hz).
REFERENCE_REFRESH_RATE = 60.0


@dataclass(frozen=True)
class DisplayConfiguration:
    """An attached display panel configuration."""

    resolution: DisplayResolution = DisplayResolution.HD
    refresh_rate: float = REFERENCE_REFRESH_RATE
    panel_count: int = 1

    def __post_init__(self) -> None:
        if self.refresh_rate <= 0:
            raise ValueError("refresh rate must be positive")
        if not 0 <= self.panel_count <= 3:
            raise ValueError("modern laptops support up to three display panels (Sec. 4.2)")

    @property
    def bandwidth_demand(self) -> float:
        """Memory bandwidth demand of the display engine (bytes/s).

        Scales linearly with panel count and refresh rate (Fig. 3(b)).
        """
        per_panel = (
            DISPLAY_BANDWIDTH_FRACTION[self.resolution]
            * config.LPDDR3_PEAK_BANDWIDTH
            * (self.refresh_rate / REFERENCE_REFRESH_RATE)
        )
        return per_panel * self.panel_count

    @property
    def is_active(self) -> bool:
        """True when at least one panel is connected."""
        return self.panel_count > 0


@dataclass(frozen=True)
class CameraConfiguration:
    """An active camera / ISP streaming configuration."""

    active_cameras: int = 0
    megapixels: float = 2.0
    frames_per_second: float = 30.0
    bytes_per_pixel: float = 2.0

    def __post_init__(self) -> None:
        if self.active_cameras < 0:
            raise ValueError("camera count must be non-negative")
        if self.megapixels <= 0 or self.frames_per_second <= 0 or self.bytes_per_pixel <= 0:
            raise ValueError("camera parameters must be positive")

    @property
    def bandwidth_demand(self) -> float:
        """ISP engine memory bandwidth demand (bytes/s).

        Each streaming camera writes its frames and the ISP reads them back for
        processing, hence the factor of two on the raw pixel rate.
        """
        raw = (
            self.megapixels
            * 1e6
            * self.bytes_per_pixel
            * self.frames_per_second
            * self.active_cameras
        )
        return raw * 2.0

    @property
    def is_active(self) -> bool:
        """True when at least one camera is streaming."""
        return self.active_cameras > 0


@dataclass(frozen=True)
class PeripheralConfiguration:
    """The full peripheral configuration the PMU reads from CSRs (Sec. 4.2)."""

    display: DisplayConfiguration = field(default_factory=DisplayConfiguration)
    camera: CameraConfiguration = field(default_factory=CameraConfiguration)
    other_io_bandwidth: float = 0.0
    latency_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.other_io_bandwidth < 0:
            raise ValueError("other IO bandwidth must be non-negative")

    @property
    def static_bandwidth_demand(self) -> float:
        """Total static (configuration-determined) bandwidth demand (bytes/s)."""
        return (
            self.display.bandwidth_demand
            + self.camera.bandwidth_demand
            + self.other_io_bandwidth
        )

    @property
    def has_isochronous_traffic(self) -> bool:
        """True when QoS-critical (isochronous) IO traffic is present.

        Display scanout and camera capture are isochronous: underflow corrupts
        frames, so mispredicting their demand violates QoS (Sec. 1, challenge 1).
        """
        return self.display.is_active or self.camera.is_active or self.latency_sensitive

    def describe(self) -> dict:
        """Flat summary for result tables."""
        return {
            "display_panels": self.display.panel_count,
            "display_resolution": str(self.display.resolution),
            "display_bandwidth_gbps": self.display.bandwidth_demand / config.GBPS,
            "active_cameras": self.camera.active_cameras,
            "camera_bandwidth_gbps": self.camera.bandwidth_demand / config.GBPS,
            "other_io_bandwidth_gbps": self.other_io_bandwidth / config.GBPS,
            "static_bandwidth_gbps": self.static_bandwidth_demand / config.GBPS,
            "isochronous": self.has_isochronous_traffic,
        }


#: Named configurations used by Fig. 3(b) and the battery-life experiments.
STANDARD_CONFIGURATIONS: Dict[str, PeripheralConfiguration] = {
    "no_display": PeripheralConfiguration(
        display=DisplayConfiguration(panel_count=0)
    ),
    "single_hd": PeripheralConfiguration(
        display=DisplayConfiguration(DisplayResolution.HD, panel_count=1)
    ),
    "single_fhd": PeripheralConfiguration(
        display=DisplayConfiguration(DisplayResolution.FHD, panel_count=1)
    ),
    "single_4k": PeripheralConfiguration(
        display=DisplayConfiguration(DisplayResolution.UHD_4K, panel_count=1)
    ),
    "triple_hd": PeripheralConfiguration(
        display=DisplayConfiguration(DisplayResolution.HD, panel_count=3)
    ),
    "hd_with_camera": PeripheralConfiguration(
        display=DisplayConfiguration(DisplayResolution.HD, panel_count=1),
        camera=CameraConfiguration(active_cameras=1, megapixels=2.0, frames_per_second=30.0),
    ),
}
