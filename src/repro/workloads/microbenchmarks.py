"""Synthetic microbenchmarks.

The paper uses a microbenchmark "designed to exercise the peak memory bandwidth of
DRAM (similar to STREAM)" to isolate the effect of unoptimized MRC values on the
memory subsystem (Fig. 4, Sec. 3).  This module builds that workload plus a few
pointer-chasing / idle variants useful for testing the latency model and the
demand predictor.
"""

from __future__ import annotations

from repro import config
from repro.workloads.trace import (
    PerformanceMetric,
    Phase,
    WorkloadClass,
    WorkloadTrace,
    uniform_phase_trace,
)


def peak_bandwidth_microbenchmark(
    duration: float = 2.0,
    demand_gbps: float = 24.0,
) -> WorkloadTrace:
    """STREAM-like microbenchmark saturating the memory interface (Fig. 4).

    Nearly all of its time is bound by memory bandwidth; the demand slightly
    exceeds what the interface can deliver so it always runs at the ceiling.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    phase = Phase(
        name="stream_triad",
        duration=duration,
        compute_fraction=0.04,
        memory_latency_fraction=0.04,
        memory_bandwidth_fraction=0.90,
        other_fraction=0.02,
        cpu_bandwidth_demand=config.gbps(demand_gbps),
        cpu_activity=0.85,
        io_activity=0.1,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )
    return uniform_phase_trace(
        name="peak_bandwidth_microbenchmark",
        workload_class=WorkloadClass.MICROBENCHMARK,
        phase=phase,
        repetitions=1,
        metric=PerformanceMetric.BANDWIDTH,
        description="STREAM-like kernel exercising peak DRAM bandwidth (Fig. 4).",
    )


def pointer_chasing_microbenchmark(duration: float = 2.0) -> WorkloadTrace:
    """A dependent-load kernel that is almost entirely memory-latency bound."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    phase = Phase(
        name="pointer_chase",
        duration=duration,
        compute_fraction=0.06,
        memory_latency_fraction=0.88,
        memory_bandwidth_fraction=0.02,
        other_fraction=0.04,
        cpu_bandwidth_demand=config.gbps(1.2),
        cpu_activity=0.7,
        io_activity=0.1,
        active_cores=1,
    )
    return uniform_phase_trace(
        name="pointer_chasing_microbenchmark",
        workload_class=WorkloadClass.MICROBENCHMARK,
        phase=phase,
        repetitions=1,
        metric=PerformanceMetric.BENCHMARK_SCORE,
        description="Dependent-load kernel bound by main-memory latency.",
    )


def compute_only_microbenchmark(duration: float = 2.0) -> WorkloadTrace:
    """A register-resident kernel that scales 1:1 with CPU frequency."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    phase = Phase(
        name="alu_loop",
        duration=duration,
        compute_fraction=0.97,
        memory_latency_fraction=0.01,
        memory_bandwidth_fraction=0.0,
        other_fraction=0.02,
        cpu_bandwidth_demand=config.gbps(0.1),
        cpu_activity=1.0,
        io_activity=0.05,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )
    return uniform_phase_trace(
        name="compute_only_microbenchmark",
        workload_class=WorkloadClass.MICROBENCHMARK,
        phase=phase,
        repetitions=1,
        metric=PerformanceMetric.BENCHMARK_SCORE,
        description="ALU-only kernel, fully scalable with core frequency.",
    )
