"""Battery-life workload traces (web browsing, light gaming, video conferencing,
video playback).

These workloads (Sec. 7.3) differ from CPU and graphics benchmarks in two ways:
their performance demand is *fixed* (e.g. 60 frames per second of video must be
decoded and displayed no matter how fast the SoC is), and they spend most of their
time in package idle states -- the paper measures 10-40 % active (C0) residency,
with DRAM active only in C0 and C2.  The evaluation metric is therefore average
power, not execution time.

Each workload is modelled as a repeating activity cycle of two phases:

* a **burst** phase (page load, camera-frame encode, game-scene update) whose
  memory traffic and latency sensitivity are high enough that SysScale keeps the
  high operating point to protect responsiveness and QoS;
* a **steady** phase (idle scrolling, steady-state decode, vsync-limited
  rendering) whose demands are far from any limit, during which SysScale holds the
  low operating point.

The burst share differs per workload -- interactive web browsing is the most
bursty, steady 60 FPS video playback the least -- which is what produces the
ordering of the Fig. 9 power savings (playback > gaming > conferencing > web).
Video playback uses the C0/C2/C8 = 10/5/85 % residencies quoted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import config
from repro.power.cstates import CState, CStateResidency
from repro.workloads.io_devices import (
    CameraConfiguration,
    DisplayConfiguration,
    DisplayResolution,
    PeripheralConfiguration,
)
from repro.workloads.trace import (
    PerformanceMetric,
    Phase,
    WorkloadClass,
    WorkloadTrace,
)


@dataclass(frozen=True)
class BatteryLifeCharacteristics:
    """Behavioural parameters of one battery-life workload."""

    residency: CStateResidency
    cpu_bandwidth_gbps: float
    gfx_bandwidth_gbps: float
    cpu_activity: float
    gfx_activity: float
    gfx_fraction: float
    compute_fraction: float
    burst_share: float
    peripherals: PeripheralConfiguration
    description: str

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_share < 1.0:
            raise ValueError("burst share must be in [0, 1)")


def _residency(c0: float, c2: float, c8: float, c6: float = 0.0) -> CStateResidency:
    states = {CState.C0: c0, CState.C2: c2, CState.C8: c8}
    if c6 > 0:
        states[CState.C6] = c6
    return CStateResidency(states)


#: The four representative battery-life workloads of Fig. 9 [1].
BATTERY_LIFE_WORKLOADS: Dict[str, BatteryLifeCharacteristics] = {
    "web_browsing": BatteryLifeCharacteristics(
        residency=_residency(c0=0.25, c2=0.10, c8=0.65),
        cpu_bandwidth_gbps=1.6,
        gfx_bandwidth_gbps=0.6,
        cpu_activity=0.55,
        gfx_activity=0.20,
        gfx_fraction=0.10,
        compute_fraction=0.55,
        burst_share=0.55,
        peripherals=PeripheralConfiguration(
            display=DisplayConfiguration(DisplayResolution.HD, panel_count=1)
        ),
        description="Page loads and scrolling with a single HD panel active.",
    ),
    "light_gaming": BatteryLifeCharacteristics(
        residency=_residency(c0=0.40, c2=0.10, c8=0.40, c6=0.10),
        cpu_bandwidth_gbps=1.8,
        gfx_bandwidth_gbps=2.4,
        cpu_activity=0.50,
        gfx_activity=0.60,
        gfx_fraction=0.45,
        compute_fraction=0.30,
        burst_share=0.32,
        peripherals=PeripheralConfiguration(
            display=DisplayConfiguration(DisplayResolution.HD, panel_count=1)
        ),
        description="Casual 3D game capped at the display refresh rate.",
    ),
    "video_conferencing": BatteryLifeCharacteristics(
        residency=_residency(c0=0.30, c2=0.10, c8=0.60),
        cpu_bandwidth_gbps=1.4,
        gfx_bandwidth_gbps=0.8,
        cpu_activity=0.50,
        gfx_activity=0.25,
        gfx_fraction=0.15,
        compute_fraction=0.45,
        burst_share=0.45,
        peripherals=PeripheralConfiguration(
            display=DisplayConfiguration(DisplayResolution.HD, panel_count=1),
            camera=CameraConfiguration(active_cameras=1, megapixels=2.0, frames_per_second=30.0),
        ),
        description="Camera capture, encode, decode, and HD display.",
    ),
    "video_playback": BatteryLifeCharacteristics(
        residency=CStateResidency.video_playback(),
        cpu_bandwidth_gbps=0.8,
        gfx_bandwidth_gbps=1.0,
        cpu_activity=0.40,
        gfx_activity=0.30,
        gfx_fraction=0.20,
        compute_fraction=0.35,
        burst_share=0.08,
        peripherals=PeripheralConfiguration(
            display=DisplayConfiguration(DisplayResolution.HD, panel_count=1)
        ),
        description="60 FPS local video playback with hardware decode.",
    ),
}

#: Duration of one modelled activity cycle, seconds.
DEFAULT_CYCLE_DURATION = 1.0

#: Number of cycles in a trace.
DEFAULT_CYCLES = 3


def _cycle_phases(name: str, char: BatteryLifeCharacteristics, index: int,
                  cycle_duration: float) -> List[Phase]:
    """The steady + burst phases of one activity cycle."""
    io_demand = char.peripherals.static_bandwidth_demand
    phases: List[Phase] = []

    # Steady phase: light demands, far from any latency or bandwidth limit.
    steady_memory = 0.05
    steady_io = 0.03
    steady_other = (
        1.0 - char.compute_fraction - char.gfx_fraction - steady_memory - steady_io
    )
    steady_duration = cycle_duration * (1.0 - char.burst_share)
    phases.append(
        Phase(
            name=f"{name}_steady_{index}",
            duration=steady_duration,
            compute_fraction=char.compute_fraction,
            gfx_fraction=char.gfx_fraction,
            memory_latency_fraction=steady_memory * 0.6,
            memory_bandwidth_fraction=steady_memory * 0.4,
            io_fraction=steady_io,
            other_fraction=steady_other,
            cpu_bandwidth_demand=config.gbps(char.cpu_bandwidth_gbps),
            gfx_bandwidth_demand=config.gbps(char.gfx_bandwidth_gbps),
            io_bandwidth_demand=io_demand,
            cpu_activity=char.cpu_activity,
            gfx_activity=char.gfx_activity,
            io_activity=0.6,
            active_cores=config.SKYLAKE_CORE_COUNT,
            residency=char.residency,
        )
    )

    # Burst phase: interactive / frame-setup work that is latency sensitive
    # enough for SysScale to keep the high operating point.
    if char.burst_share > 0:
        burst_io = 0.08
        burst_compute = max(0.0, char.compute_fraction - 0.10)
        burst_gfx = char.gfx_fraction
        burst_memory = min(0.30, 1.0 - burst_compute - burst_gfx - burst_io - 0.02)
        burst_other = 1.0 - burst_compute - burst_gfx - burst_memory - burst_io
        phases.append(
            Phase(
                name=f"{name}_burst_{index}",
                duration=cycle_duration * char.burst_share,
                compute_fraction=burst_compute,
                gfx_fraction=burst_gfx,
                memory_latency_fraction=burst_memory * 0.7,
                memory_bandwidth_fraction=burst_memory * 0.3,
                io_fraction=burst_io,
                other_fraction=burst_other,
                cpu_bandwidth_demand=config.gbps(char.cpu_bandwidth_gbps * 2.5),
                gfx_bandwidth_demand=config.gbps(char.gfx_bandwidth_gbps * 1.5),
                io_bandwidth_demand=io_demand,
                cpu_activity=min(1.0, char.cpu_activity + 0.25),
                gfx_activity=char.gfx_activity,
                io_activity=0.7,
                active_cores=config.SKYLAKE_CORE_COUNT,
                residency=char.residency,
            )
        )
    return phases


def battery_life_workload(
    name: str,
    cycle_duration: float = DEFAULT_CYCLE_DURATION,
    cycles: int = DEFAULT_CYCLES,
) -> WorkloadTrace:
    """Build the trace for one battery-life workload by name."""
    if name not in BATTERY_LIFE_WORKLOADS:
        raise KeyError(
            f"unknown battery-life workload {name!r}; known: {sorted(BATTERY_LIFE_WORKLOADS)}"
        )
    if cycle_duration <= 0:
        raise ValueError("cycle duration must be positive")
    if cycles <= 0:
        raise ValueError("cycle count must be positive")

    char = BATTERY_LIFE_WORKLOADS[name]
    phases: List[Phase] = []
    for index in range(cycles):
        phases.extend(_cycle_phases(name, char, index, cycle_duration))
    return WorkloadTrace(
        name=name,
        workload_class=WorkloadClass.BATTERY_LIFE,
        phases=tuple(phases),
        metric=PerformanceMetric.AVERAGE_POWER,
        description=char.description,
    )


def battery_life_suite(
    cycle_duration: float = DEFAULT_CYCLE_DURATION, cycles: int = DEFAULT_CYCLES
) -> List[WorkloadTrace]:
    """The four battery-life workloads of Fig. 9."""
    return [
        battery_life_workload(name, cycle_duration, cycles)
        for name in BATTERY_LIFE_WORKLOADS
    ]
