"""Workload phase traces.

A workload is modelled as a sequence of :class:`Phase` objects.  Each phase carries
the characteristics that determine how the workload responds to multi-domain DVFS:

* a **bottleneck mix** -- what fraction of the phase's execution time is bound by
  CPU core frequency, graphics frequency, main-memory latency, main-memory
  bandwidth, IO, or nothing the SoC clocks control (Fig. 2(b));
* **memory bandwidth demand**, split by requester (CPU cores, graphics, IO
  agents), which is what Fig. 3 plots over time and what the demand predictor has
  to anticipate;
* **activity factors** used by the power model; and
* a **package C-state residency** profile for battery-life workloads (Sec. 7.3).

Traces are pure data: they know nothing about the SoC configuration they will be
run on.  The reference configuration at which the durations and demands were
characterised is recorded on the trace so the performance model can scale from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro import config
from repro.power.cstates import CStateResidency


class WorkloadClass(str, enum.Enum):
    """The workload classes the paper evaluates (Sec. 6) plus the Fig. 4 microbenchmark."""

    CPU_SINGLE_THREAD = "cpu_single_thread"
    CPU_MULTI_THREAD = "cpu_multi_thread"
    GRAPHICS = "graphics"
    BATTERY_LIFE = "battery_life"
    MICROBENCHMARK = "microbenchmark"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class PerformanceMetric(str, enum.Enum):
    """How performance is reported for a workload class (Sec. 6)."""

    BENCHMARK_SCORE = "benchmark_score"   # SPEC CPU2006
    FRAMES_PER_SECOND = "frames_per_second"  # 3DMark
    AVERAGE_POWER = "average_power"        # battery-life workloads
    BANDWIDTH = "bandwidth"                # microbenchmarks

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Phase:
    """One execution phase of a workload at the reference configuration.

    The five ``*_fraction`` fields plus ``other_fraction`` must sum to 1; they
    express what limits the phase at the reference configuration.  Bandwidth
    demands are bytes/second *at the reference configuration*.
    """

    name: str
    duration: float
    compute_fraction: float = 0.0
    gfx_fraction: float = 0.0
    memory_latency_fraction: float = 0.0
    memory_bandwidth_fraction: float = 0.0
    io_fraction: float = 0.0
    other_fraction: float = 0.0
    cpu_bandwidth_demand: float = 0.0
    gfx_bandwidth_demand: float = 0.0
    io_bandwidth_demand: float = 0.0
    cpu_activity: float = 1.0
    gfx_activity: float = 0.0
    io_activity: float = 0.3
    active_cores: int = config.SKYLAKE_CORE_COUNT
    residency: CStateResidency = field(default_factory=CStateResidency.active_only)

    #: The six bottleneck-fraction field names, in ``fraction_vector`` order.
    FRACTION_FIELDS = (
        "compute_fraction",
        "gfx_fraction",
        "memory_latency_fraction",
        "memory_bandwidth_fraction",
        "io_fraction",
        "other_fraction",
    )

    def __post_init__(self) -> None:
        # Validation names the offending field: synthesized phases (see
        # repro.scenarios) must fail loudly here, not corrupt a simulation.
        if self.duration <= 0:
            raise ValueError(
                f"phase {self.name!r}: duration must be positive, got {self.duration}"
            )
        for field_name in self.FRACTION_FIELDS:
            if getattr(self, field_name) < -1e-12:
                raise ValueError(
                    f"phase {self.name!r}: {field_name} must be non-negative, "
                    f"got {getattr(self, field_name)}"
                )
        total = sum(self.fraction_vector())
        if abs(total - 1.0) > 1e-6:
            detail = ", ".join(
                f"{field_name}={getattr(self, field_name):.6f}"
                for field_name in self.FRACTION_FIELDS
            )
            raise ValueError(
                f"phase {self.name!r}: bottleneck fractions must sum to 1, "
                f"got {total:.6f} ({detail})"
            )
        for field_name in (
            "cpu_bandwidth_demand", "gfx_bandwidth_demand", "io_bandwidth_demand"
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(
                    f"phase {self.name!r}: {field_name} must be non-negative, "
                    f"got {getattr(self, field_name)}"
                )
        for field_name in ("cpu_activity", "gfx_activity", "io_activity"):
            if not 0.0 <= getattr(self, field_name) <= 1.0:
                raise ValueError(
                    f"phase {self.name!r}: {field_name} must be in [0, 1], "
                    f"got {getattr(self, field_name)}"
                )
        if self.active_cores < 0:
            raise ValueError(
                f"phase {self.name!r}: active_cores must be non-negative, "
                f"got {self.active_cores}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fraction_vector(self) -> Tuple[float, ...]:
        """The six bottleneck fractions in a fixed order."""
        return (
            self.compute_fraction,
            self.gfx_fraction,
            self.memory_latency_fraction,
            self.memory_bandwidth_fraction,
            self.io_fraction,
            self.other_fraction,
        )

    @property
    def memory_bandwidth_demand(self) -> float:
        """Total main-memory bandwidth demand (bytes/s) at the reference configuration."""
        return self.cpu_bandwidth_demand + self.gfx_bandwidth_demand + self.io_bandwidth_demand

    @property
    def memory_bound_fraction(self) -> float:
        """Fraction of the phase bound by main memory (latency + bandwidth)."""
        return self.memory_latency_fraction + self.memory_bandwidth_fraction

    @property
    def scalability_with_cpu_frequency(self) -> float:
        """Performance scalability with CPU frequency (Sec. 6, footnote 8).

        A phase entirely bound by the CPU cores scales 1:1 with core frequency; a
        memory-bound phase does not scale at all.
        """
        return self.compute_fraction

    @property
    def scalability_with_gfx_frequency(self) -> float:
        """Performance scalability with graphics frequency."""
        return self.gfx_fraction

    def with_updates(self, **changes) -> "Phase":
        """Return a copy of the phase with the given fields replaced."""
        return replace(self, **changes)

    def scaled_duration(self, factor: float) -> "Phase":
        """Return a copy with the duration multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("duration scale factor must be positive")
        return self.with_updates(duration=self.duration * factor)


@dataclass(frozen=True)
class WorkloadTrace:
    """A named sequence of phases plus the metadata the harness needs."""

    name: str
    workload_class: WorkloadClass
    phases: Tuple[Phase, ...]
    metric: PerformanceMetric = PerformanceMetric.BENCHMARK_SCORE
    reference_cpu_frequency: float = config.SKYLAKE_CPU_BASE_FREQUENCY
    reference_gfx_frequency: float = config.SKYLAKE_GFX_BASE_FREQUENCY
    reference_dram_frequency: float = config.LPDDR3_FREQUENCY_BINS[0]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"workload {self.name!r}: needs at least one phase")
        for field_name in (
            "reference_cpu_frequency",
            "reference_gfx_frequency",
            "reference_dram_frequency",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(
                    f"workload {self.name!r}: {field_name} must be positive, "
                    f"got {getattr(self, field_name)}"
                )

    # ------------------------------------------------------------------
    # Aggregate characteristics
    # ------------------------------------------------------------------
    @property
    def total_duration(self) -> float:
        """Total duration (seconds) at the reference configuration."""
        return sum(phase.duration for phase in self.phases)

    def _weighted(self, selector) -> float:
        total = self.total_duration
        return sum(selector(phase) * phase.duration for phase in self.phases) / total

    @property
    def average_bandwidth_demand(self) -> float:
        """Duration-weighted average memory bandwidth demand (bytes/s)."""
        return self._weighted(lambda p: p.memory_bandwidth_demand)

    @property
    def peak_bandwidth_demand(self) -> float:
        """Highest per-phase memory bandwidth demand (bytes/s)."""
        return max(phase.memory_bandwidth_demand for phase in self.phases)

    @property
    def average_compute_fraction(self) -> float:
        """Duration-weighted average compute-bound fraction."""
        return self._weighted(lambda p: p.compute_fraction)

    @property
    def average_memory_bound_fraction(self) -> float:
        """Duration-weighted average memory-bound (latency + bandwidth) fraction."""
        return self._weighted(lambda p: p.memory_bound_fraction)

    @property
    def cpu_frequency_scalability(self) -> float:
        """Duration-weighted performance scalability with CPU frequency."""
        return self._weighted(lambda p: p.scalability_with_cpu_frequency)

    @property
    def gfx_frequency_scalability(self) -> float:
        """Duration-weighted performance scalability with graphics frequency."""
        return self._weighted(lambda p: p.scalability_with_gfx_frequency)

    @property
    def is_graphics_centric(self) -> bool:
        """True when the graphics engine is the dominant compute consumer."""
        return self.workload_class is WorkloadClass.GRAPHICS

    @property
    def has_fixed_performance_demand(self) -> bool:
        """True for battery-life workloads, whose performance demand is fixed (Sec. 7.3)."""
        return self.workload_class is WorkloadClass.BATTERY_LIFE

    # ------------------------------------------------------------------
    # Time series (Fig. 3(a))
    # ------------------------------------------------------------------
    def bandwidth_timeline(self, sample_interval: float = config.ms(100)) -> List[Tuple[float, float]]:
        """(time, bandwidth demand) samples across the trace at the reference config."""
        if sample_interval <= 0:
            raise ValueError("sample interval must be positive")
        samples: List[Tuple[float, float]] = []
        elapsed = 0.0
        for phase in self.phases:
            t = 0.0
            while t < phase.duration - 1e-12:
                samples.append((elapsed + t, phase.memory_bandwidth_demand))
                t += sample_interval
            elapsed += phase.duration
        return samples

    def phase_at(self, time: float) -> Phase:
        """The phase active at ``time`` seconds into the trace (reference timeline)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        elapsed = 0.0
        for phase in self.phases:
            if time < elapsed + phase.duration:
                return phase
            elapsed += phase.duration
        return self.phases[-1]

    def with_phases(self, phases: Iterable[Phase]) -> "WorkloadTrace":
        """Return a copy of the trace with a different phase list."""
        return replace(self, phases=tuple(phases))


def uniform_phase_trace(
    name: str,
    workload_class: WorkloadClass,
    phase: Phase,
    repetitions: int = 1,
    metric: PerformanceMetric = PerformanceMetric.BENCHMARK_SCORE,
    description: str = "",
) -> WorkloadTrace:
    """Build a trace that repeats one phase ``repetitions`` times.

    Useful for microbenchmarks and for the synthetic calibration corpus.
    """
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    phases = tuple(
        phase.with_updates(name=f"{phase.name}_{index}") for index in range(repetitions)
    )
    return WorkloadTrace(
        name=name,
        workload_class=workload_class,
        phases=phases,
        metric=metric,
        description=description,
    )
