"""SPEC CPU2006 workload traces.

The paper evaluates CPU performance with the SPEC CPU2006 suite (Sec. 6).  The
actual benchmark binaries are not available here, so each of the 29 benchmarks is
represented by a phase trace whose bottleneck structure and memory bandwidth demand
follow the well-documented behaviour of the suite and the specific observations the
paper makes:

* 416.gamess and 444.namd are highly scalable with CPU frequency (Sec. 7.1);
* 410.bwaves and 433.milc are heavily memory bound and gain almost nothing;
* 436.cactusADM is mainly *latency* bound, 470.lbm mainly *bandwidth* bound with a
  constant ~10 GB/s demand, 400.perlbench is core bound with occasional demand
  spikes (Fig. 2, Fig. 3(a));
* 473.astar alternates between multi-second low-demand (~1 GB/s) and high-demand
  (~10 GB/s) phases (Sec. 7.1, Fig. 3(a)).

Bandwidth demands are for two benchmark copies (rate-style run on the 2-core
M-6Y75), at the reference configuration of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.workloads.trace import (
    PerformanceMetric,
    Phase,
    WorkloadClass,
    WorkloadTrace,
)


@dataclass(frozen=True)
class SpecCharacteristics:
    """Steady-state characteristics of one SPEC CPU2006 benchmark.

    ``compute``, ``latency``, ``bandwidth`` and ``other`` are the bottleneck
    fractions; ``demand_gbps`` is the average main-memory bandwidth demand of a
    two-copy run; ``spiky`` marks benchmarks whose demand varies strongly over time
    (they get a multi-phase trace instead of a single steady phase).
    """

    compute: float
    latency: float
    bandwidth: float
    other: float
    demand_gbps: float
    spiky: bool = False

    def __post_init__(self) -> None:
        total = self.compute + self.latency + self.bandwidth + self.other
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"fractions must sum to 1, got {total}")
        if self.demand_gbps < 0:
            raise ValueError("demand must be non-negative")


#: The 29 SPEC CPU2006 benchmarks.  Fractions and demands follow published
#: characterisations of the suite on low-power mobile parts; see module docstring.
#: The fractions reflect behaviour on a *low-frequency* (1.2-1.7 GHz) dual-core
#: mobile part: at these core clocks a large share of main-memory latency is
#: hidden by out-of-order execution and prefetching, so the memory-bound fractions
#: are noticeably smaller than the same benchmarks exhibit on multi-GHz server
#: cores, while bandwidth-saturating workloads (lbm, libquantum, bwaves, milc)
#: remain firmly memory bound.
SPEC_CPU2006: Dict[str, SpecCharacteristics] = {
    # --- integer suite -------------------------------------------------
    "400.perlbench": SpecCharacteristics(0.89, 0.05, 0.03, 0.03, 1.8, spiky=True),
    "401.bzip2": SpecCharacteristics(0.85, 0.07, 0.05, 0.03, 2.4),
    "403.gcc": SpecCharacteristics(0.71, 0.15, 0.10, 0.04, 3.2, spiky=True),
    "429.mcf": SpecCharacteristics(0.32, 0.50, 0.14, 0.04, 5.6),
    "445.gobmk": SpecCharacteristics(0.90, 0.05, 0.02, 0.03, 1.2),
    "456.hmmer": SpecCharacteristics(0.92, 0.03, 0.02, 0.03, 1.0),
    "458.sjeng": SpecCharacteristics(0.90, 0.05, 0.02, 0.03, 0.9),
    "462.libquantum": SpecCharacteristics(0.27, 0.18, 0.51, 0.04, 10.0),
    "464.h264ref": SpecCharacteristics(0.87, 0.06, 0.04, 0.03, 1.6),
    "471.omnetpp": SpecCharacteristics(0.46, 0.38, 0.12, 0.04, 4.0),
    "473.astar": SpecCharacteristics(0.68, 0.17, 0.11, 0.04, 4.5, spiky=True),
    "483.xalancbmk": SpecCharacteristics(0.68, 0.18, 0.10, 0.04, 3.6),
    # --- floating-point suite -------------------------------------------
    "410.bwaves": SpecCharacteristics(0.20, 0.26, 0.50, 0.04, 9.5),
    "416.gamess": SpecCharacteristics(0.94, 0.02, 0.01, 0.03, 0.7),
    "433.milc": SpecCharacteristics(0.22, 0.28, 0.46, 0.04, 8.5),
    "434.zeusmp": SpecCharacteristics(0.68, 0.14, 0.14, 0.04, 4.2),
    "435.gromacs": SpecCharacteristics(0.91, 0.04, 0.02, 0.03, 1.1),
    "436.cactusADM": SpecCharacteristics(0.38, 0.44, 0.14, 0.04, 5.0),
    "437.leslie3d": SpecCharacteristics(0.36, 0.22, 0.38, 0.04, 7.0),
    "444.namd": SpecCharacteristics(0.93, 0.03, 0.01, 0.03, 0.8),
    "447.dealII": SpecCharacteristics(0.84, 0.08, 0.05, 0.03, 2.2),
    "450.soplex": SpecCharacteristics(0.42, 0.32, 0.22, 0.04, 6.0),
    "453.povray": SpecCharacteristics(0.94, 0.02, 0.01, 0.03, 0.5),
    "454.calculix": SpecCharacteristics(0.90, 0.05, 0.02, 0.03, 1.3),
    "459.GemsFDTD": SpecCharacteristics(0.32, 0.28, 0.36, 0.04, 7.2),
    "465.tonto": SpecCharacteristics(0.88, 0.06, 0.03, 0.03, 1.5),
    "470.lbm": SpecCharacteristics(0.16, 0.20, 0.60, 0.04, 10.5),
    "481.wrf": SpecCharacteristics(0.69, 0.15, 0.12, 0.04, 3.8),
    "482.sphinx3": SpecCharacteristics(0.62, 0.20, 0.14, 0.04, 4.6),
}

#: Nominal per-benchmark runtime used for the traces, seconds.  Short enough to
#: simulate quickly, long enough to span many 30 ms evaluation intervals.
DEFAULT_SPEC_DURATION = 3.0


def _steady_phase(name: str, char: SpecCharacteristics, duration: float) -> Phase:
    """One steady phase matching the benchmark's average characteristics."""
    return Phase(
        name=name,
        duration=duration,
        compute_fraction=char.compute,
        memory_latency_fraction=char.latency,
        memory_bandwidth_fraction=char.bandwidth,
        other_fraction=char.other,
        cpu_bandwidth_demand=config.gbps(char.demand_gbps),
        cpu_activity=0.95,
        io_activity=0.15,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )


def _spiky_phases(name: str, char: SpecCharacteristics, duration: float) -> List[Phase]:
    """A low/high demand alternation for benchmarks with strong temporal variation.

    The low phases are more compute bound than the average, the high phases more
    memory bound; the duration-weighted average matches the steady characteristics.
    """
    low_duration = duration * 0.6
    high_duration = duration * 0.4
    shift = min(0.85 * (char.latency + char.bandwidth), 0.25)

    low_compute = min(0.96, char.compute + shift)
    low_latency = max(0.0, char.latency - shift * 0.7)
    low_bandwidth = max(0.0, char.bandwidth - shift * 0.3)
    low_other = 1.0 - low_compute - low_latency - low_bandwidth

    # Balance the high phase so the duration-weighted mix equals the average.
    high_compute = max(0.0, (char.compute * duration - low_compute * low_duration) / high_duration)
    high_latency = max(0.0, (char.latency * duration - low_latency * low_duration) / high_duration)
    high_bandwidth = max(
        0.0, (char.bandwidth * duration - low_bandwidth * low_duration) / high_duration
    )
    high_other = max(0.0, 1.0 - high_compute - high_latency - high_bandwidth)

    low_demand = config.gbps(max(0.3, char.demand_gbps * 0.25))
    high_demand = (config.gbps(char.demand_gbps) * duration - low_demand * low_duration) / high_duration

    low = Phase(
        name=f"{name}_low_demand",
        duration=low_duration,
        compute_fraction=low_compute,
        memory_latency_fraction=low_latency,
        memory_bandwidth_fraction=low_bandwidth,
        other_fraction=low_other,
        cpu_bandwidth_demand=low_demand,
        cpu_activity=0.95,
        io_activity=0.15,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )
    high = Phase(
        name=f"{name}_high_demand",
        duration=high_duration,
        compute_fraction=high_compute,
        memory_latency_fraction=high_latency,
        memory_bandwidth_fraction=high_bandwidth,
        other_fraction=high_other,
        cpu_bandwidth_demand=high_demand,
        cpu_activity=0.95,
        io_activity=0.15,
        active_cores=config.SKYLAKE_CORE_COUNT,
    )
    # Interleave low/high twice so phase changes exercise the DVFS algorithm.
    return [
        low.scaled_duration(0.5),
        high.scaled_duration(0.5),
        low.scaled_duration(0.5),
        high.scaled_duration(0.5),
    ]


def spec_workload(
    name: str, duration: float = DEFAULT_SPEC_DURATION
) -> WorkloadTrace:
    """Build the trace for one SPEC CPU2006 benchmark by name (e.g. ``"470.lbm"``)."""
    if name not in SPEC_CPU2006:
        raise KeyError(
            f"unknown SPEC CPU2006 benchmark {name!r}; known: {sorted(SPEC_CPU2006)}"
        )
    if duration <= 0:
        raise ValueError("duration must be positive")
    char = SPEC_CPU2006[name]
    if char.spiky:
        phases = _spiky_phases(name, char, duration)
    else:
        phases = [_steady_phase(name, char, duration)]
    return WorkloadTrace(
        name=name,
        workload_class=WorkloadClass.CPU_MULTI_THREAD,
        phases=tuple(phases),
        metric=PerformanceMetric.BENCHMARK_SCORE,
        description=f"SPEC CPU2006 {name} (two-copy rate run, synthetic phase trace)",
    )


def spec_cpu2006_suite(
    duration: float = DEFAULT_SPEC_DURATION,
    subset: Optional[Tuple[str, ...]] = None,
) -> List[WorkloadTrace]:
    """Build the full 29-benchmark suite (or a named ``subset``)."""
    names = sorted(SPEC_CPU2006) if subset is None else list(subset)
    return [spec_workload(name, duration) for name in names]


#: The three motivation benchmarks of Fig. 2.
MOTIVATION_BENCHMARKS = ("400.perlbench", "436.cactusADM", "470.lbm")

#: Benchmarks the paper singles out as highly scalable with CPU frequency.
HIGHLY_SCALABLE_BENCHMARKS = ("416.gamess", "444.namd")

#: Benchmarks the paper singles out as heavily memory bound.
MEMORY_BOUND_BENCHMARKS = ("410.bwaves", "433.milc")
