"""Global simulation constants, units, and calibration parameters.

All physical constants used across the SysScale reproduction live here so that the
rest of the code base never hard-codes magic numbers.  The values fall into three
groups:

* **Unit helpers** -- small conversion constants (``MHZ``, ``GHZ``, ``MS``, ...) so
  that module code can spell quantities the way the paper does (e.g. ``1.6 * GHZ``).
* **Paper-anchored parameters** -- quantities the paper states explicitly
  (Table 1, Table 2, Sec. 5): DRAM frequency bins, the Skylake TDP range, the DVFS
  transition latency budget, the MRC SRAM footprint, the evaluation interval.
* **Calibration parameters** -- quantities the paper does not state numerically but
  which the power/performance model needs (per-component capacitance, leakage,
  rail-power split).  These are chosen to be physically plausible for a 4.5 W
  Skylake-Y part and are documented next to their definition.  Experiments assert
  *shapes* (who wins and by roughly how much), never these absolute values.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Unit helpers
# ---------------------------------------------------------------------------

#: One hertz expressed in the canonical frequency unit of the simulator (Hz).
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

#: One second expressed in the canonical time unit of the simulator (seconds).
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9

#: One watt / one joule in canonical units.
W = 1.0
MW = 1e-3
J = 1.0
MJ = 1e-3

#: One byte per second in canonical bandwidth units.
BPS = 1.0
KBPS = 1e3
MBPS = 1e6
GBPS = 1e9

#: One volt in canonical units.
V = 1.0
MV = 1e-3


def ghz(value: float) -> float:
    """Convert a value expressed in GHz to Hz."""
    return value * GHZ


def mhz(value: float) -> float:
    """Convert a value expressed in MHz to Hz."""
    return value * MHZ


def gbps(value: float) -> float:
    """Convert a value expressed in GB/s to B/s."""
    return value * GBPS


def ms(value: float) -> float:
    """Convert a value expressed in milliseconds to seconds."""
    return value * MS


def us(value: float) -> float:
    """Convert a value expressed in microseconds to seconds."""
    return value * US


# ---------------------------------------------------------------------------
# Paper-anchored parameters (Sections 2-6, Tables 1-2)
# ---------------------------------------------------------------------------

#: DRAM frequency bins supported by LPDDR3 (Sec. 3, footnote 4), in Hz.
LPDDR3_FREQUENCY_BINS = (ghz(1.6), ghz(1.06), ghz(0.8))

#: DRAM frequency bins used for the DDR4 sensitivity study (Sec. 7.4), in Hz.
DDR4_FREQUENCY_BINS = (ghz(2.13), ghz(1.86), ghz(1.33))

#: Peak theoretical bandwidth of dual-channel LPDDR3 at 1.6 GHz (Sec. 3, Fig. 3b).
LPDDR3_PEAK_BANDWIDTH = gbps(25.6)

#: The memory controller runs at half the DDR frequency (Sec. 3).
MC_TO_DDR_FREQUENCY_RATIO = 0.5

#: Baseline and scaled IO interconnect frequencies (Table 1), in Hz.
IO_INTERCONNECT_HIGH_FREQUENCY = ghz(0.8)
IO_INTERCONNECT_LOW_FREQUENCY = ghz(0.4)

#: Voltage scale factors applied at the low operating point (Table 1).
V_SA_LOW_SCALE = 0.8
V_IO_LOW_SCALE = 0.85

#: Skylake M-6Y75 parameters (Table 2).
SKYLAKE_CPU_BASE_FREQUENCY = ghz(1.2)
SKYLAKE_GFX_BASE_FREQUENCY = mhz(300)
SKYLAKE_LLC_BYTES = 4 * 1024 * 1024
SKYLAKE_DEFAULT_TDP = 4.5 * W
SKYLAKE_TDP_RANGE = (3.5 * W, 7.0 * W)
SKYLAKE_CORE_COUNT = 2
SKYLAKE_THREADS_PER_CORE = 2

#: SysScale transition-flow latency budget (Sec. 5), in seconds.
TRANSITION_VOLTAGE_LATENCY = us(2.0)
TRANSITION_DRAIN_LATENCY = us(1.0)
TRANSITION_SELF_REFRESH_EXIT_LATENCY = us(5.0)
TRANSITION_MRC_LOAD_LATENCY = us(1.0)
TRANSITION_FIRMWARE_LATENCY = us(1.0)
TRANSITION_TOTAL_LATENCY_BUDGET = us(10.0)

#: Voltage regulator slew rate used by the flow latency model (Sec. 5).
VR_SLEW_RATE = 50 * MV / US  # volts per second

#: Approximate voltage swing of a SysScale transition (Sec. 5).
TRANSITION_VOLTAGE_SWING = 100 * MV

#: SRAM dedicated to storing per-frequency MRC values (Sec. 5), in bytes.
MRC_SRAM_BYTES = 512

#: PMU firmware added for SysScale (Sec. 5), in bytes.
SYSSCALE_FIRMWARE_BYTES = 614

#: Die-area fractions quoted for the SRAM and firmware additions (Sec. 5).
MRC_SRAM_DIE_AREA_FRACTION = 0.00006
SYSSCALE_FIRMWARE_DIE_AREA_FRACTION = 0.00008

#: Holistic power-management algorithm cadence (Sec. 4.3).
EVALUATION_INTERVAL = ms(30.0)
COUNTER_SAMPLING_INTERVAL = ms(1.0)

#: Performance-degradation bound used when calibrating thresholds (Sec. 4.2).
PREDICTION_DEGRADATION_BOUND = 0.01

#: Penalties of running the DRAM interface with configuration registers trained
#: for a different frequency (Sec. 2.5, Fig. 4): achievable bandwidth / effective
#: timing derate, and the extra interface power burned by mistrained drive
#: strength, termination, and equalization settings.
UNOPTIMIZED_MRC_POWER_PENALTY = 0.35
UNOPTIMIZED_MRC_PERFORMANCE_PENALTY = 0.10

#: Fig. 2(a): observed range of MD-DVFS average-power reduction on Broadwell.
MOTIVATION_POWER_REDUCTION_RANGE = (0.10, 0.11)


# ---------------------------------------------------------------------------
# Calibration parameters (documented model choices, not paper numbers)
# ---------------------------------------------------------------------------

#: Effective switching capacitance of one CPU core (farads).  Chosen so that a
#: core at 1.2 GHz / 0.67 V dissipates roughly 0.65 W of dynamic power, which is
#: consistent with a 4.5 W Skylake-Y part sustaining ~1.5 GHz on two cores.
CPU_CORE_CEFF = 1.25e-9

#: Effective switching capacitance of the graphics engine slice (farads).
GFX_CEFF = 3.0e-9

#: Effective switching capacitance of the LLC + ring (farads).
UNCORE_CEFF = 0.55e-9

#: Leakage power coefficients: P_leak = k * V^2 (watts at 1 V).
CPU_CORE_LEAKAGE_COEFF = 0.28
GFX_LEAKAGE_COEFF = 0.35
UNCORE_LEAKAGE_COEFF = 0.18

#: Power of the V_SA rail constituents at the high operating point (watts).
#: The split between memory controller, IO interconnect, and IO engines is a
#: modelling choice consistent with published uncore power breakdowns.
V_SA_MC_POWER_HIGH = 0.28
V_SA_INTERCONNECT_POWER_HIGH = 0.24
V_SA_IO_ENGINES_POWER_HIGH = 0.12

#: DDRIO-digital (V_IO rail) power at the high operating point (watts).
DDRIO_DIGITAL_POWER_HIGH = 0.24

#: DRAM background power (periodic refresh + peripheral maintenance) at the high
#: operating point (watts), and the fraction of it that scales with frequency.
DRAM_BACKGROUND_POWER_HIGH = 0.28
DRAM_BACKGROUND_FREQUENCY_SCALED_FRACTION = 0.55

#: DRAM self-refresh power (watts) -- drawn whenever the device is in self-refresh.
DRAM_SELF_REFRESH_POWER = 0.015

#: DRAM operation energy per byte transferred (joules/byte) at the reference
#: 1.6 GHz bin; read/write/termination combined.
DRAM_OPERATION_ENERGY_PER_BYTE = 28e-12

#: Platform power that no policy can scale (fixed-function logic, PCH share, etc.).
PLATFORM_FIXED_POWER = 0.20

#: Fraction of the IO+memory worst-case budget reserved by the baseline PBM.
#: The baseline reserves the worst-case power of the IO and memory domains
#: (Observation 1) regardless of actual demand.
BASELINE_IO_MEMORY_RESERVATION = 1.35

#: Idle (power-gated / clock-gated) residual power of the compute domain during
#: package C-states, used by battery-life workload modelling (watts).
PACKAGE_C2_POWER = 0.55
PACKAGE_C6_POWER = 0.18
PACKAGE_C7_POWER = 0.12
PACKAGE_C8_POWER = 0.09

#: Default random seed used by synthetic corpus generation for reproducibility.
DEFAULT_SEED = 2020
