"""The metrics registry: counters, gauges, histograms, and timers.

A :class:`MetricsRegistry` is a plain in-process container of named
instruments.  Registries are *explicitly scopable*: any component may own one
(the :class:`~repro.experiments.runner.ExperimentRuntime` does, so its
accounting works with ambient telemetry off), and the process-wide ambient
registry in :mod:`repro.obs.state` is just the registry the module-level
accessors (``obs.counter(...)``) resolve to.

Instruments are deliberately tiny -- a couple of attribute updates per
operation -- and the ambient accessors return the shared
:data:`NULL_INSTRUMENT` when telemetry is disabled, so instrumented call
sites cost one function call and a no-op method on the fast path.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-able dicts, and
:meth:`MetricsRegistry.merge` folds one snapshot into another registry --
counters add, gauges last-write-wins, histogram moments combine -- which is
how worker processes report their per-job metrics back to the parent through
the pool.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "Timer",
    "render_metrics_text",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, in-flight workers)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Distribution moments of observed values (count/sum/min/max)."""

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.sum, "min": self.min, "max": self.max}

    def merge_raw(self, data: Dict[str, Any]) -> None:
        """Fold another histogram's moments into this one."""
        self.count += int(data.get("count", 0))
        self.sum += float(data.get("sum", 0.0))
        for bound, better in (("min", min), ("max", max)):
            other = data.get(bound)
            if other is None:
                continue
            mine = getattr(self, bound)
            setattr(self, bound, other if mine is None else better(mine, other))


class _TimerContext:
    __slots__ = ("_timer", "_started")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer
        self._started = 0.0

    def __enter__(self) -> "_TimerContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._timer.observe(time.perf_counter() - self._started)


class Timer(Histogram):
    """A histogram of elapsed seconds with a ``with timer.time():`` helper."""

    __slots__ = ()

    def time(self) -> _TimerContext:
        return _TimerContext(self)


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


class _NullInstrument:
    """The disabled-telemetry fast path: every operation is a no-op."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def time(self) -> _NullContext:
        return _NULL_CONTEXT


_NULL_CONTEXT = _NullContext()

#: Shared no-op instrument returned by the ambient accessors when disabled.
NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """A named collection of instruments, created on first use."""

    __slots__ = ("name", "_counters", "_gauges", "_histograms", "_timers")

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def timer(self, name: str) -> Timer:
        instrument = self._timers.get(name)
        if instrument is None:
            instrument = self._timers[name] = Timer(name)
        return instrument

    # ------------------------------------------------------------------
    # Snapshots and aggregation
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain JSON-able view of every instrument's current state."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
            "timers": {name: t.as_dict() for name, t in sorted(self._timers.items())},
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from another registry (e.g. a worker
        process) into this one: counters add, gauges last-write-wins,
        histogram/timer moments combine."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_raw(data)
        for name, data in snapshot.get("timers", {}).items():
            self.timer(name).merge_raw(data)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"MetricsRegistry({self.name!r}: {len(self._counters)} counter(s), "
            f"{len(self._gauges)} gauge(s), {len(self._histograms)} histogram(s), "
            f"{len(self._timers)} timer(s))"
        )


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics_text(snapshot: Dict[str, Any], title: str = "metrics") -> str:
    """An aligned human-readable rendering of a registry snapshot."""
    lines = [f"{title}:"]
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters:
        lines.append("  counters:")
        for name, value in counters.items():
            lines.append(f"    {name}: {_format_value(value)}")
    if gauges:
        lines.append("  gauges:")
        for name, value in gauges.items():
            lines.append(f"    {name}: {_format_value(value)}")
    for kind in ("histograms", "timers"):
        entries = snapshot.get(kind, {})
        if not entries:
            continue
        lines.append(f"  {kind}:")
        for name, data in entries.items():
            count = data.get("count", 0)
            mean = data.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"    {name}: count={count} sum={_format_value(data.get('sum'))}"
                f" mean={_format_value(mean)}"
                f" min={_format_value(data.get('min'))}"
                f" max={_format_value(data.get('max'))}"
            )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)
