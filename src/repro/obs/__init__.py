"""``repro.obs``: the unified telemetry layer.

One subsystem replaces the repo's four disconnected stat islands
(``EngineRunStats``, ``CacheStats``, ``ProgressUpdate``, report runtime
accounting):

* **metrics** -- counters/gauges/histograms/timers in a
  :class:`MetricsRegistry`; ambient accessors (``obs.counter(...)``) are
  no-ops while telemetry is disabled (the default).
* **spans** -- ``with obs.span("executor.run", jobs=n):`` times and nests
  the hot path from the CLI down to the engine.
* **engine traces** -- :class:`repro.sim.trace.EngineTraceRecorder` (owned
  by the sim layer so the engine never imports telemetry) captures the
  segment-stepping loop's per-segment timeline (phase, operating point, MRC
  set, per-domain power, memo hit/miss); the runtime emits its events here
  and :func:`summarize_trace_events` condenses them back into summaries.
* **sinks** -- :class:`JsonlSink` event files, :class:`MemorySink` for
  tests, text renderers for ``--profile`` and ``trace describe``.
* **analysis** (:mod:`repro.obs.analysis`) -- the read side: typed trace
  models, ``trace diff`` attribution deltas, Chrome ``trace_event`` export,
  the :class:`MetricsSampler` time-series poller (``--sample-interval``),
  and BENCH_*.json regression comparison (``bench compare``).

Everything is scoped through :func:`scoped`, which is how worker processes
isolate per-job metrics and merge them back to the parent.  Telemetry is
**inert with respect to results**: no job hash, cached payload, or
simulation output ever depends on obs state.

Typical use::

    from repro import obs
    obs.enable(trace_segments=True)
    obs.add_sink(obs.JsonlSink("trace.jsonl"))
    with obs.span("my.workflow"):
        ...
    summary = obs.snapshot()
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    render_metrics_text,
)
from repro.obs.sinks import JsonlSink, MemorySink, read_jsonl
from repro.obs.spans import Span, span
from repro.obs.state import (
    LEVELS,
    ObsScope,
    add_sink,
    configure,
    counter,
    current,
    disable,
    emit,
    enable,
    enabled,
    gauge,
    histogram,
    level,
    level_enabled,
    merge_snapshot,
    registry,
    remove_sink,
    reset,
    scoped,
    set_level,
    snapshot,
    timer,
    trace_enabled,
)
from repro.obs.trace import summarize_trace_events
from repro.obs.logging import Console
from repro.obs.analysis.sampler import MetricsSampler

__all__ = [
    "Console",
    "MetricsSampler",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LEVELS",
    "MemorySink",
    "MetricsRegistry",
    "ObsScope",
    "Span",
    "Timer",
    "add_sink",
    "configure",
    "counter",
    "current",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "level",
    "level_enabled",
    "merge_snapshot",
    "read_jsonl",
    "registry",
    "remove_sink",
    "render_metrics_text",
    "reset",
    "scoped",
    "set_level",
    "snapshot",
    "span",
    "summarize_trace_events",
    "timer",
    "trace_enabled",
]
