"""Trace-event analysis: condensing recorded engine event streams.

The recorder itself (:class:`repro.sim.trace.EngineTraceRecorder`) lives in
the sim layer so the engine can trace without importing telemetry; the
runtime emits its events into the active sinks.  This module is the *read*
side: :func:`summarize_trace_events` condenses a recorded event stream
(segments, transitions, spans, logs -- e.g. loaded via
:func:`repro.obs.sinks.read_jsonl`) into the summary ``repro trace describe``
prints.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["summarize_trace_events"]


def summarize_trace_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Condense a recorded event stream into the ``trace describe`` summary."""
    by_type: Dict[str, int] = {}
    spans: Dict[str, Dict[str, float]] = {}
    logs: Dict[str, int] = {}
    samples: List[Dict[str, Any]] = []
    engine = {
        "runs": 0,
        "segments": 0,
        "ticks": 0,
        "memo_hits": 0,
        "transitions": 0,
        "simulated_s": 0.0,
    }
    energy = {"compute": 0.0, "io": 0.0, "memory": 0.0, "platform": 0.0}
    dram_residency: Dict[str, float] = {}
    phase_residency: Dict[str, float] = {}

    for event in events:
        event_type = str(event.get("type", "unknown"))
        by_type[event_type] = by_type.get(event_type, 0) + 1
        if event_type == "span":
            name = str(event.get("name", "?"))
            entry = spans.setdefault(name, {"count": 0, "total_s": 0.0, "max_s": 0.0})
            duration = float(event.get("duration_s", 0.0))
            entry["count"] += 1
            entry["total_s"] += duration
            entry["max_s"] = max(entry["max_s"], duration)
        elif event_type == "log":
            level = str(event.get("level", "info"))
            logs[level] = logs.get(level, 0) + 1
        elif event_type == "engine.segment":
            duration = float(event.get("duration_s", 0.0))
            engine["segments"] += 1
            engine["ticks"] += int(event.get("ticks", 0))
            engine["memo_hits"] += 1 if event.get("memo_hit") else 0
            engine["simulated_s"] += duration
            energy["compute"] += float(event.get("compute_power", 0.0)) * duration
            energy["io"] += float(event.get("io_power", 0.0)) * duration
            energy["memory"] += float(event.get("memory_power", 0.0)) * duration
            energy["platform"] += float(event.get("platform_power", 0.0)) * duration
            dram = event.get("dram_frequency")
            if dram is not None:
                dram_key = f"{float(dram) / 1e9:.3f}GHz"
                dram_residency[dram_key] = dram_residency.get(dram_key, 0.0) + duration
            phase = event.get("phase")
            if phase is not None:
                phase_residency[str(phase)] = (
                    phase_residency.get(str(phase), 0.0) + duration
                )
        elif event_type == "engine.transition":
            engine["transitions"] += 1
        elif event_type == "engine.run":
            engine["runs"] += 1
        elif event_type == "timeseries.sample":
            samples.append(event)

    summary: Dict[str, Any] = {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "engine": engine,
    }
    if spans:
        summary["spans"] = dict(sorted(spans.items()))
    if logs:
        summary["logs"] = dict(sorted(logs.items()))
    if engine["segments"]:
        segments = engine["segments"]
        engine["memo_hit_rate"] = engine["memo_hits"] / segments
        summary["energy_j"] = energy
        summary["dram_residency_s"] = dict(sorted(dram_residency.items()))
        summary["phase_residency_s"] = dict(sorted(phase_residency.items()))
    if samples:
        # Deferred import: keeps importers of this module free of the
        # analysis package (threading, sampling machinery).
        from repro.obs.analysis.sampler import summarize_timeseries

        summary["timeseries"] = summarize_timeseries(samples)
    return summary
