"""Nested timing spans over the hot path.

``with obs.span("executor.run", jobs=12):`` times the block, records the
duration in the ``span.<name>`` timer of the active registry, and emits a
``{"type": "span", ...}`` event carrying the nesting depth, so a recorded
trace reconstructs the CLI -> experiment -> campaign -> executor ->
``execute_job`` -> engine call tree.

When telemetry is disabled, :func:`span` returns a shared no-op context
manager -- the call site costs one function call and nothing else.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

from repro.obs import state

__all__ = ["Span", "span"]


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def annotate(self, **fields: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Current nesting depth. Spans only run in the process that opened them, and
# the runtime is single-threaded per process, so a module int suffices.
_depth = 0


class Span:
    __slots__ = ("name", "fields", "_started", "_depth")

    def __init__(self, name: str, fields: Dict[str, Any]) -> None:
        self.name = name
        self.fields = fields
        self._started = 0.0
        self._depth = 0

    def annotate(self, **fields: Any) -> None:
        """Attach extra fields to the span's event after it was opened."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        global _depth
        self._depth = _depth
        _depth += 1
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        global _depth
        duration = time.perf_counter() - self._started
        _depth = self._depth
        state.timer(f"span.{self.name}").observe(duration)
        event: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "depth": self._depth,
            "duration_s": duration,
        }
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.fields:
            event.update(self.fields)
        state.emit(event)


def span(name: str, **fields: Any) -> Any:
    """Open a timed span when telemetry is enabled; a no-op otherwise."""
    if not state.enabled():
        return _NULL_SPAN
    return Span(name, fields)
