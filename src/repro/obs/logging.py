"""The CLI-facing logging layer: a stream-disciplined :class:`Console`.

The repo's output contract (PR 3) distinguishes three kinds of text:

* **primary output** -- the report/JSON/CSV the user asked for.  Always
  stdout, never filtered, never decorated.  (:meth:`Console.out`)
* **decorations** -- headers, progress, runtime summaries.  stdout in normal
  runs, stderr when a machine format owns stdout (``--json``/``--csv``).
  Filtered by ``--log-level``.  (:meth:`Console.info` / :meth:`Console.debug`)
* **diagnostics** -- warnings and errors.  Always stderr.
  (:meth:`Console.warning` / :meth:`Console.error`)

Streams are resolved lazily (``sys.stdout``/``sys.stderr`` at call time, not
construction time) so pytest's ``capsys`` redirection keeps working.  Every
log call is also mirrored as a ``{"type": "log"}`` event to the active obs
sinks, which puts CLI messages on the same timeline as spans and engine
segments in a recorded trace.

This module is the one place in ``src/repro`` allowed to write to stdout --
``tools/lint_prints.py`` rejects bare ``print()`` anywhere else.
"""

from __future__ import annotations

import sys
from typing import Any, Optional, TextIO

from repro.obs import state

__all__ = ["Console"]


class Console:
    """Writes user-facing text with the stream discipline described above.

    ``info_stream`` picks where decorations go (default: stdout); pass
    ``sys.stderr`` when a machine format owns stdout.  ``out_stream``
    overrides the primary-output stream (tests, file capture).
    """

    def __init__(
        self,
        out_stream: Optional[TextIO] = None,
        info_stream: Optional[TextIO] = None,
    ) -> None:
        self._out_stream = out_stream
        self._info_stream = info_stream

    # ------------------------------------------------------------------
    # Stream resolution (lazy, so capsys/redirection work)
    # ------------------------------------------------------------------
    def _out(self) -> TextIO:
        return self._out_stream if self._out_stream is not None else sys.stdout

    def _info(self) -> TextIO:
        if self._info_stream is not None:
            return self._info_stream
        return self._out_stream if self._out_stream is not None else sys.stdout

    @staticmethod
    def _write(stream: TextIO, text: str) -> None:
        stream.write(text)
        stream.flush()

    def _log(self, level: str, message: str, stream: TextIO) -> None:
        if state.level_enabled(level):
            self._write(stream, message + "\n")
        if state.enabled():
            state.emit({"type": "log", "level": level, "message": message})

    # ------------------------------------------------------------------
    # Primary output
    # ------------------------------------------------------------------
    def out(self, message: Any = "") -> None:
        """Primary output: one line to stdout, never filtered."""
        self._write(self._out(), f"{message}\n")

    def write(self, text: str) -> None:
        """Primary output without an implied newline (progress lines)."""
        self._write(self._out(), text)

    # ------------------------------------------------------------------
    # Decorations and diagnostics
    # ------------------------------------------------------------------
    def debug(self, message: Any) -> None:
        self._log("debug", str(message), self._info())

    def info(self, message: Any = "") -> None:
        self._log("info", str(message), self._info())

    def warning(self, message: Any) -> None:
        self._log("warning", str(message), sys.stderr)

    def error(self, message: Any) -> None:
        self._log("error", str(message), sys.stderr)
