"""BENCH_*.json history comparison with per-metric regression budgets.

``repro bench compare BASELINE [CURRENT]`` turns the bench documents PRs
leave behind into an actual regression gate.  The old gate was one
hard-coded floor (engine speedup >= 5x) buried in ``runtime/bench.py``;
this module gates *every* headline metric, each with its own budget, and
prints a readable table of what moved.

Budgets are derived Converge-style -- percentile analysis with explicit
floors -- instead of one-size-fits-all tolerances:

* **Timing-derived metrics** (speedups, ticks/sec, jobs/sec) are noisy, so
  their allowed regression is computed from the *measured* noise: the bench
  harness records every repetition's wall time (``*_samples``), and the
  budget is ``max(NOISE_SCALE x observed relative spread, floor)`` where the
  spread is ``p90(samples) / min(samples) - 1`` on whichever side is
  noisier.  A machine with jittery timers automatically gets the slack its
  own measurements justify; a quiet machine is held to the floor.
* **Bit-identity flags and check booleans** get strict equality: a parity
  or determinism bit flipping is a failure no matter how small the timing
  deltas are.
* **Hard floors** apply regardless of history: the engine speedup must stay
  above :data:`~repro.runtime.bench.MIN_ENGINE_SPEEDUP` even against a
  slower baseline.

A ``--quick`` document measures far less work than a full one, so relative
throughput comparison across modes would be noise; on a mode mismatch the
comparison degrades (loudly) to hard floors and strict flags only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "BenchComparison",
    "MetricVerdict",
    "compare_documents",
    "load_bench_document",
    "render_comparison_text",
]

#: Multiplier on the observed p90 relative spread when deriving a budget.
NOISE_SCALE = 3.0

#: Minimum allowed-regression fraction for timing-derived metrics (the
#: Converge-style floor under the percentile term).
DEFAULT_REL_FLOOR = 0.35

#: Metrics gated by an absolute floor regardless of the baseline value.
HARD_FLOORS: Dict[str, float] = {
    "results.engine.speedup": 5.0,
    "results.engine_markov.speedup": 5.0,
}

#: Higher-is-better timing metrics compared under derived budgets, as
#: ``(metric path, sibling samples field used to derive the noise budget)``.
#: ``None`` means no per-repetition samples exist for that metric.
TIMING_METRICS: Sequence[Tuple[str, Optional[str]]] = (
    ("results.engine.speedup", "results.engine.fast_samples"),
    ("results.engine.fast_ticks_per_second", "results.engine.fast_samples"),
    ("results.engine_markov.speedup", "results.engine_markov.fast_samples"),
    (
        "results.engine_markov.fast_ticks_per_second",
        "results.engine_markov.fast_samples",
    ),
    ("results.jobs_serial.cold_jobs_per_second", None),
    ("results.jobs_serial.warm_jobs_per_second", None),
    ("results.jobs_parallel.cold_jobs_per_second", None),
    ("results.jobs_parallel.pool_reuse_jobs_per_second", None),
    # jobs_batched first appears in BENCH_8; absent-in-baseline metrics are
    # skipped by compare_documents, so older baselines still compare cleanly.
    ("results.jobs_batched.cold_jobs_per_second", None),
    ("results.jobs_batched.pool_reuse_jobs_per_second", None),
)

#: Boolean fields that must be ``True`` in the *current* document.
STRICT_FLAGS: Sequence[str] = (
    "results.engine.bit_identical",
    "results.engine_markov.bit_identical",
    "results.engine_telemetry.bit_identical",
    "results.jobs_serial.bit_identical",
    "results.jobs_parallel.bit_identical",
    # Absent in pre-BENCH_8 documents; strict flags are only enforced when
    # the current document carries them.
    "results.jobs_batched.bit_identical",
)


def load_bench_document(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one BENCH_*.json document, validating the envelope."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "results" not in document:
        raise ValueError(f"{path}: not a bench document (no 'results' key)")
    return document


def _lookup(document: Dict[str, Any], path: str) -> Any:
    node: Any = document
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (the Converge calibration convention)."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def relative_spread(samples: Sequence[float]) -> float:
    """``p90 / min - 1``: how much worse a plausible-bad repeat is than best."""
    cleaned = [float(value) for value in samples if value > 0]
    if len(cleaned) < 2:
        return 0.0
    return _percentile(cleaned, 0.90) / min(cleaned) - 1.0


def derive_budget(
    baseline_samples: Optional[Sequence[float]],
    current_samples: Optional[Sequence[float]],
    rel_floor: float = DEFAULT_REL_FLOOR,
    noise_scale: float = NOISE_SCALE,
) -> Tuple[float, str]:
    """The allowed-regression fraction and a provenance tag.

    ``max(noise_scale x spread, rel_floor)`` with the spread taken from the
    noisier side's recorded repetitions; documents without samples fall back
    to the floor alone.
    """
    spreads = [
        relative_spread(samples)
        for samples in (baseline_samples, current_samples)
        if samples
    ]
    if not spreads:
        return rel_floor, "floor"
    derived = noise_scale * max(spreads)
    if derived > rel_floor:
        return derived, f"noise p90 ({max(spreads) * 100:.1f}% spread x {noise_scale:g})"
    return rel_floor, "floor"


@dataclass
class MetricVerdict:
    """One compared metric: values, budget, and pass/fail."""

    metric: str
    kind: str  # "timing" | "floor" | "flag" | "info"
    baseline: Any
    current: Any
    delta_fraction: Optional[float] = None
    budget_fraction: Optional[float] = None
    budget_source: str = ""
    ok: bool = True
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "delta_fraction": self.delta_fraction,
            "budget_fraction": self.budget_fraction,
            "budget_source": self.budget_source,
            "ok": self.ok,
            "note": self.note,
        }


@dataclass
class BenchComparison:
    """The full comparison: verdict rows plus the headline result."""

    baseline_label: str
    current_label: str
    mode_mismatch: bool
    verdicts: List[MetricVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(verdict.ok for verdict in self.verdicts)

    @property
    def regressions(self) -> List[MetricVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "baseline": self.baseline_label,
            "current": self.current_label,
            "mode_mismatch": self.mode_mismatch,
            "regressions": len(self.regressions),
            "verdicts": [verdict.to_dict() for verdict in self.verdicts],
        }


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    baseline_label: str = "baseline",
    current_label: str = "current",
    rel_floor: float = DEFAULT_REL_FLOOR,
) -> BenchComparison:
    """Gate ``current`` against ``baseline``; see the module docstring."""
    mode_mismatch = bool(baseline.get("quick")) != bool(current.get("quick"))
    comparison = BenchComparison(
        baseline_label=baseline_label,
        current_label=current_label,
        mode_mismatch=mode_mismatch,
    )
    verdicts = comparison.verdicts

    # --- strict booleans: current checks and identity flags ---------------
    for name, value in sorted((current.get("checks") or {}).items()):
        verdicts.append(
            MetricVerdict(
                metric=f"checks.{name}",
                kind="flag",
                baseline=(baseline.get("checks") or {}).get(name),
                current=value,
                ok=bool(value),
                note="" if value else "current document failed its own check",
            )
        )
    for path in STRICT_FLAGS:
        value = _lookup(current, path)
        if value is None:
            continue
        verdicts.append(
            MetricVerdict(
                metric=path,
                kind="flag",
                baseline=_lookup(baseline, path),
                current=value,
                ok=bool(value),
                note="" if value else "bit-identity flag is False",
            )
        )

    # --- hard floors (mode-independent) ------------------------------------
    for path, floor in sorted(HARD_FLOORS.items()):
        value = _lookup(current, path)
        if value is None:
            continue
        ok = float(value) >= floor
        verdicts.append(
            MetricVerdict(
                metric=path,
                kind="floor",
                baseline=_lookup(baseline, path),
                current=value,
                budget_source=f"absolute floor {floor:g}",
                ok=ok,
                note="" if ok else f"below the absolute floor of {floor:g}",
            )
        )

    # --- relative budgets (same-mode only) ---------------------------------
    for path, samples_path in TIMING_METRICS:
        base_value = _lookup(baseline, path)
        cur_value = _lookup(current, path)
        if base_value is None or cur_value is None:
            continue
        if mode_mismatch:
            verdicts.append(
                MetricVerdict(
                    metric=path,
                    kind="info",
                    baseline=base_value,
                    current=cur_value,
                    note="mode mismatch (quick vs full): floors only",
                )
            )
            continue
        base_value = float(base_value)
        cur_value = float(cur_value)
        budget, source = derive_budget(
            _lookup(baseline, samples_path) if samples_path else None,
            _lookup(current, samples_path) if samples_path else None,
            rel_floor=rel_floor,
        )
        delta = (cur_value - base_value) / base_value if base_value else 0.0
        regressed = delta < -budget
        verdicts.append(
            MetricVerdict(
                metric=path,
                kind="timing",
                baseline=base_value,
                current=cur_value,
                delta_fraction=delta,
                budget_fraction=budget,
                budget_source=source,
                ok=not regressed,
                note=(
                    f"regressed {-delta * 100:.1f}% (budget {budget * 100:.1f}%)"
                    if regressed
                    else ""
                ),
            )
        )
    return comparison


def _format_value(value: Any) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


def render_comparison_text(comparison: BenchComparison) -> str:
    """The readable regression table (one row per gated metric)."""
    lines = [
        f"bench compare: {comparison.current_label} vs {comparison.baseline_label}"
        + (" [mode mismatch: floors and flags only]" if comparison.mode_mismatch else "")
    ]
    lines.append(
        f"  {'metric':52s} {'baseline':>12s} {'current':>12s} "
        f"{'delta':>8s} {'budget':>8s}  verdict"
    )
    for verdict in comparison.verdicts:
        delta = (
            f"{verdict.delta_fraction * 100:+.1f}%"
            if verdict.delta_fraction is not None
            else "-"
        )
        budget = (
            f"{verdict.budget_fraction * 100:.1f}%"
            if verdict.budget_fraction is not None
            else "-"
        )
        status = "ok" if verdict.ok else "REGRESSED"
        if verdict.kind == "info":
            status = "skipped"
        detail = f" ({verdict.budget_source})" if verdict.budget_source else ""
        if verdict.note and not verdict.ok:
            detail = f" -- {verdict.note}"
        lines.append(
            f"  {verdict.metric:52s} {_format_value(verdict.baseline):>12s} "
            f"{_format_value(verdict.current):>12s} {delta:>8s} {budget:>8s}  "
            f"{status}{detail}"
        )
    if comparison.ok:
        lines.append("  result: PASS (no metric exceeded its budget)")
    else:
        names = ", ".join(verdict.metric for verdict in comparison.regressions)
        lines.append(f"  result: FAIL ({len(comparison.regressions)} regression(s): {names})")
    return "\n".join(lines)
