"""Per-segment attribution diffs between two recorded traces.

``repro trace diff A B`` answers the ROADMAP's question -- *where does
segment time go, and where did it move?* -- by folding each trace's segments
into attribution buckets keyed by ``(workload, policy, phase, operating
point)``: the same key structure the engine's segment memo uses, minus
anything order-dependent.  Two traces of the same campaign align bucket by
bucket even when the runs executed in a different order (parallel workers,
shuffled submission), because the key carries no timestamps and no job
ordinals.

Each bucket accumulates simulated seconds, ticks, segment count, model
evaluations (memo *misses* -- the expensive part), memo hits, and energy by
domain.  The diff subtracts A's buckets from B's, flags buckets present on
only one side, and sorts by absolute simulated-time movement so the biggest
shift tops the table.  Two traces of the same run produce all-zero deltas
(``drift == False``) -- the acceptance check for recorder determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.analysis.model import OperatingPoint, TraceModel

__all__ = [
    "AttributionBucket",
    "DiffRow",
    "TraceDiff",
    "attribution",
    "diff_traces",
    "render_diff_text",
]

#: The accumulated quantities every bucket tracks (name -> zero).
_BUCKET_FIELDS = (
    "seconds",
    "ticks",
    "segments",
    "model_evaluations",
    "memo_hits",
    "energy_j",
)


@dataclass
class AttributionBucket:
    """Aggregated cost of one ``(workload, policy, phase, point)`` key."""

    workload: str
    policy: str
    phase: str
    point: OperatingPoint
    seconds: float = 0.0
    ticks: int = 0
    segments: int = 0
    model_evaluations: int = 0
    memo_hits: int = 0
    energy_j: float = 0.0

    @property
    def key(self) -> Tuple[str, str, str, OperatingPoint]:
        return (self.workload, self.policy, self.phase, self.point)

    @property
    def label(self) -> str:
        prefix = f"{self.workload}/{self.policy}/" if self.workload else ""
        return f"{prefix}{self.phase} @ {self.point.label}"

    def values(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in _BUCKET_FIELDS}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "policy": self.policy,
            "phase": self.phase,
            "point": self.point.to_dict(),
            **self.values(),
        }


def attribution(
    model: TraceModel,
) -> Dict[Tuple[str, str, str, OperatingPoint], AttributionBucket]:
    """Fold a trace's segments into attribution buckets."""
    buckets: Dict[Tuple[str, str, str, OperatingPoint], AttributionBucket] = {}
    for run in model.runs:
        for segment in run.segments:
            key = (run.workload, run.policy, segment.phase, segment.point)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = AttributionBucket(
                    workload=run.workload,
                    policy=run.policy,
                    phase=segment.phase,
                    point=segment.point,
                )
            bucket.seconds += segment.duration
            bucket.ticks += segment.ticks
            bucket.segments += 1
            if segment.memo_hit:
                bucket.memo_hits += 1
            else:
                bucket.model_evaluations += 1
            bucket.energy_j += segment.total_power * segment.duration
    return buckets


@dataclass
class DiffRow:
    """One aligned bucket with its per-quantity deltas (B minus A)."""

    label: str
    status: str  # "both" | "only_a" | "only_b"
    a: Optional[AttributionBucket]
    b: Optional[AttributionBucket]
    deltas: Dict[str, float] = field(default_factory=dict)

    @property
    def moved_seconds(self) -> float:
        return self.deltas.get("seconds", 0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "status": self.status,
            "a": self.a.to_dict() if self.a else None,
            "b": self.b.to_dict() if self.b else None,
            "deltas": dict(self.deltas),
        }


@dataclass
class TraceDiff:
    """The aligned diff of two traces: rows plus totals and a drift verdict."""

    rows: List[DiffRow]
    totals_a: Dict[str, float]
    totals_b: Dict[str, float]

    @property
    def drift(self) -> bool:
        """True when anything moved: a nonzero delta or a one-sided bucket."""
        return any(
            row.status != "both" or any(row.deltas.values()) for row in self.rows
        )

    @property
    def changed_rows(self) -> List[DiffRow]:
        return [
            row
            for row in self.rows
            if row.status != "both" or any(row.deltas.values())
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "drift": self.drift,
            "buckets": len(self.rows),
            "changed": len(self.changed_rows),
            "totals_a": dict(self.totals_a),
            "totals_b": dict(self.totals_b),
            "totals_delta": {
                name: self.totals_b[name] - self.totals_a[name]
                for name in _BUCKET_FIELDS
            },
            "rows": [row.to_dict() for row in self.rows],
        }


def _totals(
    buckets: Dict[Tuple[str, str, str, OperatingPoint], AttributionBucket],
) -> Dict[str, float]:
    totals = {name: 0.0 for name in _BUCKET_FIELDS}
    for bucket in buckets.values():
        for name in _BUCKET_FIELDS:
            totals[name] += getattr(bucket, name)
    return totals


def diff_traces(a: TraceModel, b: TraceModel) -> TraceDiff:
    """Attribution delta of trace ``b`` against baseline trace ``a``."""
    buckets_a = attribution(a)
    buckets_b = attribution(b)
    rows: List[DiffRow] = []
    for key in set(buckets_a) | set(buckets_b):
        bucket_a = buckets_a.get(key)
        bucket_b = buckets_b.get(key)
        reference = bucket_b if bucket_b is not None else bucket_a
        assert reference is not None
        zeros = {name: 0.0 for name in _BUCKET_FIELDS}
        values_a = bucket_a.values() if bucket_a else zeros
        values_b = bucket_b.values() if bucket_b else zeros
        rows.append(
            DiffRow(
                label=reference.label,
                status=(
                    "both"
                    if bucket_a and bucket_b
                    else ("only_a" if bucket_a else "only_b")
                ),
                a=bucket_a,
                b=bucket_b,
                deltas={
                    name: values_b[name] - values_a[name] for name in _BUCKET_FIELDS
                },
            )
        )
    rows.sort(key=lambda row: (-abs(row.moved_seconds), row.label))
    return TraceDiff(
        rows=rows, totals_a=_totals(buckets_a), totals_b=_totals(buckets_b)
    )


def render_diff_text(diff: TraceDiff, limit: int = 20) -> str:
    """A readable attribution-movement table (biggest time shift first)."""
    lines: List[str] = []
    if not diff.drift:
        lines.append(
            f"no drift: {len(diff.rows)} attribution bucket(s) identical "
            "(time, ticks, evaluations, memo hits, energy)"
        )
        return "\n".join(lines)
    changed = diff.changed_rows
    lines.append(
        f"drift in {len(changed)} of {len(diff.rows)} attribution bucket(s) "
        "(delta = B - A, sorted by |d_time|):"
    )
    header = (
        f"  {'bucket':56s} {'d_time_s':>10s} {'d_ticks':>9s} "
        f"{'d_evals':>8s} {'d_memo':>7s} {'d_energy_j':>11s}"
    )
    lines.append(header)
    for row in changed[:limit]:
        marker = {"both": " ", "only_a": "-", "only_b": "+"}[row.status]
        lines.append(
            f"{marker} {row.label:56s} "
            f"{row.deltas['seconds']:>+10.4g} "
            f"{row.deltas['ticks']:>+9.0f} "
            f"{row.deltas['model_evaluations']:>+8.0f} "
            f"{row.deltas['memo_hits']:>+7.0f} "
            f"{row.deltas['energy_j']:>+11.4g}"
        )
    if len(changed) > limit:
        lines.append(f"  ... {len(changed) - limit} more changed bucket(s)")
    totals = {
        name: diff.totals_b[name] - diff.totals_a[name] for name in _BUCKET_FIELDS
    }
    lines.append(
        "  total: "
        f"d_time={totals['seconds']:+.4g}s "
        f"d_ticks={totals['ticks']:+.0f} "
        f"d_evaluations={totals['model_evaluations']:+.0f} "
        f"d_memo_hits={totals['memo_hits']:+.0f} "
        f"d_energy={totals['energy_j']:+.4g}J"
    )
    return "\n".join(lines)
