"""Background metric time-series sampling over the live registry.

An end-of-run ``obs.snapshot()`` collapses a whole campaign into one number
per instrument -- a gauge like ``executor.queue_depth`` reads whatever it
happened to be at teardown (usually zero).  The ROADMAP's autoscaler needs
the *time dimension*: sustained-load windows over queue depth, in-flight
jobs, worker count, and cache behaviour.  :class:`MetricsSampler` provides
it: a daemon thread polls the active :class:`~repro.obs.metrics.MetricsRegistry`
on a fixed cadence and emits one ``timeseries.sample`` event per poll to the
active sinks -- the same JSONL stream ``--trace-out`` records, so samples
line up with spans and engine segments on one timeline.

Each sample carries a monotonic sequence number, the elapsed seconds since
the sampler started, the executor gauges, the headline throughput counters,
and the derived cache-hit ratio.  A sample is taken immediately on
:meth:`start` and once more on :meth:`stop`, so even a run shorter than one
interval produces a usable (begin, end) pair.

Sampling is *pure observation*: the thread only reads instrument values and
writes events.  It cannot perturb results -- job hashes, payloads, and
exports are bit-identical with the sampler on or off (bench- and test-gated,
like the rest of ``repro.obs``).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import state as obs_state
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsSampler", "summarize_timeseries"]

#: Gauges copied verbatim into every sample (name -> sample field).
SAMPLED_GAUGES = {
    "executor.queue_depth": "queue_depth",
    "executor.in_flight": "in_flight",
    "executor.workers": "workers",
}

#: Counters copied verbatim into every sample (cumulative totals).
SAMPLED_COUNTERS = {
    "executor.executed": "jobs_executed",
    "executor.cache_hits": "jobs_from_cache",
    "cache.hits": "cache_hits",
    "cache.misses": "cache_misses",
    "engine.ticks": "engine_ticks",
}


class MetricsSampler:
    """Polls the live registry on a cadence; see the module docstring.

    ``registry`` defaults to resolving the *ambient* registry at each poll
    (so a sampler started before ``obs.scoped()`` blocks still reads
    whichever scope is current); pass an explicit registry to pin one.
    ``emit`` defaults to :func:`repro.obs.state.emit` (the active sinks).
    """

    def __init__(
        self,
        interval: float,
        registry: Optional[MetricsRegistry] = None,
        emit: Optional[Callable[[Dict[str, Any]], None]] = None,
        extra_counters: Sequence[str] = (),
        extra_gauges: Sequence[str] = (),
    ) -> None:
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = interval
        self._registry = registry
        self._emit = emit if emit is not None else obs_state.emit
        self._extra_counters = tuple(extra_counters)
        self._extra_gauges = tuple(extra_gauges)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _resolve_registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else obs_state.registry()

    def sample_once(self) -> Dict[str, Any]:
        """Take one sample now and emit it; returns the event."""
        registry = self._resolve_registry()
        with self._lock:
            seq = self._seq
            self._seq += 1
            event: Dict[str, Any] = {
                "type": "timeseries.sample",
                "seq": seq,
                "t": time.monotonic() - self._started_at if self._started_at else 0.0,
                "interval_s": self.interval,
            }
            for name, label in SAMPLED_GAUGES.items():
                event[label] = registry.gauge(name).value
            for name in self._extra_gauges:
                event[name] = registry.gauge(name).value
            for name, label in SAMPLED_COUNTERS.items():
                event[label] = registry.counter(name).value
            for name in self._extra_counters:
                event[name] = registry.counter(name).value
            lookups = event.get("cache_hits", 0.0) + event.get("cache_misses", 0.0)
            event["cache_hit_ratio"] = (
                event["cache_hits"] / lookups if lookups else None
            )
            self._emit(event)
            return event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MetricsSampler":
        """Begin sampling (emits an immediate t=0 sample)."""
        if self._thread is not None:
            raise RuntimeError("sampler already started")
        self._started_at = time.monotonic()
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-metrics-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self, final_sample: bool = True) -> int:
        """Stop the thread (taking one last sample); returns samples taken."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        if final_sample and self._started_at:
            self.sample_once()
        return self._seq

    @property
    def samples_taken(self) -> int:
        return self._seq

    def __enter__(self) -> "MetricsSampler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def summarize_timeseries(samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Condense ``timeseries.sample`` events into per-metric statistics.

    Used by ``repro trace describe``: for every numeric field (gauges,
    counters, derived ratios) report min/mean/max/last over the run -- the
    sustained-load view a single end-of-run snapshot cannot give.
    """
    if not samples:
        return {}
    skip = {"type", "seq", "t", "interval_s"}
    metrics: Dict[str, Dict[str, Any]] = {}
    for sample in samples:
        for name, value in sample.items():
            if name in skip or not isinstance(value, (int, float)):
                continue
            entry = metrics.setdefault(
                name, {"min": value, "max": value, "sum": 0.0, "count": 0, "last": value}
            )
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
            entry["sum"] += value
            entry["count"] += 1
            entry["last"] = value
    summary: Dict[str, Any] = {
        "samples": len(samples),
        "span_s": max(float(s.get("t", 0.0)) for s in samples),
        "metrics": {},
    }
    for name in sorted(metrics):
        entry = metrics[name]
        summary["metrics"][name] = {
            "min": entry["min"],
            "mean": entry["sum"] / entry["count"] if entry["count"] else 0.0,
            "max": entry["max"],
            "last": entry["last"],
        }
    return summary
