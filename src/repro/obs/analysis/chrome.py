"""Chrome/Perfetto ``trace_event`` export of a recorded telemetry trace.

``repro trace export PATH --chrome OUT`` converts a ``--trace-out`` JSONL
file into the Trace Event Format every Chromium-derived viewer reads
(``chrome://tracing``, https://ui.perfetto.dev): a campaign's whole waterfall
-- CLI span tree down to individual engine segments -- opens in a real trace
viewer instead of a terminal table.

Two kinds of timeline coexist in one export, kept on separate process rows:

* **Spans** (wall time).  Span events are emitted at *exit* and carry only
  depth and duration, so the exporter reconstructs a consistent waterfall:
  exits arrive in post-order, meaning the depth-``d+1`` exits seen since the
  last depth-``d`` exit are exactly that span's children.  Children are laid
  out back-to-back from their parent's start.  Offsets between siblings are
  therefore synthetic (gaps inside a parent are not recoverable), but every
  duration and every nesting edge is real.
* **Engine segments and transitions** (simulated time).  These carry exact
  simulated timestamps, so they plot verbatim -- one thread row per engine
  run, segment name = phase, args = operating point, per-domain power, memo
  hit/miss.  Transitions render on the same row.

Timestamps are microseconds (the format's unit); log events have no
timestamps at all and are skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.analysis.model import EngineRun, TraceModel

__all__ = ["chrome_trace_events", "export_chrome_trace"]

#: Process ids for the two timeline families (arbitrary but stable).
_SPAN_PID = 1
_ENGINE_PID = 2


@dataclass
class _SpanNode:
    """One reconstructed span with its children (post-order assembly)."""

    name: str
    duration: float
    fields: Dict[str, Any]
    children: List["_SpanNode"] = field(default_factory=list)
    start: float = 0.0


def _build_span_forest(spans: List[Dict[str, Any]]) -> List[_SpanNode]:
    """Rebuild the span tree from exit-ordered events (see module docstring)."""
    pending: Dict[int, List[_SpanNode]] = {}
    for event in spans:
        depth = int(event.get("depth", 0))
        fields = {
            key: value
            for key, value in event.items()
            if key not in ("type", "name", "depth", "duration_s")
        }
        node = _SpanNode(
            name=str(event.get("name", "?")),
            duration=float(event.get("duration_s", 0.0)),
            fields=fields,
            children=pending.pop(depth + 1, []),
        )
        pending.setdefault(depth, []).append(node)
    # Any depth>0 leftovers (a trace cut mid-span) surface as roots rather
    # than vanishing.
    roots: List[_SpanNode] = []
    for depth in sorted(pending):
        roots.extend(pending[depth])
    return roots


def _place(node: _SpanNode, start: float) -> float:
    """Assign start times: children back-to-back from the parent's start."""
    node.start = start
    cursor = start
    for child in node.children:
        cursor = _place(child, cursor)
    return max(cursor, start + node.duration)


def _span_events(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    roots = _build_span_forest(spans)
    cursor = 0.0
    for root in roots:
        cursor = _place(root, cursor)
    events: List[Dict[str, Any]] = []

    def emit(node: _SpanNode, depth: int) -> None:
        events.append(
            {
                "ph": "X",
                "pid": _SPAN_PID,
                "tid": 1,
                "name": node.name,
                "cat": "span",
                "ts": node.start * 1e6,
                "dur": node.duration * 1e6,
                "args": {"depth": depth, **node.fields},
            }
        )
        for child in node.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return events


def _engine_events(runs: List[EngineRun]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for tid, run in enumerate(runs, start=1):
        title = f"{run.workload or run.key}/{run.policy}" if run.policy else (
            run.workload or run.key
        )
        events.append(
            {
                "ph": "M",
                "pid": _ENGINE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": title},
            }
        )
        for segment in run.segments:
            events.append(
                {
                    "ph": "X",
                    "pid": _ENGINE_PID,
                    "tid": tid,
                    "name": segment.phase,
                    "cat": "engine.segment",
                    "ts": segment.time * 1e6,
                    "dur": segment.duration * 1e6,
                    "args": {
                        "ticks": segment.ticks,
                        "memo_hit": segment.memo_hit,
                        "bandwidth_gbps": segment.bandwidth / 1e9,
                        "power_w": segment.total_power,
                        **segment.point.to_dict(),
                    },
                }
            )
        for transition in run.transitions:
            events.append(
                {
                    "ph": "X",
                    "pid": _ENGINE_PID,
                    "tid": tid,
                    "name": "transition",
                    "cat": "engine.transition",
                    "ts": transition.time * 1e6,
                    "dur": transition.latency * 1e6,
                    "args": {
                        "from_dram_frequency": transition.from_dram_frequency,
                        "to_dram_frequency": transition.to_dram_frequency,
                    },
                }
            )
    return events


def chrome_trace_events(model: TraceModel) -> Dict[str, Any]:
    """The full Trace Event Format document for one parsed trace."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _SPAN_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro spans (wall time, reconstructed)"},
        },
        {
            "ph": "M",
            "pid": _ENGINE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro engine (simulated time)"},
        },
    ]
    events.extend(_span_events(model.spans))
    events.extend(_engine_events(model.runs))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro trace export --chrome",
            "skipped_log_events": len(model.logs),
            "timeseries_samples": len(model.samples),
        },
    }


def export_chrome_trace(
    model: TraceModel, path: Union[str, Path]
) -> Dict[str, Any]:
    """Write the Chrome trace document for ``model`` to ``path``."""
    document = chrome_trace_events(model)
    out = Path(path)
    if str(out.parent) not in ("", "."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return document
