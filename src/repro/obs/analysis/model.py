"""A typed model over recorded telemetry event streams.

PR 6's sinks write flat JSONL: one dict per event, ``type`` discriminated
(``span``, ``log``, ``engine.segment``, ``engine.transition``, ``engine.run``,
``timeseries.sample``).  That format is perfect for appending from forked
workers and terrible for asking questions.  :class:`TraceModel` parses a
stream back into structure:

* engine events regroup into :class:`EngineRun`\\ s -- segments and
  transitions attached to the run that produced them.  Events stamped with a
  ``job_hash`` (everything the runtime emits via ``execute_job_with_stats``)
  group by that hash, so traces written by interleaved worker processes
  reassemble correctly; unstamped events (a bare ``EngineTraceRecorder``)
  fall back to stream order, closing at each ``engine.run`` summary.
* each segment carries its :class:`OperatingPoint` -- the exact
  (frequencies, rail scales, MRC set) tuple the engine's memo keys on --
  which is what lets ``trace diff`` align two runs phase-by-phase even when
  the runs executed jobs in different orders.
* spans, logs, and time-series samples are collected as-is for the
  waterfall export and ``describe`` summaries.

Nothing here re-derives simulation results; the model is a read-only view of
what the recorder observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.obs.sinks import read_jsonl

__all__ = [
    "EngineRun",
    "OperatingPoint",
    "TraceModel",
    "TraceSegment",
    "TraceTransition",
    "load_trace",
]


@dataclass(frozen=True)
class OperatingPoint:
    """The SoC state a segment ran under, as the memo key sees it.

    Hashable so attribution buckets key on it directly; formatted compactly
    for tables (``1.067GHz io=0.8GHz cpu=2.6GHz opt``).
    """

    dram_frequency: float
    interconnect_frequency: float
    cpu_frequency: float
    gfx_frequency: float
    v_sa_scale: float
    v_io_scale: float
    mrc_optimized: bool

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "OperatingPoint":
        return cls(
            dram_frequency=float(event.get("dram_frequency", 0.0)),
            interconnect_frequency=float(event.get("interconnect_frequency", 0.0)),
            cpu_frequency=float(event.get("cpu_frequency", 0.0)),
            gfx_frequency=float(event.get("gfx_frequency", 0.0)),
            v_sa_scale=float(event.get("v_sa_scale", 1.0)),
            v_io_scale=float(event.get("v_io_scale", 1.0)),
            mrc_optimized=bool(event.get("mrc_optimized", False)),
        )

    @property
    def label(self) -> str:
        parts = [
            f"dram={self.dram_frequency / 1e9:.3f}GHz",
            f"io={self.interconnect_frequency / 1e9:.2f}GHz",
            f"cpu={self.cpu_frequency / 1e9:.2f}GHz",
        ]
        if self.mrc_optimized:
            parts.append("mrc-opt")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dram_frequency": self.dram_frequency,
            "interconnect_frequency": self.interconnect_frequency,
            "cpu_frequency": self.cpu_frequency,
            "gfx_frequency": self.gfx_frequency,
            "v_sa_scale": self.v_sa_scale,
            "v_io_scale": self.v_io_scale,
            "mrc_optimized": self.mrc_optimized,
        }


@dataclass(frozen=True)
class TraceSegment:
    """One replayed segment, typed (see ``repro.sim.trace.SegmentRecord``)."""

    time: float
    duration: float
    ticks: int
    phase: str
    memo_hit: bool
    point: OperatingPoint
    bandwidth: float
    compute_power: float
    io_power: float
    memory_power: float
    platform_power: float

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "TraceSegment":
        return cls(
            time=float(event.get("t", 0.0)),
            duration=float(event.get("duration_s", 0.0)),
            ticks=int(event.get("ticks", 0)),
            phase=str(event.get("phase", "?")),
            memo_hit=bool(event.get("memo_hit", False)),
            point=OperatingPoint.from_event(event),
            bandwidth=float(event.get("bandwidth", 0.0)),
            compute_power=float(event.get("compute_power", 0.0)),
            io_power=float(event.get("io_power", 0.0)),
            memory_power=float(event.get("memory_power", 0.0)),
            platform_power=float(event.get("platform_power", 0.0)),
        )

    @property
    def total_power(self) -> float:
        return (
            self.compute_power + self.io_power + self.memory_power + self.platform_power
        )


@dataclass(frozen=True)
class TraceTransition:
    """One operating-point transition, typed."""

    time: float
    latency: float
    from_dram_frequency: float
    to_dram_frequency: float

    @classmethod
    def from_event(cls, event: Dict[str, Any]) -> "TraceTransition":
        return cls(
            time=float(event.get("t", 0.0)),
            latency=float(event.get("latency_s", 0.0)),
            from_dram_frequency=float(event.get("from_dram_frequency", 0.0)),
            to_dram_frequency=float(event.get("to_dram_frequency", 0.0)),
        )


@dataclass
class EngineRun:
    """One engine run reassembled from its segment/transition/summary events."""

    key: str
    workload: str = ""
    policy: str = ""
    job_hash: Optional[str] = None
    segments: List[TraceSegment] = field(default_factory=list)
    transitions: List[TraceTransition] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    @property
    def simulated_seconds(self) -> float:
        return sum(segment.duration for segment in self.segments)

    @property
    def ticks(self) -> int:
        return sum(segment.ticks for segment in self.segments)

    @property
    def model_evaluations(self) -> int:
        return sum(1 for segment in self.segments if not segment.memo_hit)


class TraceModel:
    """A parsed telemetry event stream; see the module docstring."""

    def __init__(self, events: Iterable[Dict[str, Any]]) -> None:
        self.events: List[Dict[str, Any]] = list(events)
        self.runs: List[EngineRun] = []
        self.spans: List[Dict[str, Any]] = []
        self.logs: List[Dict[str, Any]] = []
        self.samples: List[Dict[str, Any]] = []
        self.other: List[Dict[str, Any]] = []
        self._parse()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceModel":
        """Parse a ``--trace-out`` JSONL file."""
        return cls(read_jsonl(path))

    def _run_for(
        self, runs_by_key: Dict[str, EngineRun], event: Dict[str, Any]
    ) -> EngineRun:
        """The open run this engine event belongs to (created on first use).

        ``job_hash``-stamped events key by hash; unstamped events share the
        anonymous in-order run, which ``engine.run`` summaries close.
        """
        key = event.get("job_hash")
        key = str(key) if key is not None else "<stream>"
        run = runs_by_key.get(key)
        if run is None:
            run = EngineRun(
                key=f"run-{len(self.runs)}",
                job_hash=event.get("job_hash"),
            )
            runs_by_key[key] = run
            self.runs.append(run)
        return run

    def _parse(self) -> None:
        open_runs: Dict[str, EngineRun] = {}
        for event in self.events:
            event_type = str(event.get("type", "unknown"))
            if event_type == "engine.segment":
                self._run_for(open_runs, event).segments.append(
                    TraceSegment.from_event(event)
                )
            elif event_type == "engine.transition":
                self._run_for(open_runs, event).transitions.append(
                    TraceTransition.from_event(event)
                )
            elif event_type == "engine.run":
                run = self._run_for(open_runs, event)
                run.workload = str(event.get("workload", ""))
                run.policy = str(event.get("policy", ""))
                run.summary = dict(event)
                # The summary is the recorder's final event: close the run so
                # a later unstamped run starts fresh.
                key = event.get("job_hash")
                open_runs.pop(str(key) if key is not None else "<stream>", None)
            elif event_type == "span":
                self.spans.append(event)
            elif event_type == "log":
                self.logs.append(event)
            elif event_type == "timeseries.sample":
                self.samples.append(event)
            else:
                self.other.append(event)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def segments(self) -> List[TraceSegment]:
        return [segment for run in self.runs for segment in run.segments]

    @property
    def transitions(self) -> List[TraceTransition]:
        return [transition for run in self.runs for transition in run.transitions]

    def describe(self) -> Dict[str, Any]:
        """Headline counts, for quick orientation and error messages."""
        return {
            "events": len(self.events),
            "engine_runs": len(self.runs),
            "segments": len(self.segments),
            "transitions": len(self.transitions),
            "spans": len(self.spans),
            "logs": len(self.logs),
            "timeseries_samples": len(self.samples),
        }


def load_trace(path: Union[str, Path]) -> TraceModel:
    """Module-level convenience mirroring :meth:`TraceModel.load`."""
    return TraceModel.load(path)
