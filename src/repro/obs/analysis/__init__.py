"""``repro.obs.analysis``: the read side of the telemetry layer.

PR 6 made the stack *emit* telemetry; this package *consumes* it:

* **model** -- :class:`TraceModel` parses a ``--trace-out`` JSONL stream back
  into typed engine runs, segments (with their :class:`OperatingPoint`),
  spans, logs, and time-series samples.
* **diff** -- :func:`diff_traces` aligns two traces by ``(workload, policy,
  phase, operating point)`` attribution buckets and reports where segment
  time, model evaluations, and memo misses moved (``repro trace diff``).
* **chrome** -- :func:`export_chrome_trace` renders the span waterfall and
  the simulated-time segment timeline as Chrome/Perfetto ``trace_event``
  JSON (``repro trace export --chrome``).
* **sampler** -- :class:`MetricsSampler` polls the live registry on a cadence
  and emits ``timeseries.sample`` events (``--sample-interval``), giving the
  ROADMAP autoscaler its sustained-load windows.
* **benchdiff** -- :func:`compare_documents` gates a fresh BENCH_*.json
  against a committed baseline with Converge-style percentile-derived
  budgets and strict identity flags (``repro bench compare``).

Everything here is read-only over recorded events and live instruments:
analysis can never perturb simulation results.
"""

from repro.obs.analysis.benchdiff import (
    BenchComparison,
    MetricVerdict,
    compare_documents,
    derive_budget,
    load_bench_document,
    relative_spread,
    render_comparison_text,
)
from repro.obs.analysis.chrome import chrome_trace_events, export_chrome_trace
from repro.obs.analysis.diff import (
    AttributionBucket,
    DiffRow,
    TraceDiff,
    attribution,
    diff_traces,
    render_diff_text,
)
from repro.obs.analysis.model import (
    EngineRun,
    OperatingPoint,
    TraceModel,
    TraceSegment,
    TraceTransition,
    load_trace,
)
from repro.obs.analysis.sampler import MetricsSampler, summarize_timeseries

__all__ = [
    "AttributionBucket",
    "BenchComparison",
    "DiffRow",
    "EngineRun",
    "MetricVerdict",
    "MetricsSampler",
    "OperatingPoint",
    "TraceDiff",
    "TraceModel",
    "TraceSegment",
    "TraceTransition",
    "attribution",
    "chrome_trace_events",
    "compare_documents",
    "derive_budget",
    "diff_traces",
    "export_chrome_trace",
    "load_bench_document",
    "load_trace",
    "relative_spread",
    "render_comparison_text",
    "render_diff_text",
    "summarize_timeseries",
]
