"""Event sinks: where telemetry events go once emitted.

Every event is a plain JSON-able dict with at least a ``"type"`` key
(``"span"``, ``"log"``, ``"engine.segment"``, ``"engine.transition"``,
``"engine.run"``).  Sinks are intentionally dumb -- no buffering policy, no
filtering -- so the emit path stays cheap and the on-disk format stays
trivially greppable.

:class:`JsonlSink` appends one compact JSON object per line.  It opens the
file lazily and writes each event with a single ``write()`` call, so a sink
inherited by forked worker processes produces interleaved-but-whole lines
rather than torn ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["JsonlSink", "MemorySink", "read_jsonl"]


class MemorySink:
    """Collects events in a list; the test-suite sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def close(self) -> None:
        return None

    def of_type(self, event_type: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("type") == event_type]


class JsonlSink:
    """Appends events to a JSON-lines file, one compact object per line."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    def emit(self, event: Dict[str, Any]) -> None:
        handle = self._handle
        if handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = self._handle = open(self.path, "a", encoding="utf-8")
        handle.write(json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load every event from a JSON-lines trace file."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
