"""Process-wide, explicitly-scopable telemetry state.

One :class:`ObsScope` is active at any time.  It bundles everything the
ambient accessors resolve against: whether telemetry is enabled, the log
level, the active :class:`~repro.obs.metrics.MetricsRegistry`, the event
sinks, and whether engine segment tracing is requested.  The default scope
is *disabled*, so an uninstrumented process pays only a list-index plus a
boolean test per call site.

``scoped()`` pushes a fresh scope (inheriting sinks/level unless overridden)
and pops it on exit.  That is how worker processes isolate per-job metrics
(fresh registry, inherited sinks) and how tests keep telemetry from leaking
between cases.

Telemetry state deliberately lives *outside* job specs: nothing here ever
feeds a content hash, a cached payload, or a simulation result.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "LEVELS",
    "ObsScope",
    "add_sink",
    "configure",
    "counter",
    "current",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "level",
    "level_enabled",
    "merge_snapshot",
    "registry",
    "remove_sink",
    "reset",
    "scoped",
    "set_level",
    "snapshot",
    "timer",
    "trace_enabled",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
_LEVEL_NAMES = {number: name for name, number in LEVELS.items()}
_DEFAULT_LEVEL = LEVELS["info"]


def _coerce_level(value: Union[int, str]) -> int:
    if isinstance(value, str):
        try:
            return LEVELS[value.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {value!r}; expected one of {sorted(LEVELS)}"
            ) from None
    return int(value)


class ObsScope:
    """One layer of telemetry state; see module docstring."""

    __slots__ = ("enabled", "level", "registry", "sinks", "trace_segments")

    def __init__(
        self,
        enabled: bool = False,
        level: int = _DEFAULT_LEVEL,
        registry: Optional[MetricsRegistry] = None,
        sinks: Optional[List[Any]] = None,
        trace_segments: bool = False,
    ) -> None:
        self.enabled = enabled
        self.level = level
        self.registry = registry if registry is not None else MetricsRegistry("ambient")
        self.sinks: List[Any] = sinks if sinks is not None else []
        self.trace_segments = trace_segments


_SCOPES: List[ObsScope] = [ObsScope()]


def current() -> ObsScope:
    return _SCOPES[-1]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def enabled() -> bool:
    return _SCOPES[-1].enabled


def trace_enabled() -> bool:
    scope = _SCOPES[-1]
    return scope.enabled and scope.trace_segments


def level() -> str:
    return _LEVEL_NAMES.get(_SCOPES[-1].level, str(_SCOPES[-1].level))


def level_enabled(name: Union[int, str]) -> bool:
    return _coerce_level(name) >= _SCOPES[-1].level


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    enabled: Optional[bool] = None,
    level: Optional[Union[int, str]] = None,
    trace_segments: Optional[bool] = None,
) -> None:
    """Mutate the *current* scope in place."""
    scope = _SCOPES[-1]
    if enabled is not None:
        scope.enabled = enabled
    if level is not None:
        scope.level = _coerce_level(level)
    if trace_segments is not None:
        scope.trace_segments = trace_segments


def enable(trace_segments: Optional[bool] = None) -> None:
    configure(enabled=True, trace_segments=trace_segments)


def disable() -> None:
    configure(enabled=False)


def set_level(name: Union[int, str]) -> None:
    configure(level=name)


def reset() -> None:
    """Drop every scope and return to the disabled default state."""
    _SCOPES[:] = [ObsScope()]


@contextlib.contextmanager
def scoped(
    enabled: bool = True,
    registry: Optional[MetricsRegistry] = None,
    sinks: Optional[List[Any]] = None,
    level: Optional[Union[int, str]] = None,
    trace_segments: Optional[bool] = None,
) -> Iterator[ObsScope]:
    """Push a fresh scope (new registry unless given; inherited sinks, level
    and trace flag unless overridden), yield it, and pop on exit."""
    parent = _SCOPES[-1]
    scope = ObsScope(
        enabled=enabled,
        level=parent.level if level is None else _coerce_level(level),
        registry=registry,
        sinks=list(parent.sinks) if sinks is None else sinks,
        trace_segments=(
            parent.trace_segments if trace_segments is None else trace_segments
        ),
    )
    _SCOPES.append(scope)
    try:
        yield scope
    finally:
        _SCOPES.remove(scope)


# ----------------------------------------------------------------------
# Instruments (ambient accessors; no-op when disabled)
# ----------------------------------------------------------------------
def counter(name: str) -> Counter:
    scope = _SCOPES[-1]
    return scope.registry.counter(name) if scope.enabled else NULL_INSTRUMENT


def gauge(name: str) -> Gauge:
    scope = _SCOPES[-1]
    return scope.registry.gauge(name) if scope.enabled else NULL_INSTRUMENT


def histogram(name: str) -> Histogram:
    scope = _SCOPES[-1]
    return scope.registry.histogram(name) if scope.enabled else NULL_INSTRUMENT


def timer(name: str) -> Timer:
    scope = _SCOPES[-1]
    return scope.registry.timer(name) if scope.enabled else NULL_INSTRUMENT


def registry() -> MetricsRegistry:
    """The current scope's registry (live even while telemetry is disabled)."""
    return _SCOPES[-1].registry


def snapshot() -> Dict[str, Any]:
    return _SCOPES[-1].registry.snapshot()


def merge_snapshot(data: Dict[str, Any]) -> None:
    """Fold a worker registry snapshot into the current scope's registry."""
    scope = _SCOPES[-1]
    if scope.enabled:
        scope.registry.merge(data)


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def add_sink(sink: Any) -> Any:
    _SCOPES[-1].sinks.append(sink)
    return sink


def remove_sink(sink: Any) -> None:
    with contextlib.suppress(ValueError):
        _SCOPES[-1].sinks.remove(sink)


def emit(event: Dict[str, Any]) -> None:
    scope = _SCOPES[-1]
    if not scope.enabled:
        return
    for sink in scope.sinks:
        sink.emit(event)
