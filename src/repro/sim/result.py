"""Simulation results and per-domain energy accounting.

A :class:`SimulationResult` records everything the experiment harness needs to
build the paper's tables and figures: execution time, total and per-domain energy,
average power, EDP, DVFS-transition statistics, operating-point residency, and the
frequencies the PBM actually granted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import config
from repro.power.energy import EnergyMetrics


@dataclass(frozen=True)
class EngineRunStats:
    """Loop statistics of one ``SimulationEngine.run`` (diagnostics only).

    Exposed as ``SimulationEngine.last_run_stats`` and consumed by the
    ``repro bench`` harness and the parity/regression tests; deliberately
    *not* part of :class:`SimulationResult`, so serialized results (and their
    content-addressed cache entries) are identical no matter which loop
    produced them.

    ``segments`` counts how many stretches of ticks shared one model
    evaluation; ``model_evaluations`` counts the evaluations actually
    performed (``segments - memo_hits`` for the segment loop, one per tick
    for the reference loop).
    """

    ticks: int
    segments: int
    model_evaluations: int
    memo_hits: int
    evaluations: int
    transitions: int

    @property
    def ticks_per_evaluation(self) -> float:
        """Average ticks amortized per model-stack evaluation."""
        if self.model_evaluations == 0:
            return float(self.ticks)
        return self.ticks / self.model_evaluations

    def as_dict(self) -> Dict[str, int]:
        return {
            "ticks": self.ticks,
            "segments": self.segments,
            "model_evaluations": self.model_evaluations,
            "memo_hits": self.memo_hits,
            "evaluations": self.evaluations,
            "transitions": self.transitions,
        }


@dataclass
class DomainEnergyBreakdown:
    """Energy (joules) accumulated per domain over a run."""

    compute: float = 0.0
    io: float = 0.0
    memory: float = 0.0
    platform_fixed: float = 0.0

    def add(self, compute: float, io: float, memory: float, platform_fixed: float) -> None:
        """Accumulate one tick's energy contributions."""
        for name, value in (
            ("compute", compute),
            ("io", io),
            ("memory", memory),
            ("platform_fixed", platform_fixed),
        ):
            if value < 0:
                raise ValueError(f"{name} energy contribution must be non-negative")
        self.compute += compute
        self.io += io
        self.memory += memory
        self.platform_fixed += platform_fixed

    @property
    def total(self) -> float:
        """Total energy (joules)."""
        return self.compute + self.io + self.memory + self.platform_fixed

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary view including the total."""
        return {
            "compute_j": self.compute,
            "io_j": self.io,
            "memory_j": self.memory,
            "platform_fixed_j": self.platform_fixed,
            "total_j": self.total,
        }

    # ------------------------------------------------------------------
    # Serialization (round-trip exact; used by the runtime result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, float]:
        """Raw per-domain fields; ``from_dict`` restores an equal breakdown."""
        return {
            "compute": self.compute,
            "io": self.io,
            "memory": self.memory,
            "platform_fixed": self.platform_fixed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "DomainEnergyBreakdown":
        """Rebuild a breakdown serialized with :meth:`to_dict`."""
        return cls(
            compute=data["compute"],
            io=data["io"],
            memory=data["memory"],
            platform_fixed=data["platform_fixed"],
        )


@dataclass
class SimulationResult:
    """The outcome of running one workload under one policy on one platform."""

    workload: str
    policy: str
    execution_time: float
    energy: DomainEnergyBreakdown
    transitions: int = 0
    transition_time: float = 0.0
    low_point_time: float = 0.0
    evaluation_count: int = 0
    average_cpu_frequency: float = 0.0
    average_gfx_frequency: float = 0.0
    average_dram_frequency: float = 0.0
    achieved_bandwidth_samples: List[float] = field(default_factory=list)
    notes: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.execution_time <= 0:
            raise ValueError("execution time must be positive")
        if self.transitions < 0 or self.transition_time < 0 or self.low_point_time < 0:
            raise ValueError("transition statistics must be non-negative")

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> EnergyMetrics:
        """Energy metrics (average power, EDP, relative comparisons)."""
        return EnergyMetrics(
            energy_joules=self.energy.total,
            execution_time_seconds=self.execution_time,
        )

    @property
    def average_power(self) -> float:
        """Average package power (watts)."""
        return self.metrics.average_power

    @property
    def edp(self) -> float:
        """Energy-delay product (joule-seconds)."""
        return self.metrics.edp

    @property
    def low_point_residency(self) -> float:
        """Fraction of execution time spent at a reduced IO/memory operating point."""
        return min(1.0, self.low_point_time / self.execution_time)

    @property
    def transition_overhead_fraction(self) -> float:
        """Fraction of execution time spent inside DVFS transitions."""
        return self.transition_time / self.execution_time

    @property
    def average_achieved_bandwidth(self) -> float:
        """Average achieved memory bandwidth (bytes/s) over the run."""
        if not self.achieved_bandwidth_samples:
            return 0.0
        return sum(self.achieved_bandwidth_samples) / len(self.achieved_bandwidth_samples)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def performance_improvement_over(self, baseline: "SimulationResult") -> float:
        """Fractional performance improvement over ``baseline`` (0.092 = +9.2 %)."""
        return self.metrics.performance_improvement_over(baseline.metrics)

    def power_reduction_vs(self, baseline: "SimulationResult") -> float:
        """Fractional average-power reduction vs. ``baseline``."""
        return self.metrics.power_reduction_vs(baseline.metrics)

    def energy_reduction_vs(self, baseline: "SimulationResult") -> float:
        """Fractional energy reduction vs. ``baseline``."""
        return self.metrics.energy_reduction_vs(baseline.metrics)

    def edp_improvement_over(self, baseline: "SimulationResult") -> float:
        """Fractional EDP improvement over ``baseline``."""
        return self.metrics.edp_improvement_over(baseline.metrics)

    # ------------------------------------------------------------------
    # Serialization (round-trip exact; used by the runtime result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Every field, verbatim, so ``from_dict`` restores an equal result.

        Unlike :meth:`as_dict` (a flat *summary* with derived metrics for result
        tables), this is a faithful serialization: all floats pass through JSON
        unchanged (``repr`` round-trip), so a cached result is bit-identical to
        the freshly simulated one.
        """
        return {
            "workload": self.workload,
            "policy": self.policy,
            "execution_time": self.execution_time,
            "energy": self.energy.to_dict(),
            "transitions": self.transitions,
            "transition_time": self.transition_time,
            "low_point_time": self.low_point_time,
            "evaluation_count": self.evaluation_count,
            "average_cpu_frequency": self.average_cpu_frequency,
            "average_gfx_frequency": self.average_gfx_frequency,
            "average_dram_frequency": self.average_dram_frequency,
            "achieved_bandwidth_samples": list(self.achieved_bandwidth_samples),
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            policy=data["policy"],
            execution_time=data["execution_time"],
            energy=DomainEnergyBreakdown.from_dict(data["energy"]),
            transitions=data["transitions"],
            transition_time=data["transition_time"],
            low_point_time=data["low_point_time"],
            evaluation_count=data["evaluation_count"],
            average_cpu_frequency=data["average_cpu_frequency"],
            average_gfx_frequency=data["average_gfx_frequency"],
            average_dram_frequency=data["average_dram_frequency"],
            achieved_bandwidth_samples=list(data["achieved_bandwidth_samples"]),
            notes=dict(data["notes"]),
        )

    def as_dict(self) -> dict:
        """Flat summary for result tables."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "time_s": self.execution_time,
            "average_power_w": self.average_power,
            "energy_j": self.energy.total,
            "edp_js": self.edp,
            "transitions": self.transitions,
            "low_point_residency": self.low_point_residency,
            "average_cpu_frequency_ghz": self.average_cpu_frequency / config.GHZ,
            "average_gfx_frequency_mhz": self.average_gfx_frequency / config.MHZ,
            "average_dram_frequency_ghz": self.average_dram_frequency / config.GHZ,
            **{f"note_{key}": value for key, value in self.notes.items()},
        }
