"""Policy interface between the simulation engine and DVFS policies.

A *policy* is whatever decides the operating point of the IO and memory domains
and how much package budget those domains are charged for: the fixed baseline, the
static MD-DVFS setup of Sec. 3, or SysScale itself (``repro.core``).  The engine
calls the policy once per evaluation interval with a :class:`PolicyObservation`
(averaged performance counters plus the static peripheral configuration -- exactly
the inputs Sec. 4.2/4.3 give the PMU firmware) and receives a
:class:`PolicyAction` describing the target IO/memory configuration, the budget to
charge, and the transition cost of getting there.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.perf.counters import CounterSample
from repro.workloads.io_devices import PeripheralConfiguration
from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class StaticDemandInfo:
    """The static (configuration-determined) demand visible to the PMU (Sec. 4.2)."""

    peripherals: PeripheralConfiguration = field(default_factory=PeripheralConfiguration)

    @property
    def bandwidth_demand(self) -> float:
        """Static memory-bandwidth demand in bytes/s."""
        return self.peripherals.static_bandwidth_demand

    @property
    def latency_sensitive(self) -> bool:
        """True when QoS-critical isochronous traffic is configured."""
        return self.peripherals.has_isochronous_traffic


@dataclass(frozen=True)
class PolicyObservation:
    """What the PMU sees at the end of one evaluation interval.

    ``counters`` is the interval-averaged sample (Sec. 4.3).  ``samples``
    records how many 1 ms PMU samples that average covers; the segment-stepping
    engine accumulates them as running sums rather than materialized samples,
    so this count is the only remaining trace of the individual ticks.  The
    default (0) means "unknown" for observations built outside the engine.
    """

    counters: CounterSample
    static_demand: StaticDemandInfo
    time: float
    workload_class: str
    evaluation_interval: float = config.EVALUATION_INTERVAL
    samples: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be non-negative")
        if self.evaluation_interval <= 0:
            raise ValueError("evaluation interval must be positive")
        if self.samples < 0:
            raise ValueError("sample count must be non-negative")


@dataclass(frozen=True)
class PolicyAction:
    """The target IO/memory-domain configuration a policy requests.

    ``io_memory_budget`` is the power the PBM charges against the TDP for the IO
    and memory domains while this action is in force; for the baseline this is the
    fixed worst-case reservation, for SysScale it is the (smaller) provisioned
    power of the selected operating point, which is what frees budget for the
    compute domain (Sec. 4.3).  ``transition_latency`` is the cost of moving to
    this action from a *different* one (the engine charges it only on changes).
    """

    name: str
    dram_frequency: float
    interconnect_frequency: float
    v_sa_scale: float
    v_io_scale: float
    mrc_optimized: bool
    io_memory_budget: float
    transition_latency: float = config.TRANSITION_TOTAL_LATENCY_BUDGET

    def __post_init__(self) -> None:
        if self.dram_frequency <= 0 or self.interconnect_frequency <= 0:
            raise ValueError("frequencies must be positive")
        for scale_name in ("v_sa_scale", "v_io_scale"):
            if not 0 < getattr(self, scale_name) <= 1.5:
                raise ValueError(f"{scale_name} must be in (0, 1.5]")
        if self.io_memory_budget < 0:
            raise ValueError("IO+memory budget must be non-negative")
        if self.transition_latency < 0:
            raise ValueError("transition latency must be non-negative")

    def same_operating_point(self, other: Optional["PolicyAction"]) -> bool:
        """True when ``other`` selects the same IO/memory configuration."""
        if other is None:
            return False
        return (
            abs(self.dram_frequency - other.dram_frequency) < 1e3
            and abs(self.interconnect_frequency - other.interconnect_frequency) < 1e3
            and abs(self.v_sa_scale - other.v_sa_scale) < 1e-9
            and abs(self.v_io_scale - other.v_io_scale) < 1e-9
            and self.mrc_optimized == other.mrc_optimized
        )


class Policy(abc.ABC):
    """Base class for IO/memory-domain DVFS policies."""

    #: Human-readable policy name used in result tables.
    name: str = "policy"

    @abc.abstractmethod
    def reset(self, platform, trace: WorkloadTrace) -> PolicyAction:
        """Prepare for a new run and return the initial action.

        ``platform`` is a :class:`repro.sim.platform.Platform`; the parameter is
        untyped here to keep this module free of upward imports.
        """

    @abc.abstractmethod
    def decide(self, observation: PolicyObservation) -> PolicyAction:
        """Return the action for the next evaluation interval."""

    def notify_transition(self, previous: PolicyAction, new: PolicyAction) -> None:
        """Hook called by the engine after a transition is applied (optional)."""
