"""Platform assembly: SoC description + power / performance / counter models.

A :class:`Platform` bundles everything a policy and the simulation engine need to
reason about one evaluation system: the Skylake (or Broadwell) SoC description, the
compute and memory power models, the memory-controller and phase-performance
models, the performance-counter unit, the MRC SRAM and live register file, and the
power budget manager configured for the platform's TDP.

``build_platform()`` is the convenience entry point the examples, experiments, and
tests use; without an explicit SoC it is spec-driven (a derived
``repro.hw.HardwareSpec`` materialized by ``repro.hw.build``), and
``assemble_platform()`` layers the models onto any SoC description.  Assembly
computes the worst-case IO+memory reservation the *baseline* PBM makes
(Observation 1) directly from the power model so the reservation and the model can
never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.memory.controller import MemoryControllerModel
from repro.memory.ddrio import DdrioModel
from repro.memory.dram import DramDevice
from repro.memory.mrc import MrcRegisterFile, MrcSram, build_mrc_sram_for_bins
from repro.memory.power import MemoryPowerModel
from repro.perf.counters import PerformanceCounterUnit
from repro.perf.latency import MemoryLatencyModel
from repro.perf.model import PhasePerformanceModel
from repro.power.budget import PowerBudgetManager
from repro.power.models import ActivityVector, ComputePowerModel, SoCPowerModel
from repro.soc.domains import SoCState
from repro.soc.skylake import SkylakeSoC


@dataclass
class Platform:
    """One fully assembled evaluation platform."""

    soc: SkylakeSoC
    compute_power: ComputePowerModel
    memory_power: MemoryPowerModel
    soc_power: SoCPowerModel
    controller: MemoryControllerModel
    latency_model: MemoryLatencyModel
    performance_model: PhasePerformanceModel
    counter_unit: PerformanceCounterUnit
    mrc_sram: MrcSram
    mrc_registers: MrcRegisterFile
    pbm: PowerBudgetManager

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tdp(self) -> float:
        """Package thermal design power in watts."""
        return self.soc.tdp

    @property
    def dram(self) -> DramDevice:
        """The attached DRAM device."""
        return self.soc.dram

    def default_state(self) -> SoCState:
        """The high-operating-point boot state of the SoC."""
        return self.soc.default_state()

    def reset_to_boot(self) -> None:
        """Restore every piece of live state a previous run may have mutated.

        The SysScale transition flow moves real platform objects -- the DRAM
        frequency and self-refresh state, the shared rail voltages, the
        interconnect clock and queue, the MRC register file.  Restoring the
        boot state here makes ``SimulationEngine.run`` deterministic regardless
        of what ran on the platform before (results must never depend on run
        order, or caching and parallel execution would change the numbers).
        """
        dram = self.dram
        # Frequency changes are only legal in self-refresh (Fig. 5, step 4
        # precedes step 6), so pass through it on the way back to the top bin.
        dram.in_self_refresh = True
        dram.set_frequency(dram.max_frequency)
        dram.in_self_refresh = False
        self.soc.rails.reset()
        self.soc.interconnect_fabric.reset(
            frequency=self.soc.io_interconnect.high_frequency
        )
        if self.mrc_sram.has_frequency(dram.max_frequency):
            self.mrc_registers.load(self.mrc_sram.load(dram.max_frequency))

    def io_memory_power_at(
        self,
        dram_frequency: float,
        interconnect_frequency: float,
        v_sa_scale: float,
        v_io_scale: float,
        bandwidth: float,
        io_activity: float = 1.0,
        mrc_optimized: bool = True,
    ) -> float:
        """IO + memory domain power (watts) at an arbitrary operating point."""
        mrc = None
        if not mrc_optimized:
            mrc = self.mrc_registers
        breakdown = self.memory_power.breakdown(
            dram_frequency=dram_frequency,
            interconnect_frequency=interconnect_frequency,
            v_sa_scale=v_sa_scale,
            v_io_scale=v_io_scale,
            bandwidth=bandwidth,
            io_activity=io_activity,
            in_self_refresh=False,
            mrc=mrc,
        )
        return breakdown.io_domain + breakdown.memory_domain

    def worst_case_io_memory_power(
        self,
        dram_frequency: Optional[float] = None,
        interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY,
        v_sa_scale: float = 1.0,
        v_io_scale: float = 1.0,
    ) -> float:
        """Worst-case (full-bandwidth, full-IO-activity) IO+memory power at a point.

        The baseline PBM reserves this amount for the high operating point
        regardless of actual demand (Observation 1); SysScale charges the
        corresponding amount for whichever operating point it has selected.
        """
        if dram_frequency is None:
            dram_frequency = self.dram.max_frequency
        ceiling = self.controller.achievable_bandwidth(dram_frequency, None)
        return self.io_memory_power_at(
            dram_frequency=dram_frequency,
            interconnect_frequency=interconnect_frequency,
            v_sa_scale=v_sa_scale,
            v_io_scale=v_io_scale,
            bandwidth=ceiling,
            io_activity=1.0,
            mrc_optimized=True,
        )

    def compute_budget(self, io_memory_allocation: float) -> float:
        """Compute-domain budget when the IO+memory domains are charged ``allocation``."""
        return self.pbm.budgets(io_memory_allocation).compute

    def describe(self) -> dict:
        """Flat summary of the platform for result tables."""
        summary = self.soc.describe()
        summary["worst_case_io_memory_power_w"] = self.worst_case_io_memory_power()
        summary["platform_fixed_power_w"] = self.soc_power.platform_fixed_power
        return summary


def build_platform(
    tdp: float = config.SKYLAKE_DEFAULT_TDP,
    soc: Optional[SkylakeSoC] = None,
    dram: Optional[DramDevice] = None,
    platform_fixed_power: float = config.PLATFORM_FIXED_POWER,
) -> Platform:
    """Assemble a complete evaluation platform.

    Without an explicit ``soc`` this is now a spec-driven constructor: the
    knobs are folded into a derived :class:`~repro.hw.spec.HardwareSpec` and
    materialized through :mod:`repro.hw.build`, so the result is the exact
    platform ``HardwareSpec.build()`` would produce for the same description.
    The explicit-``soc`` path assembles models around the given description
    (hand-built SoCs, modified components) as before.

    Parameters
    ----------
    tdp:
        Package TDP in watts (ignored when an explicit ``soc`` is given).
    soc:
        A pre-built SoC description; defaults to the Skylake M-6Y75 of Table 2.
    dram:
        DRAM device override (e.g. the DDR4 device for the Sec. 7.4 study).
    platform_fixed_power:
        Package power outside the three domains.
    """
    if soc is None:
        # Deferred import: repro.hw.build imports this module for the
        # Platform class and assemble_platform.
        from repro.hw.build import build_platform_from_spec
        from repro.hw.registry import SKYLAKE

        spec = SKYLAKE.derive(tdp=tdp, platform_fixed_power=platform_fixed_power)
        if dram is not None:
            spec = spec.derive(dram=dram)
        return build_platform_from_spec(spec)
    if dram is not None:
        soc.dram = dram
    return assemble_platform(soc, platform_fixed_power=platform_fixed_power)


def assemble_platform(
    soc: SkylakeSoC,
    platform_fixed_power: float = config.PLATFORM_FIXED_POWER,
    *,
    mc_power_high: float = config.V_SA_MC_POWER_HIGH,
    interconnect_power_high: float = config.V_SA_INTERCONNECT_POWER_HIGH,
    io_engines_power_high: float = config.V_SA_IO_ENGINES_POWER_HIGH,
    ddrio_digital_power_high: float = config.DDRIO_DIGITAL_POWER_HIGH,
    dram_background_power_high: float = config.DRAM_BACKGROUND_POWER_HIGH,
    dram_background_frequency_fraction: float = (
        config.DRAM_BACKGROUND_FREQUENCY_SCALED_FRACTION
    ),
    dram_operation_energy_per_byte: float = config.DRAM_OPERATION_ENERGY_PER_BYTE,
    dram_self_refresh_power: float = config.DRAM_SELF_REFRESH_POWER,
) -> Platform:
    """Layer the power/performance/counter models onto an SoC description.

    The keyword coefficients parameterize the memory/IO power model; their
    defaults are the ``repro.config`` calibration constants, so assembling with
    no overrides reproduces the seed platform exactly.  ``repro.hw.build``
    passes a :class:`~repro.hw.spec.HardwareSpec`'s coefficients here, which is
    what makes the memory model part of the declarative hardware description.
    """
    compute_power = ComputePowerModel(
        cpu=soc.cpu,
        gfx=soc.gfx,
        uncore=soc.uncore,
        cpu_curve=soc.cpu_curve,
        gfx_curve=soc.gfx_curve,
    )
    ddrio = DdrioModel(
        digital_power_high=ddrio_digital_power_high,
        reference_frequency=soc.dram.max_frequency,
    )
    memory_power = MemoryPowerModel(
        device=soc.dram,
        ddrio=ddrio,
        mc_power_high=mc_power_high,
        interconnect_power_high=interconnect_power_high,
        io_engines_power_high=io_engines_power_high,
        background_power_high=dram_background_power_high,
        background_frequency_fraction=dram_background_frequency_fraction,
        operation_energy_per_byte=dram_operation_energy_per_byte,
        self_refresh_power=dram_self_refresh_power,
        reference_frequency=soc.dram.max_frequency,
        reference_interconnect_frequency=soc.io_interconnect.high_frequency,
    )
    controller = MemoryControllerModel(device=soc.dram)
    latency_model = MemoryLatencyModel(
        controller=controller,
        reference_dram_frequency=soc.dram.max_frequency,
    )
    performance_model = PhasePerformanceModel(
        latency_model=latency_model,
        reference_cpu_frequency=soc.cpu.base_frequency,
        reference_gfx_frequency=soc.gfx.base_frequency,
    )
    counter_unit = PerformanceCounterUnit(latency_model=latency_model)

    timing_sets = [soc.dram.timings(frequency) for frequency in soc.dram.frequency_bins]
    mrc_sram, trained = build_mrc_sram_for_bins(timing_sets)
    boot_configuration = trained[soc.dram.max_frequency]
    mrc_registers = MrcRegisterFile(loaded=boot_configuration)

    pbm = PowerBudgetManager(
        tdp=soc.tdp,
        compute_model=compute_power,
        cpu_pstates=soc.cpu_pstates,
        gfx_pstates=soc.gfx_pstates,
        platform_fixed_power=platform_fixed_power,
    )
    soc_power = SoCPowerModel(
        compute=compute_power,
        memory=memory_power,
        platform_fixed_power=platform_fixed_power,
        mrc=mrc_registers,
    )

    platform = Platform(
        soc=soc,
        compute_power=compute_power,
        memory_power=memory_power,
        soc_power=soc_power,
        controller=controller,
        latency_model=latency_model,
        performance_model=performance_model,
        counter_unit=counter_unit,
        mrc_sram=mrc_sram,
        mrc_registers=mrc_registers,
        pbm=pbm,
    )
    # The baseline reservation is the worst-case power of the IO and memory
    # domains at the high operating point (Observation 1).
    platform.pbm.worst_case_io_memory_power = platform.worst_case_io_memory_power()
    return platform


def activity_for_phase(phase, achieved_bandwidth: float) -> ActivityVector:
    """Build the power-model activity vector for a phase and its achieved traffic."""
    return ActivityVector(
        cpu_activity=phase.cpu_activity,
        gfx_activity=phase.gfx_activity,
        io_activity=phase.io_activity,
        memory_bandwidth=achieved_bandwidth,
        active_cores=phase.active_cores,
    )
