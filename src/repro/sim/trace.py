"""The engine trace recorder: per-segment timelines as inspectable artifacts.

The segment-stepping loop evaluates the model stack once per ``(phase,
action, MRC)`` segment and replays it tick-by-tick.  When tracing is enabled
(``SimulationConfig(trace_segments=True)``), the engine hands each segment to
an :class:`EngineTraceRecorder`, which captures exactly what SysScale's
figures are drawn from: the phase, the operating point (DRAM/interconnect
frequency, rail scales, MRC register set), the per-domain power, the achieved
bandwidth, and whether the segment-model memo hit.  Operating-point
transitions are recorded with their latencies.

Recording happens once per *segment*, never per tick, so a traced run adds a
handful of attribute stores per model evaluation -- the tight replay loop is
untouched.  The records are deliberately *derived* observations: nothing the
recorder touches feeds back into the simulation, so results are bit-identical
with tracing on or off.

The recorder lives in the sim layer on purpose: it is plain data collection
with zero dependencies, so the engine can trace without importing the
telemetry stack.  Publication is inverted -- :mod:`repro.runtime.jobs` turns
tracing on when ambient ``repro.obs`` tracing is requested and emits the
recorded events (stamped with the job hash) to the active sinks.  The sim
layer therefore never imports ``repro.obs``, which is what keeps telemetry
*structurally* unable to perturb results (``repro lint`` enforces it).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

__all__ = ["EngineTraceRecorder", "SegmentRecord", "TransitionRecord"]


class SegmentRecord:
    """One replayed segment: when, for how long, and under what state."""

    __slots__ = (
        "time",
        "duration",
        "ticks",
        "phase",
        "memo_hit",
        "dram_frequency",
        "interconnect_frequency",
        "cpu_frequency",
        "gfx_frequency",
        "v_sa_scale",
        "v_io_scale",
        "mrc_optimized",
        "low_point",
        "bandwidth",
        "compute_power",
        "io_power",
        "memory_power",
        "platform_power",
    )

    def __init__(
        self,
        time: float,
        duration: float,
        ticks: int,
        phase: str,
        memo_hit: bool,
        dram_frequency: float,
        interconnect_frequency: float,
        cpu_frequency: float,
        gfx_frequency: float,
        v_sa_scale: float,
        v_io_scale: float,
        mrc_optimized: bool,
        low_point: bool,
        bandwidth: float,
        compute_power: float,
        io_power: float,
        memory_power: float,
        platform_power: float,
    ) -> None:
        self.time = time
        self.duration = duration
        self.ticks = ticks
        self.phase = phase
        self.memo_hit = memo_hit
        self.dram_frequency = dram_frequency
        self.interconnect_frequency = interconnect_frequency
        self.cpu_frequency = cpu_frequency
        self.gfx_frequency = gfx_frequency
        self.v_sa_scale = v_sa_scale
        self.v_io_scale = v_io_scale
        self.mrc_optimized = mrc_optimized
        self.low_point = low_point
        self.bandwidth = bandwidth
        self.compute_power = compute_power
        self.io_power = io_power
        self.memory_power = memory_power
        self.platform_power = platform_power

    def to_event(self) -> Dict[str, Any]:
        return {
            "type": "engine.segment",
            "t": self.time,
            "duration_s": self.duration,
            "ticks": self.ticks,
            "phase": self.phase,
            "memo_hit": self.memo_hit,
            "dram_frequency": self.dram_frequency,
            "interconnect_frequency": self.interconnect_frequency,
            "cpu_frequency": self.cpu_frequency,
            "gfx_frequency": self.gfx_frequency,
            "v_sa_scale": self.v_sa_scale,
            "v_io_scale": self.v_io_scale,
            "mrc_optimized": self.mrc_optimized,
            "low_point": self.low_point,
            "bandwidth": self.bandwidth,
            "compute_power": self.compute_power,
            "io_power": self.io_power,
            "memory_power": self.memory_power,
            "platform_power": self.platform_power,
        }


class TransitionRecord:
    """One operating-point transition and its charged latency."""

    __slots__ = ("time", "latency", "from_dram_frequency", "to_dram_frequency")

    def __init__(
        self,
        time: float,
        latency: float,
        from_dram_frequency: float,
        to_dram_frequency: float,
    ) -> None:
        self.time = time
        self.latency = latency
        self.from_dram_frequency = from_dram_frequency
        self.to_dram_frequency = to_dram_frequency

    def to_event(self) -> Dict[str, Any]:
        return {
            "type": "engine.transition",
            "t": self.time,
            "latency_s": self.latency,
            "from_dram_frequency": self.from_dram_frequency,
            "to_dram_frequency": self.to_dram_frequency,
        }


class EngineTraceRecorder:
    """Accumulates segment/transition records for one engine run.

    Only the segment-stepping loop records (the reference loop has no
    segments to speak of -- its recorder stays empty by design).
    """

    def __init__(self, workload: str = "", policy: str = "") -> None:
        self.workload = workload
        self.policy = policy
        self.segments: List[SegmentRecord] = []
        self.transitions: List[TransitionRecord] = []

    # ------------------------------------------------------------------
    # Recording (called by the engine, once per segment/transition)
    # ------------------------------------------------------------------
    def record_segment(
        self, time: float, ticks: int, tick: float, phase: str, memo_hit: bool, segment: Any
    ) -> None:
        """Capture one replayed segment from the engine's ``_SegmentModel``."""
        state = segment.state
        inc_compute, inc_io, inc_memory, inc_platform = segment.energy_ticks
        self.segments.append(
            SegmentRecord(
                time=time,
                duration=ticks * tick,
                ticks=ticks,
                phase=phase,
                memo_hit=memo_hit,
                dram_frequency=state.dram_frequency,
                interconnect_frequency=state.interconnect_frequency,
                cpu_frequency=state.cpu_frequency,
                gfx_frequency=state.gfx_frequency,
                v_sa_scale=state.v_sa_scale,
                v_io_scale=state.v_io_scale,
                mrc_optimized=state.mrc_optimized,
                low_point=segment.low_point,
                bandwidth=segment.bandwidth,
                compute_power=inc_compute / tick,
                io_power=inc_io / tick,
                memory_power=inc_memory / tick,
                platform_power=inc_platform / tick,
            )
        )

    def record_transition(
        self,
        time: float,
        latency: float,
        from_dram_frequency: float,
        to_dram_frequency: float,
    ) -> None:
        self.transitions.append(
            TransitionRecord(time, latency, from_dram_frequency, to_dram_frequency)
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """Aggregate timeline statistics (residencies, energy, memo rate)."""
        ticks = sum(s.ticks for s in self.segments)
        memo_hits = sum(1 for s in self.segments if s.memo_hit)
        simulated = sum(s.duration for s in self.segments)
        energy = {"compute": 0.0, "io": 0.0, "memory": 0.0, "platform": 0.0}
        dram_residency: Dict[str, float] = {}
        phase_residency: Dict[str, float] = {}
        for s in self.segments:
            energy["compute"] += s.compute_power * s.duration
            energy["io"] += s.io_power * s.duration
            energy["memory"] += s.memory_power * s.duration
            energy["platform"] += s.platform_power * s.duration
            dram_key = f"{s.dram_frequency / 1e9:.3f}GHz"
            dram_residency[dram_key] = dram_residency.get(dram_key, 0.0) + s.duration
            phase_residency[s.phase] = phase_residency.get(s.phase, 0.0) + s.duration
        return {
            "workload": self.workload,
            "policy": self.policy,
            "segments": len(self.segments),
            "ticks": ticks,
            "memo_hits": memo_hits,
            "memo_hit_rate": memo_hits / len(self.segments) if self.segments else 0.0,
            "transitions": len(self.transitions),
            "simulated_s": simulated,
            "energy_j": energy,
            "dram_residency_s": dict(sorted(dram_residency.items())),
            "phase_residency_s": dict(sorted(phase_residency.items())),
        }

    def events(self, **extra: Any) -> Iterator[Dict[str, Any]]:
        """The run as an event stream: segments, transitions, then a
        ``engine.run`` summary event.  ``extra`` fields (job label/hash) are
        stamped onto every event."""
        for record in self.segments:
            event = record.to_event()
            event.update(extra)
            yield event
        for transition in self.transitions:
            event = transition.to_event()
            event.update(extra)
            yield event
        summary = self.summary()
        summary["type"] = "engine.run"
        summary.update(extra)
        yield summary
