"""Trace-driven simulation engine.

The engine advances a workload trace in fixed ticks (1 ms, the PMU's counter
sampling interval), computing for every tick:

* the SoC state implied by the current policy action (IO/memory operating point)
  and by the compute-domain plan the PBM derives from the resulting budget;
* the phase slowdown and achieved memory bandwidth under that state;
* the per-domain power, split by package C-state residency for battery-life
  workloads (Sec. 7.3);
* the synthesised performance-counter sample.

Every evaluation interval (30 ms, Sec. 4.3) the averaged counters and the static
peripheral configuration are handed to the policy; if the policy changes the
operating point the engine charges the transition latency (Sec. 5) and reloads the
MRC registers when the policy asks for optimized values (Fig. 5, step 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import config
from repro.perf.counters import CounterSample
from repro.power.budget import ComputePlan
from repro.power.cstates import CState, IDLE_PACKAGE_POWER
from repro.power.models import ActivityVector
from repro.sim.platform import Platform, activity_for_phase
from repro.sim.policy import Policy, PolicyAction, PolicyObservation, StaticDemandInfo
from repro.sim.result import DomainEnergyBreakdown, SimulationResult
from repro.soc.domains import SoCState
from repro.workloads.io_devices import PeripheralConfiguration
from repro.workloads.trace import Phase, WorkloadClass, WorkloadTrace


@dataclass(frozen=True)
class SimulationConfig:
    """Engine parameters."""

    tick: float = config.COUNTER_SAMPLING_INTERVAL
    evaluation_interval: float = config.EVALUATION_INTERVAL
    max_simulated_time: float = 120.0
    record_bandwidth_samples: bool = False

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.evaluation_interval < self.tick:
            raise ValueError("evaluation interval must be at least one tick")
        if self.max_simulated_time <= 0:
            raise ValueError("maximum simulated time must be positive")


@dataclass
class _RunState:
    """Mutable bookkeeping for one run (internal)."""

    time: float = 0.0
    phase_index: int = 0
    work_done_in_phase: float = 0.0
    energy: DomainEnergyBreakdown = field(default_factory=DomainEnergyBreakdown)
    transitions: int = 0
    transition_time: float = 0.0
    low_point_time: float = 0.0
    evaluation_count: int = 0
    cpu_frequency_time: float = 0.0
    gfx_frequency_time: float = 0.0
    dram_frequency_time: float = 0.0
    interval_samples: List[CounterSample] = field(default_factory=list)
    bandwidth_samples: List[float] = field(default_factory=list)


class SimulationEngine:
    """Runs workload traces under DVFS policies on a modelled platform."""

    def __init__(self, platform: Platform, sim_config: Optional[SimulationConfig] = None):
        self.platform = platform
        self.config = sim_config or SimulationConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkloadTrace,
        policy: Policy,
        peripherals: Optional[PeripheralConfiguration] = None,
    ) -> SimulationResult:
        """Simulate ``trace`` under ``policy`` and return the result."""
        if peripherals is None:
            peripherals = PeripheralConfiguration()
        static_demand = StaticDemandInfo(peripherals=peripherals)

        # Each run starts from the boot state: MRC registers trained for the
        # default (highest) DRAM frequency, DRAM at its top bin, rails at
        # nominal voltage, interconnect running at its high clock.  Without
        # this, state mutated by a previous run's transition flow would leak
        # into this one and results would depend on run order.
        self.platform.reset_to_boot()

        action = policy.reset(self.platform, trace)
        self._apply_mrc(action)
        run = _RunState()
        last_evaluation_time = 0.0

        high_dram_frequency = self.platform.dram.max_frequency
        phases = trace.phases
        tick = self.config.tick

        while run.phase_index < len(phases) and run.time < self.config.max_simulated_time:
            phase = phases[run.phase_index]
            state, plan = self._build_state(trace, phase, action)
            mrc = self._effective_mrc(action)

            slowdown = self.platform.performance_model.slowdown(phase, state, mrc)
            activity = activity_for_phase(phase, slowdown.achieved_bandwidth)

            # --- energy ---------------------------------------------------
            self._accumulate_energy(run, trace, phase, state, activity, tick)

            # --- counters --------------------------------------------------
            run.interval_samples.append(
                self.platform.counter_unit.sample(phase, state, mrc)
            )
            if self.config.record_bandwidth_samples:
                run.bandwidth_samples.append(slowdown.achieved_bandwidth)

            # --- statistics -------------------------------------------------
            run.cpu_frequency_time += state.cpu_frequency * tick
            run.gfx_frequency_time += state.gfx_frequency * tick
            run.dram_frequency_time += state.dram_frequency * tick
            if state.dram_frequency < high_dram_frequency - 1e3:
                run.low_point_time += tick

            # --- progress ---------------------------------------------------
            run.time += tick
            if trace.workload_class is WorkloadClass.BATTERY_LIFE:
                # Fixed performance demand: the trace advances in wall-clock time.
                run.work_done_in_phase += tick
            else:
                run.work_done_in_phase += tick / slowdown.total
            if run.work_done_in_phase >= phase.duration - 1e-12:
                run.phase_index += 1
                run.work_done_in_phase = 0.0

            # --- policy evaluation ------------------------------------------
            if run.time - last_evaluation_time >= self.config.evaluation_interval - 1e-12:
                last_evaluation_time = run.time
                run.evaluation_count += 1
                observation = PolicyObservation(
                    counters=CounterSample.average(run.interval_samples),
                    static_demand=static_demand,
                    time=run.time,
                    workload_class=trace.workload_class.value,
                    evaluation_interval=self.config.evaluation_interval,
                )
                run.interval_samples = []
                new_action = policy.decide(observation)
                if not new_action.same_operating_point(action):
                    self._charge_transition(run, new_action, state, activity)
                    policy.notify_transition(action, new_action)
                    self._apply_mrc(new_action)
                action = new_action

        return self._build_result(trace, policy, run)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _build_state(
        self, trace: WorkloadTrace, phase: Phase, action: PolicyAction
    ):
        """SoC state for the current tick: IO/memory from the action, compute from the PBM."""
        budgets = self.platform.pbm.budgets(action.io_memory_budget)
        activity_hint = ActivityVector(
            cpu_activity=phase.cpu_activity,
            gfx_activity=phase.gfx_activity,
            io_activity=phase.io_activity,
            memory_bandwidth=phase.memory_bandwidth_demand,
            active_cores=phase.active_cores,
        )
        plan: ComputePlan = self.platform.pbm.plan(
            budgets.compute,
            activity_hint,
            graphics_centric=trace.is_graphics_centric,
            fixed_performance=trace.has_fixed_performance_demand,
        )
        state = SoCState(
            cpu_frequency=plan.cpu_state.frequency,
            gfx_frequency=plan.gfx_state.frequency,
            dram_frequency=action.dram_frequency,
            interconnect_frequency=action.interconnect_frequency,
            v_sa_scale=action.v_sa_scale,
            v_io_scale=action.v_io_scale,
            v_core=plan.cpu_state.voltage,
            v_gfx=plan.gfx_state.voltage,
            mrc_optimized=action.mrc_optimized
            or self.platform.mrc_registers.is_optimized_for(action.dram_frequency),
            dram_in_self_refresh=False,
            active_cores=phase.active_cores,
        )
        return state, plan

    def _effective_mrc(self, action: PolicyAction):
        """The MRC register file to hand to the performance/power models.

        The register file is a live platform object; whether its contents match
        the current DRAM frequency determines the Fig. 4 penalties.
        """
        return self.platform.mrc_registers

    def _apply_mrc(self, action: PolicyAction) -> None:
        """Load the optimized register set for the action's DRAM frequency if requested."""
        if action.mrc_optimized and self.platform.mrc_sram.has_frequency(action.dram_frequency):
            self.platform.mrc_registers.load(
                self.platform.mrc_sram.load(action.dram_frequency)
            )

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def _accumulate_energy(
        self,
        run: _RunState,
        trace: WorkloadTrace,
        phase: Phase,
        state: SoCState,
        activity: ActivityVector,
        tick: float,
    ) -> None:
        if trace.workload_class is WorkloadClass.BATTERY_LIFE:
            self._accumulate_battery_life_energy(run, phase, state, activity, tick)
            return
        breakdown = self.platform.soc_power.breakdown(state, activity)
        run.energy.add(
            compute=breakdown.compute_domain * tick,
            io=breakdown.io_domain * tick,
            memory=breakdown.memory_domain * tick,
            platform_fixed=breakdown.platform_fixed * tick,
        )

    def _accumulate_battery_life_energy(
        self,
        run: _RunState,
        phase: Phase,
        state: SoCState,
        activity: ActivityVector,
        tick: float,
    ) -> None:
        """Residency-weighted energy for battery-life workloads (Sec. 7.3).

        The phase's C-state residency profile is re-scaled when the active work
        runs slower than at the reference configuration (fixed performance demand
        means slower hardware must stay active longer).
        """
        slowdown = self.platform.performance_model.slowdown(
            phase, state, self.platform.mrc_registers
        )
        residency = phase.residency
        if slowdown.total > 1.0 and residency.active_fraction < 1.0:
            new_active = min(1.0, residency.active_fraction * slowdown.total)
            residency = residency.scaled_active(new_active)

        # C0: fully active.
        c0 = residency.fraction(CState.C0)
        active_breakdown = self.platform.soc_power.breakdown(state, activity)

        # C2: compute idle, DRAM active, only IO agents (display/ISP) generate traffic.
        c2 = residency.fraction(CState.C2)
        c2_memory_io = self.platform.memory_power.breakdown(
            dram_frequency=state.dram_frequency,
            interconnect_frequency=state.interconnect_frequency,
            v_sa_scale=state.v_sa_scale,
            v_io_scale=state.v_io_scale,
            bandwidth=phase.io_bandwidth_demand,
            io_activity=phase.io_activity,
            in_self_refresh=False,
            mrc=self.platform.mrc_registers,
        )

        # Deep idle states (C6/C7/C8): the system agent and DDRIO are power gated,
        # DRAM sits in self-refresh on VDDQ.  Only the self-refresh current and a
        # small always-on residual remain, independent of the selected operating
        # point -- SysScale only matters while DRAM is active (Sec. 7.3).
        deep_states = [
            (cstate, residency.fraction(cstate))
            for cstate in (CState.C6, CState.C7, CState.C8)
            if residency.fraction(cstate) > 0
        ]
        deep_fraction = sum(fraction for _, fraction in deep_states)
        deep_memory_power = self.platform.memory_power.self_refresh_power + 0.01
        deep_io_power = 0.01

        compute_energy = c0 * active_breakdown.compute_domain * tick
        compute_energy += c2 * IDLE_PACKAGE_POWER[CState.C2] * tick
        for cstate, fraction in deep_states:
            compute_energy += fraction * IDLE_PACKAGE_POWER[cstate] * tick

        io_energy = (
            c0 * active_breakdown.io_domain
            + c2 * c2_memory_io.io_domain
            + deep_fraction * deep_io_power
        ) * tick
        memory_energy = (
            c0 * active_breakdown.memory_domain
            + c2 * c2_memory_io.memory_domain
            + deep_fraction * deep_memory_power
        ) * tick
        platform_energy = active_breakdown.platform_fixed * tick

        run.energy.add(
            compute=compute_energy,
            io=io_energy,
            memory=memory_energy,
            platform_fixed=platform_energy,
        )

    # ------------------------------------------------------------------
    # Transitions and results
    # ------------------------------------------------------------------
    def _charge_transition(
        self,
        run: _RunState,
        new_action: PolicyAction,
        state: SoCState,
        activity: ActivityVector,
    ) -> None:
        """Charge the latency and energy of one operating-point transition."""
        latency = new_action.transition_latency
        run.transitions += 1
        run.transition_time += latency
        run.time += latency
        power = self.platform.soc_power.breakdown(state, activity)
        run.energy.add(
            compute=power.compute_domain * latency,
            io=power.io_domain * latency,
            memory=power.memory_domain * latency,
            platform_fixed=power.platform_fixed * latency,
        )

    def _build_result(
        self, trace: WorkloadTrace, policy: Policy, run: _RunState
    ) -> SimulationResult:
        time = max(run.time, self.config.tick)
        return SimulationResult(
            workload=trace.name,
            policy=policy.name,
            execution_time=time,
            energy=run.energy,
            transitions=run.transitions,
            transition_time=run.transition_time,
            low_point_time=run.low_point_time,
            evaluation_count=run.evaluation_count,
            average_cpu_frequency=run.cpu_frequency_time / time,
            average_gfx_frequency=run.gfx_frequency_time / time,
            average_dram_frequency=run.dram_frequency_time / time,
            achieved_bandwidth_samples=run.bandwidth_samples,
        )
