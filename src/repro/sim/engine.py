"""Trace-driven simulation engine.

The engine advances a workload trace in fixed ticks (1 ms, the PMU's counter
sampling interval), computing for every tick:

* the SoC state implied by the current policy action (IO/memory operating point)
  and by the compute-domain plan the PBM derives from the resulting budget;
* the phase slowdown and achieved memory bandwidth under that state;
* the per-domain power, split by package C-state residency for battery-life
  workloads (Sec. 7.3);
* the synthesised performance-counter sample.

Every evaluation interval (30 ms, Sec. 4.3) the averaged counters and the static
peripheral configuration are handed to the policy; if the policy changes the
operating point the engine charges the transition latency (Sec. 5) and reloads the
MRC registers when the policy asks for optimized values (Fig. 5, step 5).

Segment stepping
----------------

Every per-tick quantity above is a pure function of ``(phase, action, MRC
register state)`` -- it only changes at phase boundaries, policy evaluations,
and MRC reloads.  The default loop therefore advances the trace in *segments*:
it evaluates the model stack once per segment (memoized by ``(phase
characteristics, operating point, MRC register set)``, so recurring segments --
Markov scenarios revisit phases constantly -- skip even that), then replays the
seed engine's per-tick additions in a tight arithmetic-only inner loop.

The bit-exactness strategy is *replay, not algebra*: the seed loop adds the
same per-tick increment to each accumulator on every tick of a segment, and
floating-point addition is deterministic, so performing the identical sequence
of additions on the identical increments yields identical bits -- no
``n * increment`` shortcuts are taken anywhere (an ``n``-fold product is not
bit-equal to an ``n``-fold sum).  Counter averaging keeps running sums per
counter instead of a per-interval ``List[CounterSample]``; the sums perform the
same ordered additions ``CounterSample.average`` would, so the averages match
bit-for-bit.  ``SimulationConfig(reference_loop=True)`` selects the seed
per-tick loop, which is kept verbatim as the arbiter for the parity suite
(``tests/test_engine_parity.py``) and the ``repro bench`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.perf.counters import CounterName, CounterSample
from repro.power.budget import ComputePlan
from repro.power.cstates import CState, IDLE_PACKAGE_POWER
from repro.power.models import ActivityVector
from repro.sim.platform import Platform, activity_for_phase
from repro.sim.policy import Policy, PolicyAction, PolicyObservation, StaticDemandInfo
from repro.sim.result import DomainEnergyBreakdown, EngineRunStats, SimulationResult
from repro.sim.trace import EngineTraceRecorder
from repro.soc.domains import SoCState
from repro.workloads.io_devices import PeripheralConfiguration
from repro.workloads.trace import Phase, WorkloadClass, WorkloadTrace


@dataclass(frozen=True)
class SimulationConfig:
    """Engine parameters.

    ``reference_loop`` selects the seed per-tick loop (model stack evaluated
    every tick) instead of the segment-stepping loop.  Both produce
    bit-identical results; the reference loop exists as the parity arbiter and
    the baseline the ``repro bench`` harness measures speedups against.

    ``trace_segments`` attaches an :class:`~repro.sim.trace.EngineTraceRecorder`
    to each run (exposed as ``engine.last_run_trace``) capturing the
    per-segment timeline.  Tracing is pure observation -- results are
    bit-identical either way -- and is deliberately *not* part of
    ``SimSpec``/job hashing: telemetry never contributes to job identity.
    The engine consults only this flag; when ambient ``obs`` tracing is on,
    the runtime (:func:`repro.runtime.jobs.execute_job_with_stats`) flips it
    before building the engine, so the sim layer never imports telemetry.
    """

    tick: float = config.COUNTER_SAMPLING_INTERVAL
    evaluation_interval: float = config.EVALUATION_INTERVAL
    max_simulated_time: float = 120.0
    record_bandwidth_samples: bool = False
    reference_loop: bool = False
    trace_segments: bool = False

    def __post_init__(self) -> None:
        if self.tick <= 0:
            raise ValueError("tick must be positive")
        if self.evaluation_interval < self.tick:
            raise ValueError("evaluation interval must be at least one tick")
        if self.max_simulated_time <= 0:
            raise ValueError("maximum simulated time must be positive")


@dataclass
class _RunState:
    """Mutable bookkeeping for one run (internal)."""

    time: float = 0.0
    phase_index: int = 0
    work_done_in_phase: float = 0.0
    energy: DomainEnergyBreakdown = field(default_factory=DomainEnergyBreakdown)
    transitions: int = 0
    transition_time: float = 0.0
    low_point_time: float = 0.0
    evaluation_count: int = 0
    cpu_frequency_time: float = 0.0
    gfx_frequency_time: float = 0.0
    dram_frequency_time: float = 0.0
    interval_samples: List[CounterSample] = field(default_factory=list)
    bandwidth_samples: List[float] = field(default_factory=list)


class _SegmentModel:
    """The model stack's output for one ``(phase, action, MRC)`` segment.

    Everything the inner loop adds per tick, plus the state/power the engine
    needs should a transition be charged while this segment is current.
    """

    __slots__ = (
        "state",
        "activity",
        "work_tick",
        "energy_ticks",
        "counter_values",
        "sample_interval",
        "bandwidth",
        "frequency_ticks",
        "low_point",
    )

    def __init__(
        self,
        state: SoCState,
        activity: ActivityVector,
        work_tick: float,
        energy_ticks: Tuple[float, float, float, float],
        counter_values: Tuple[float, float, float, float],
        sample_interval: float,
        bandwidth: float,
        frequency_ticks: Tuple[float, float, float],
        low_point: bool,
    ) -> None:
        self.state = state
        self.activity = activity
        self.work_tick = work_tick
        self.energy_ticks = energy_ticks
        self.counter_values = counter_values
        self.sample_interval = sample_interval
        self.bandwidth = bandwidth
        self.frequency_ticks = frequency_ticks
        self.low_point = low_point


def _phase_model_key(phase: Phase) -> tuple:
    """The phase characteristics the model stack actually consumes.

    Deliberately excludes ``name`` and ``duration``: two Markov emissions of
    the same underlying state with different dwell times share one model
    evaluation (duration only matters to the boundary check, which the inner
    loop handles).
    """
    return (
        phase.compute_fraction,
        phase.gfx_fraction,
        phase.memory_latency_fraction,
        phase.memory_bandwidth_fraction,
        phase.io_fraction,
        phase.other_fraction,
        phase.cpu_bandwidth_demand,
        phase.gfx_bandwidth_demand,
        phase.io_bandwidth_demand,
        phase.cpu_activity,
        phase.gfx_activity,
        phase.io_activity,
        phase.active_cores,
        tuple(
            sorted(
                (state.value, fraction)
                for state, fraction in phase.residency.residencies.items()
            )
        ),
    )


def _action_key(action: PolicyAction) -> tuple:
    """The action fields that reach the model stack (identity, not tolerance).

    ``same_operating_point`` compares with tolerances to decide whether a
    *transition* is charged; the memo key uses exact values because even a
    same-point action with a different ``io_memory_budget`` changes the PBM
    plan and therefore the per-tick numbers.
    """
    return (
        action.dram_frequency,
        action.interconnect_frequency,
        action.v_sa_scale,
        action.v_io_scale,
        action.mrc_optimized,
        action.io_memory_budget,
    )


class SimulationEngine:
    """Runs workload traces under DVFS policies on a modelled platform."""

    def __init__(self, platform: Platform, sim_config: Optional[SimulationConfig] = None):
        self.platform = platform
        self.config = sim_config or SimulationConfig()
        #: Loop statistics of the most recent :meth:`run` (diagnostics and the
        #: bench harness; not part of the simulation result).
        self.last_run_stats: Optional[EngineRunStats] = None
        #: Segment timeline of the most recent :meth:`run` when tracing was
        #: requested (``trace_segments``); ``None`` otherwise.  Only the
        #: segment loop records -- a reference-loop run leaves the recorder
        #: empty.
        self.last_run_trace: Optional[EngineTraceRecorder] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        trace: WorkloadTrace,
        policy: Policy,
        peripherals: Optional[PeripheralConfiguration] = None,
    ) -> SimulationResult:
        """Simulate ``trace`` under ``policy`` and return the result."""
        if peripherals is None:
            peripherals = PeripheralConfiguration()
        static_demand = StaticDemandInfo(peripherals=peripherals)

        # Each run starts from the boot state: MRC registers trained for the
        # default (highest) DRAM frequency, DRAM at its top bin, rails at
        # nominal voltage, interconnect running at its high clock.  Without
        # this, state mutated by a previous run's transition flow would leak
        # into this one and results would depend on run order.
        self.platform.reset_to_boot()

        action = policy.reset(self.platform, trace)
        self._apply_mrc(action)
        run = _RunState()

        recorder: Optional[EngineTraceRecorder] = None
        if self.config.trace_segments:
            recorder = EngineTraceRecorder(workload=trace.name, policy=policy.name)
        self.last_run_trace = recorder

        if self.config.reference_loop:
            self._run_reference(trace, policy, static_demand, run, action)
        else:
            self._run_segments(trace, policy, static_demand, run, action, recorder)
        return self._build_result(trace, policy, run)

    # ------------------------------------------------------------------
    # Segment-stepping loop (default)
    # ------------------------------------------------------------------
    def _run_segments(
        self,
        trace: WorkloadTrace,
        policy: Policy,
        static_demand: StaticDemandInfo,
        run: _RunState,
        action: PolicyAction,
        recorder: Optional[EngineTraceRecorder] = None,
    ) -> None:
        sim = self.config
        tick = sim.tick
        max_time = sim.max_simulated_time
        evaluation_threshold = sim.evaluation_interval - 1e-12
        record_bandwidth = sim.record_bandwidth_samples
        phases = trace.phases
        phase_count = len(phases)
        workload_class = trace.workload_class.value
        mrc_registers = self.platform.mrc_registers

        memo: Dict[tuple, _SegmentModel] = {}
        phase_keys: Dict[int, tuple] = {}
        counter_names = tuple(CounterName)

        # Locals mirror the _RunState accumulators; every addition below
        # replays the exact sequence of float additions the reference loop
        # performs, so the final values are bit-identical.
        time_now = 0.0
        last_evaluation_time = 0.0
        phase_index = 0
        work = 0.0
        energy_compute = energy_io = energy_memory = energy_platform = 0.0
        cpu_time = gfx_time = dram_time = low_point_time = 0.0
        sum_0 = sum_1 = sum_2 = sum_3 = 0.0
        samples = 0
        sample_interval = 0.0
        ticks_total = 0
        segments = 0
        model_evaluations = 0
        memo_hits = 0

        while phase_index < phase_count and time_now < max_time:
            phase = phases[phase_index]
            phase_id = id(phase)
            phase_key = phase_keys.get(phase_id)
            if phase_key is None:
                phase_key = _phase_model_key(phase)
                phase_keys[phase_id] = phase_key
            key = (phase_key, _action_key(action), id(mrc_registers.loaded))
            segment = memo.get(key)
            memo_hit = segment is not None
            if memo_hit:
                memo_hits += 1
            else:
                segment = self._evaluate_segment(trace, phase, action)
                memo[key] = segment
                model_evaluations += 1
            segments += 1
            segment_start = time_now

            inc_compute, inc_io, inc_memory, inc_platform = segment.energy_ticks
            value_0, value_1, value_2, value_3 = segment.counter_values
            cpu_inc, gfx_inc, dram_inc = segment.frequency_ticks
            work_tick = segment.work_tick
            low_point = segment.low_point
            duration_threshold = phase.duration - 1e-12
            if samples == 0:
                sample_interval = segment.sample_interval
            phase_done = False
            evaluation_due = False
            ticks = 0

            # The tight loop: pure float additions and comparisons, no calls.
            while True:
                energy_compute += inc_compute
                energy_io += inc_io
                energy_memory += inc_memory
                energy_platform += inc_platform
                sum_0 += value_0
                sum_1 += value_1
                sum_2 += value_2
                sum_3 += value_3
                samples += 1
                cpu_time += cpu_inc
                gfx_time += gfx_inc
                dram_time += dram_inc
                if low_point:
                    low_point_time += tick
                time_now += tick
                work += work_tick
                ticks += 1
                if work >= duration_threshold:
                    phase_done = True
                if time_now - last_evaluation_time >= evaluation_threshold:
                    evaluation_due = True
                if phase_done or evaluation_due or time_now >= max_time:
                    break

            ticks_total += ticks
            if recorder is not None:
                recorder.record_segment(
                    time=segment_start,
                    ticks=ticks,
                    tick=tick,
                    phase=phase.name,
                    memo_hit=memo_hit,
                    segment=segment,
                )
            if record_bandwidth:
                run.bandwidth_samples.extend([segment.bandwidth] * ticks)
            if phase_done:
                phase_index += 1
                work = 0.0
            if evaluation_due:
                last_evaluation_time = time_now
                run.evaluation_count += 1
                observation = PolicyObservation(
                    counters=CounterSample.from_sums(
                        counter_names,
                        (sum_0, sum_1, sum_2, sum_3),
                        samples,
                        sample_interval,
                    ),
                    static_demand=static_demand,
                    time=time_now,
                    workload_class=workload_class,
                    evaluation_interval=sim.evaluation_interval,
                    samples=samples,
                )
                sum_0 = sum_1 = sum_2 = sum_3 = 0.0
                samples = 0
                new_action = policy.decide(observation)
                if not new_action.same_operating_point(action):
                    latency = new_action.transition_latency
                    run.transitions += 1
                    run.transition_time += latency
                    if recorder is not None:
                        recorder.record_transition(
                            time=time_now,
                            latency=latency,
                            from_dram_frequency=action.dram_frequency,
                            to_dram_frequency=new_action.dram_frequency,
                        )
                    time_now += latency
                    # Computed fresh, not memoized: the policy's decide() may
                    # already have reloaded the live MRC registers (SysScale
                    # runs the Fig. 5 flow inside decide), and the reference
                    # loop charges the transition at the post-decide register
                    # state.
                    power = self.platform.soc_power.breakdown(
                        segment.state, segment.activity
                    )
                    energy_compute += power.compute_domain * latency
                    energy_io += power.io_domain * latency
                    energy_memory += power.memory_domain * latency
                    energy_platform += power.platform_fixed * latency
                    policy.notify_transition(action, new_action)
                    self._apply_mrc(new_action)
                action = new_action

        run.time = time_now
        run.phase_index = phase_index
        run.work_done_in_phase = work
        run.energy.add(
            compute=energy_compute,
            io=energy_io,
            memory=energy_memory,
            platform_fixed=energy_platform,
        )
        run.cpu_frequency_time = cpu_time
        run.gfx_frequency_time = gfx_time
        run.dram_frequency_time = dram_time
        run.low_point_time = low_point_time
        self.last_run_stats = EngineRunStats(
            ticks=ticks_total,
            segments=segments,
            model_evaluations=model_evaluations,
            memo_hits=memo_hits,
            evaluations=run.evaluation_count,
            transitions=run.transitions,
        )

    def _evaluate_segment(
        self, trace: WorkloadTrace, phase: Phase, action: PolicyAction
    ) -> _SegmentModel:
        """Run the model stack once for a ``(phase, action, MRC)`` segment.

        Mirrors exactly what the reference loop computes on every tick; the
        returned per-tick increments are what the tight loop replays.
        """
        tick = self.config.tick
        state, _plan = self._build_state(trace, phase, action)
        mrc = self.platform.mrc_registers

        slowdown = self.platform.performance_model.slowdown(phase, state, mrc)
        activity = activity_for_phase(phase, slowdown.achieved_bandwidth)
        sample = self.platform.counter_unit.sample(phase, state, mrc)

        if trace.workload_class is WorkloadClass.BATTERY_LIFE:
            energy_ticks = self._battery_life_tick_energy(phase, state, activity, tick)
            work_tick = tick
        else:
            breakdown = self.platform.soc_power.breakdown(state, activity)
            energy_ticks = (
                breakdown.compute_domain * tick,
                breakdown.io_domain * tick,
                breakdown.memory_domain * tick,
                breakdown.platform_fixed * tick,
            )
            work_tick = tick / slowdown.total
        for name, value in zip(("compute", "io", "memory", "platform_fixed"), energy_ticks):
            if value < 0:
                raise ValueError(f"{name} energy contribution must be non-negative")

        return _SegmentModel(
            state=state,
            activity=activity,
            work_tick=work_tick,
            energy_ticks=energy_ticks,
            counter_values=tuple(sample[name] for name in CounterName),
            sample_interval=sample.interval,
            bandwidth=slowdown.achieved_bandwidth,
            frequency_ticks=(
                state.cpu_frequency * tick,
                state.gfx_frequency * tick,
                state.dram_frequency * tick,
            ),
            low_point=state.dram_frequency
            < self.platform.dram.max_frequency - 1e3,
        )

    # ------------------------------------------------------------------
    # Reference loop (the seed per-tick algorithm, kept verbatim)
    # ------------------------------------------------------------------
    def _run_reference(
        self,
        trace: WorkloadTrace,
        policy: Policy,
        static_demand: StaticDemandInfo,
        run: _RunState,
        action: PolicyAction,
    ) -> None:
        last_evaluation_time = 0.0
        high_dram_frequency = self.platform.dram.max_frequency
        phases = trace.phases
        tick = self.config.tick
        ticks_total = 0

        while run.phase_index < len(phases) and run.time < self.config.max_simulated_time:
            phase = phases[run.phase_index]
            state, plan = self._build_state(trace, phase, action)
            mrc = self.platform.mrc_registers

            slowdown = self.platform.performance_model.slowdown(phase, state, mrc)
            activity = activity_for_phase(phase, slowdown.achieved_bandwidth)

            # --- energy ---------------------------------------------------
            self._accumulate_energy(run, trace, phase, state, activity, tick)

            # --- counters --------------------------------------------------
            run.interval_samples.append(
                self.platform.counter_unit.sample(phase, state, mrc)
            )
            if self.config.record_bandwidth_samples:
                run.bandwidth_samples.append(slowdown.achieved_bandwidth)

            # --- statistics -------------------------------------------------
            run.cpu_frequency_time += state.cpu_frequency * tick
            run.gfx_frequency_time += state.gfx_frequency * tick
            run.dram_frequency_time += state.dram_frequency * tick
            if state.dram_frequency < high_dram_frequency - 1e3:
                run.low_point_time += tick

            # --- progress ---------------------------------------------------
            run.time += tick
            ticks_total += 1
            if trace.workload_class is WorkloadClass.BATTERY_LIFE:
                # Fixed performance demand: the trace advances in wall-clock time.
                run.work_done_in_phase += tick
            else:
                run.work_done_in_phase += tick / slowdown.total
            if run.work_done_in_phase >= phase.duration - 1e-12:
                run.phase_index += 1
                run.work_done_in_phase = 0.0

            # --- policy evaluation ------------------------------------------
            if run.time - last_evaluation_time >= self.config.evaluation_interval - 1e-12:
                last_evaluation_time = run.time
                run.evaluation_count += 1
                observation = PolicyObservation(
                    counters=CounterSample.average(run.interval_samples),
                    static_demand=static_demand,
                    time=run.time,
                    workload_class=trace.workload_class.value,
                    evaluation_interval=self.config.evaluation_interval,
                    samples=len(run.interval_samples),
                )
                run.interval_samples = []
                new_action = policy.decide(observation)
                if not new_action.same_operating_point(action):
                    self._charge_transition(run, new_action, state, activity)
                    policy.notify_transition(action, new_action)
                    self._apply_mrc(new_action)
                action = new_action

        self.last_run_stats = EngineRunStats(
            ticks=ticks_total,
            segments=ticks_total,
            model_evaluations=ticks_total,
            memo_hits=0,
            evaluations=run.evaluation_count,
            transitions=run.transitions,
        )

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------
    def _build_state(
        self, trace: WorkloadTrace, phase: Phase, action: PolicyAction
    ):
        """SoC state for the current tick: IO/memory from the action, compute from the PBM."""
        budgets = self.platform.pbm.budgets(action.io_memory_budget)
        activity_hint = ActivityVector(
            cpu_activity=phase.cpu_activity,
            gfx_activity=phase.gfx_activity,
            io_activity=phase.io_activity,
            memory_bandwidth=phase.memory_bandwidth_demand,
            active_cores=phase.active_cores,
        )
        plan: ComputePlan = self.platform.pbm.plan(
            budgets.compute,
            activity_hint,
            graphics_centric=trace.is_graphics_centric,
            fixed_performance=trace.has_fixed_performance_demand,
        )
        state = SoCState(
            cpu_frequency=plan.cpu_state.frequency,
            gfx_frequency=plan.gfx_state.frequency,
            dram_frequency=action.dram_frequency,
            interconnect_frequency=action.interconnect_frequency,
            v_sa_scale=action.v_sa_scale,
            v_io_scale=action.v_io_scale,
            v_core=plan.cpu_state.voltage,
            v_gfx=plan.gfx_state.voltage,
            mrc_optimized=action.mrc_optimized
            or self.platform.mrc_registers.is_optimized_for(action.dram_frequency),
            dram_in_self_refresh=False,
            active_cores=phase.active_cores,
        )
        return state, plan

    def _apply_mrc(self, action: PolicyAction) -> None:
        """Load the optimized register set for the action's DRAM frequency if requested."""
        if action.mrc_optimized and self.platform.mrc_sram.has_frequency(action.dram_frequency):
            self.platform.mrc_registers.load(
                self.platform.mrc_sram.load(action.dram_frequency)
            )

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def _accumulate_energy(
        self,
        run: _RunState,
        trace: WorkloadTrace,
        phase: Phase,
        state: SoCState,
        activity: ActivityVector,
        tick: float,
    ) -> None:
        if trace.workload_class is WorkloadClass.BATTERY_LIFE:
            compute, io, memory, platform_fixed = self._battery_life_tick_energy(
                phase, state, activity, tick
            )
            run.energy.add(
                compute=compute, io=io, memory=memory, platform_fixed=platform_fixed
            )
            return
        breakdown = self.platform.soc_power.breakdown(state, activity)
        run.energy.add(
            compute=breakdown.compute_domain * tick,
            io=breakdown.io_domain * tick,
            memory=breakdown.memory_domain * tick,
            platform_fixed=breakdown.platform_fixed * tick,
        )

    def _battery_life_tick_energy(
        self,
        phase: Phase,
        state: SoCState,
        activity: ActivityVector,
        tick: float,
    ) -> Tuple[float, float, float, float]:
        """Residency-weighted per-tick energy for battery-life workloads (Sec. 7.3).

        The phase's C-state residency profile is re-scaled when the active work
        runs slower than at the reference configuration (fixed performance demand
        means slower hardware must stay active longer).  Returns the (compute,
        io, memory, platform) joule increments for one tick.
        """
        slowdown = self.platform.performance_model.slowdown(
            phase, state, self.platform.mrc_registers
        )
        residency = phase.residency
        if slowdown.total > 1.0 and residency.active_fraction < 1.0:
            new_active = min(1.0, residency.active_fraction * slowdown.total)
            residency = residency.scaled_active(new_active)

        # C0: fully active.
        c0 = residency.fraction(CState.C0)
        active_breakdown = self.platform.soc_power.breakdown(state, activity)

        # C2: compute idle, DRAM active, only IO agents (display/ISP) generate traffic.
        c2 = residency.fraction(CState.C2)
        c2_memory_io = self.platform.memory_power.breakdown(
            dram_frequency=state.dram_frequency,
            interconnect_frequency=state.interconnect_frequency,
            v_sa_scale=state.v_sa_scale,
            v_io_scale=state.v_io_scale,
            bandwidth=phase.io_bandwidth_demand,
            io_activity=phase.io_activity,
            in_self_refresh=False,
            mrc=self.platform.mrc_registers,
        )

        # Deep idle states (C6/C7/C8): the system agent and DDRIO are power gated,
        # DRAM sits in self-refresh on VDDQ.  Only the self-refresh current and a
        # small always-on residual remain, independent of the selected operating
        # point -- SysScale only matters while DRAM is active (Sec. 7.3).
        deep_states = [
            (cstate, residency.fraction(cstate))
            for cstate in (CState.C6, CState.C7, CState.C8)
            if residency.fraction(cstate) > 0
        ]
        deep_fraction = sum(fraction for _, fraction in deep_states)
        deep_memory_power = self.platform.memory_power.self_refresh_power + 0.01
        deep_io_power = 0.01

        compute_energy = c0 * active_breakdown.compute_domain * tick
        compute_energy += c2 * IDLE_PACKAGE_POWER[CState.C2] * tick
        for cstate, fraction in deep_states:
            compute_energy += fraction * IDLE_PACKAGE_POWER[cstate] * tick

        io_energy = (
            c0 * active_breakdown.io_domain
            + c2 * c2_memory_io.io_domain
            + deep_fraction * deep_io_power
        ) * tick
        memory_energy = (
            c0 * active_breakdown.memory_domain
            + c2 * c2_memory_io.memory_domain
            + deep_fraction * deep_memory_power
        ) * tick
        platform_energy = active_breakdown.platform_fixed * tick
        return compute_energy, io_energy, memory_energy, platform_energy

    # ------------------------------------------------------------------
    # Transitions and results
    # ------------------------------------------------------------------
    def _charge_transition(
        self,
        run: _RunState,
        new_action: PolicyAction,
        state: SoCState,
        activity: ActivityVector,
    ) -> None:
        """Charge the latency and energy of one operating-point transition."""
        latency = new_action.transition_latency
        run.transitions += 1
        run.transition_time += latency
        run.time += latency
        power = self.platform.soc_power.breakdown(state, activity)
        run.energy.add(
            compute=power.compute_domain * latency,
            io=power.io_domain * latency,
            memory=power.memory_domain * latency,
            platform_fixed=power.platform_fixed * latency,
        )

    def _build_result(
        self, trace: WorkloadTrace, policy: Policy, run: _RunState
    ) -> SimulationResult:
        time = max(run.time, self.config.tick)
        return SimulationResult(
            workload=trace.name,
            policy=policy.name,
            execution_time=time,
            energy=run.energy,
            transitions=run.transitions,
            transition_time=run.transition_time,
            low_point_time=run.low_point_time,
            evaluation_count=run.evaluation_count,
            average_cpu_frequency=run.cpu_frequency_time / time,
            average_gfx_frequency=run.gfx_frequency_time / time,
            average_dram_frequency=run.dram_frequency_time / time,
            achieved_bandwidth_samples=run.bandwidth_samples,
        )
