"""Baseline-vs-policy comparison helpers.

The experiment harness repeatedly needs the same shape of comparison: run one or
more workloads under a baseline policy and under one or more candidate policies on
the same platform, then report per-workload and average improvements.  This module
provides that plumbing so the per-figure experiment modules stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import Platform
from repro.sim.policy import Policy
from repro.sim.result import SimulationResult
from repro.workloads.io_devices import PeripheralConfiguration
from repro.workloads.trace import WorkloadTrace


@dataclass
class PolicyComparison:
    """Per-workload results of one baseline and several candidate policies."""

    workload: str
    baseline: SimulationResult
    candidates: Dict[str, SimulationResult] = field(default_factory=dict)

    def performance_improvement(self, policy: str) -> float:
        """Fractional performance improvement of ``policy`` over the baseline."""
        return self.candidates[policy].performance_improvement_over(self.baseline)

    def power_reduction(self, policy: str) -> float:
        """Fractional average-power reduction of ``policy`` vs. the baseline."""
        return self.candidates[policy].power_reduction_vs(self.baseline)

    def energy_reduction(self, policy: str) -> float:
        """Fractional energy reduction of ``policy`` vs. the baseline."""
        return self.candidates[policy].energy_reduction_vs(self.baseline)

    def edp_improvement(self, policy: str) -> float:
        """Fractional EDP improvement of ``policy`` over the baseline."""
        return self.candidates[policy].edp_improvement_over(self.baseline)

    def as_dict(self) -> dict:
        """Flat summary for result tables."""
        row = {"workload": self.workload, "baseline_power_w": self.baseline.average_power}
        for name, result in self.candidates.items():
            row[f"{name}_perf_improvement"] = self.performance_improvement(name)
            row[f"{name}_power_reduction"] = self.power_reduction(name)
        return row


def compare_policies(
    platform: Platform,
    workloads: Sequence[WorkloadTrace],
    baseline_policy: Callable[[], Policy],
    candidate_policies: Dict[str, Callable[[], Policy]],
    peripherals: Optional[PeripheralConfiguration] = None,
    sim_config: Optional[SimulationConfig] = None,
) -> List[PolicyComparison]:
    """Run every workload under the baseline and every candidate policy.

    Policies are passed as zero-argument factories so each run gets a fresh policy
    instance (policies may carry per-run state such as the current operating
    point).
    """
    engine = SimulationEngine(platform, sim_config)
    comparisons: List[PolicyComparison] = []
    for trace in workloads:
        baseline_result = engine.run(trace, baseline_policy(), peripherals)
        comparison = PolicyComparison(workload=trace.name, baseline=baseline_result)
        for name, factory in candidate_policies.items():
            comparison.candidates[name] = engine.run(trace, factory(), peripherals)
        comparisons.append(comparison)
    return comparisons


def average_improvement(
    comparisons: Iterable[PolicyComparison], policy: str, metric: str = "performance"
) -> float:
    """Average improvement of ``policy`` across a set of comparisons.

    ``metric`` is ``"performance"``, ``"power"``, ``"energy"``, or ``"edp"``.
    """
    selectors = {
        "performance": PolicyComparison.performance_improvement,
        "power": PolicyComparison.power_reduction,
        "energy": PolicyComparison.energy_reduction,
        "edp": PolicyComparison.edp_improvement,
    }
    if metric not in selectors:
        raise ValueError(f"unknown metric {metric!r}; choose from {sorted(selectors)}")
    values = [selectors[metric](comparison, policy) for comparison in comparisons]
    if not values:
        raise ValueError("no comparisons given")
    return sum(values) / len(values)
