"""Trace-driven simulation engine.

The simulator steps a workload trace through time in 1 ms ticks on a modelled
platform (SoC description + power models + performance model), consults a DVFS
policy every evaluation interval (30 ms by default, Sec. 4.3), applies the policy's
operating-point decisions including the transition cost of the DVFS flow, and
integrates energy.  Results are returned as :class:`~repro.sim.result.SimulationResult`
objects that the experiment harness compares across policies.
"""

from repro.sim.policy import (
    Policy,
    PolicyAction,
    PolicyObservation,
    StaticDemandInfo,
)
from repro.sim.platform import Platform, build_platform
from repro.sim.engine import SimulationEngine, SimulationConfig
from repro.sim.result import SimulationResult, DomainEnergyBreakdown
from repro.sim.comparison import PolicyComparison, compare_policies

__all__ = [
    "Policy",
    "PolicyAction",
    "PolicyObservation",
    "StaticDemandInfo",
    "Platform",
    "build_platform",
    "SimulationEngine",
    "SimulationConfig",
    "SimulationResult",
    "DomainEnergyBreakdown",
    "PolicyComparison",
    "compare_policies",
]
