"""``repro.fleet``: the sweep service layer.

A long-lived service over the existing runtime: a durable content-addressed
job queue (:mod:`repro.fleet.queue`), batched pool dispatch with fleet
telemetry (:mod:`repro.fleet.batching`), a sharded result store with
``spec_hash``-level sweep-report warm starts (:mod:`repro.fleet.store`), a
metrics-driven autoscaler (:mod:`repro.fleet.autoscaler`), explicit failure
semantics -- deterministic retry backoff, a quarantine for poison jobs and
corrupt entries, and the ``fleet doctor`` consistency audit
(:mod:`repro.fleet.resilience`) -- with a seeded chaos harness to prove them
(:mod:`repro.fleet.faults`), and the service loop plus submit/status/verify
entry points (:mod:`repro.fleet.service`) behind ``repro serve`` /
``repro submit`` / ``repro fleet ...``.

Layering: fleet sits above runtime and scenarios and below the CLI; nothing
in the model or runtime layers knows the fleet exists.  The fleet never adds
a second execution path -- workers run the same ``execute_job_with_stats``
as a serial run, which is why fleet results are bit-identical to serial ones.
"""

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig, ScalingDecision
from repro.fleet.batching import BatchingExecutor, BatchPlan, plan_batches
from repro.fleet.faults import FaultPlan, FaultRule, InjectedFault
from repro.fleet.queue import JobQueue, QueueEntry
from repro.fleet.resilience import (
    DoctorReport,
    FailureRecord,
    Quarantine,
    backoff_seconds,
    run_doctor,
)
from repro.fleet.service import (
    FleetConfig,
    FleetService,
    fleet_status,
    resolve_campaign,
    submit_campaign,
    sweep_spec_hash,
    verify_campaign,
)
from repro.fleet.store import ShardedResultStore

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BatchPlan",
    "BatchingExecutor",
    "DoctorReport",
    "FailureRecord",
    "FaultPlan",
    "FaultRule",
    "FleetConfig",
    "FleetService",
    "InjectedFault",
    "JobQueue",
    "Quarantine",
    "QueueEntry",
    "ScalingDecision",
    "ShardedResultStore",
    "backoff_seconds",
    "fleet_status",
    "plan_batches",
    "resolve_campaign",
    "run_doctor",
    "submit_campaign",
    "sweep_spec_hash",
    "verify_campaign",
]
