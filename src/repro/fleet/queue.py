"""The durable job queue behind ``repro serve`` / ``repro submit``.

Every queue entry is one JSON file named by the job's content hash, written
atomically (same-directory temp file + ``os.replace``) on every state
transition -- a killed service or submitter never leaves a truncated entry,
and the queue's full state survives process restarts by construction.
Submitters (``repro submit``) and the service (``repro serve``) are separate
processes sharing nothing but the queue directory; the service discovers new
entries by rescanning it each poll.

An entry moves through four states::

    queued --lease()--> leased --complete()--> done
       ^                  |
       |                  +--fail() / lease timeout--+
       +--(attempts left)--------------------------- +--> failed (exhausted)

Leases carry a deadline: a worker that dies mid-job simply stops renewing,
:meth:`JobQueue.requeue_expired` flips the entry back to ``queued`` (or to
``failed`` once ``max_attempts`` is spent), and another turn of the service
loop picks it up.  A failed attempt also stamps ``not_before`` with a
deterministic exponential backoff (:func:`repro.fleet.resilience.backoff_seconds`,
jitter derived from ``(job_hash, attempt)``), which ``lease`` honors -- a
flapping job cannot hot-loop through its attempt budget.  Dispatch order is
priority first (higher sooner), then submission sequence -- a FIFO within
each priority band.

Corrupt entry files (truncated JSON, wrong schema, missing fields) are
**counted, not swallowed**: :meth:`JobQueue.scan` classifies them,
:meth:`JobQueue.counts` surfaces them under ``"corrupt"``, and the service's
healing sweep restores or quarantines them.  Transient read errors
(``OSError``, including injected ones) just hide an entry for one scan --
the bytes on disk are fine and the next scan sees them.

Deduplication happens **before** anything is enqueued: a job whose hash is
already live in the queue is returned as-is, and a job whose result already
sits in the shared :class:`~repro.fleet.store.ShardedResultStore` is recorded
straight to ``done`` (``note="store-hit"``) without ever touching a worker.
Jobs are content-addressed, so two racing submitters at worst both write the
same entry -- never conflicting ones.

Chaos seams: an optional :class:`~repro.fleet.faults.FaultPlan` attached to
the queue intercepts entry writes (torn/lost/OSError), entry reads
(transient OSError), and lease hand-out (forced pre-expired deadlines) --
all decided deterministically from the plan's seed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.jobs import Job, job_from_dict

__all__ = [
    "FLEET_QUEUE_SCHEMA_VERSION",
    "JobQueue",
    "QueueEntry",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_LEASED",
    "STATE_QUEUED",
]

#: Version stamp on every entry file; mismatched entries read as corrupt.
FLEET_QUEUE_SCHEMA_VERSION = 1

STATE_QUEUED = "queued"
STATE_LEASED = "leased"
STATE_DONE = "done"
STATE_FAILED = "failed"

#: All states, in lifecycle order (used by ``counts()`` and the status CLI).
STATES = (STATE_QUEUED, STATE_LEASED, STATE_DONE, STATE_FAILED)

#: Extra ``counts()`` key for unreadable entry files.
COUNT_CORRUPT = "corrupt"

#: Extra ``counts()`` key for entries hidden by a transient read error this
#: scan.  A non-zero value marks the scan as degraded: state conclusions
#: (like "drained") drawn from it would be guesses, not observations.
COUNT_TRANSIENT = "transient"


@dataclass(frozen=True)
class QueueEntry:
    """One durable queue record; the job payload rides along in full."""

    job_hash: str
    job: Dict[str, Any]
    priority: int
    seq: int
    state: str
    attempts: int = 0
    lease_deadline: Optional[float] = None
    #: Earliest wall-clock time the entry may be leased again (retry backoff).
    not_before: Optional[float] = None
    worker: Optional[str] = None
    error: Optional[str] = None
    note: Optional[str] = None

    def build_job(self) -> Job:
        """Rehydrate the executable job from its serialized payload."""
        return job_from_dict(self.job)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLEET_QUEUE_SCHEMA_VERSION,
            "job_hash": self.job_hash,
            "job": self.job,
            "priority": self.priority,
            "seq": self.seq,
            "state": self.state,
            "attempts": self.attempts,
            "lease_deadline": self.lease_deadline,
            "not_before": self.not_before,
            "worker": self.worker,
            "error": self.error,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueueEntry":
        return cls(
            job_hash=data["job_hash"],
            job=data["job"],
            priority=int(data["priority"]),
            seq=int(data["seq"]),
            state=data["state"],
            attempts=int(data.get("attempts", 0)),
            lease_deadline=data.get("lease_deadline"),
            not_before=data.get("not_before"),
            worker=data.get("worker"),
            error=data.get("error"),
            note=data.get("note"),
        )


class _SeqLock:
    """A directory-level ``O_EXCL`` lockfile guarding the sequence counter.

    Held for microseconds per submit; a lock older than ``stale_after`` is
    treated as abandoned (a submitter killed between create and unlink) and
    broken.
    """

    def __init__(self, path: Path, stale_after: float = 10.0) -> None:
        self.path = path
        self.stale_after = stale_after

    def __enter__(self) -> "_SeqLock":
        while True:
            try:
                descriptor = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(descriptor)
                return self
            except FileExistsError:
                try:
                    held_for = time.time() - self.path.stat().st_mtime
                    if held_for > self.stale_after:
                        self.path.unlink()
                        continue
                except OSError:
                    continue  # holder released between the open and the stat
                time.sleep(0.005)

    def __exit__(self, *exc_info: Any) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


@dataclass
class JobQueue:
    """Durable priority/FIFO queue rooted at ``root``."""

    root: Path
    lease_timeout: float = 60.0
    max_attempts: int = 3
    #: Retry backoff shape (see :func:`repro.fleet.resilience.backoff_seconds`).
    backoff_base: float = 0.25
    backoff_cap: float = 30.0
    backoff_jitter: float = 0.5
    #: Optional chaos plan (:class:`repro.fleet.faults.FaultPlan`); ``None``
    #: in production.  Declared ``Any`` to keep the import graph acyclic.
    faults: Optional[Any] = None
    _entries_dir: Path = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._entries_dir = self.root / "entries"
        self._entries_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Durable primitives
    # ------------------------------------------------------------------
    @property
    def entries_dir(self) -> Path:
        return self._entries_dir

    def _entry_path(self, job_hash: str) -> Path:
        return self._entries_dir / f"{job_hash}.json"

    def _write(self, entry: QueueEntry) -> None:
        # Imported here, not at module top, purely to reuse one atomic-write
        # helper; the layering is fleet->fleet either way.
        from repro.fleet.store import _atomic_write_json

        _atomic_write_json(
            self._entry_path(entry.job_hash),
            entry.to_dict(),
            faults=self.faults,
            fault_op="queue.write",
        )

    def _read_classified(
        self, path: Path
    ) -> Tuple[Optional[QueueEntry], Optional[str]]:
        """Read one entry file: ``(entry, None)``, ``(None, "transient")``
        for filesystem errors (bytes intact, retry next scan), or
        ``(None, "corrupt")`` for undecodable/mis-schemaed content."""
        if self.faults is not None:
            try:
                self.faults.intercept_read("queue.read", path)
            except OSError:
                return None, "transient"
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None, "transient"
        try:
            data = json.loads(text)
        except ValueError:
            return None, "corrupt"
        if (
            not isinstance(data, dict)
            or data.get("schema") != FLEET_QUEUE_SCHEMA_VERSION
        ):
            return None, "corrupt"
        try:
            return QueueEntry.from_dict(data), None
        except (KeyError, TypeError, ValueError):
            return None, "corrupt"

    def _read(self, path: Path) -> Optional[QueueEntry]:
        entry, _ = self._read_classified(path)
        return entry

    def _next_seq(self) -> int:
        counter = self.root / "seq"
        with _SeqLock(self.root / "seq.lock"):
            try:
                value = int(counter.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                value = 0
            counter.write_text(str(value + 1), encoding="utf-8")
        return value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_hash: str) -> Optional[QueueEntry]:
        return self._read(self._entry_path(job_hash))

    def scan(self) -> Tuple[List[QueueEntry], List[Path], List[Path]]:
        """One full rescan: readable entries (dispatch order), the paths of
        corrupt entry files, and the paths hidden by transient read errors.

        A non-empty transient list means this scan under-reports the queue:
        callers deciding anything terminal (drain exit, doctor verdicts)
        must rescan rather than conclude from a degraded snapshot."""
        found: List[QueueEntry] = []
        corrupt: List[Path] = []
        transient: List[Path] = []
        for path in sorted(self._entries_dir.glob("*.json")):
            entry, problem = self._read_classified(path)
            if entry is not None:
                found.append(entry)
            elif problem == "corrupt":
                corrupt.append(path)
            elif problem == "transient":
                transient.append(path)
        found.sort(key=lambda entry: (-entry.priority, entry.seq))
        return found, corrupt, transient

    def entries(self) -> List[QueueEntry]:
        """Every readable entry, rescanned from disk (sorted by dispatch
        order: priority desc, then submission sequence)."""
        return self.scan()[0]

    def scan_settled(self, attempts: int = 3) -> Tuple[List[QueueEntry], List[Path]]:
        """Rescan until no entry is transient-hidden (or ``attempts`` runs
        out), then return ``(entries, corrupt_paths)``.

        Doctor-grade readers use this so a one-scan read blip cannot turn
        into a false "lost-job" or premature-drain verdict; a path that
        stays unreadable across every attempt is treated as corrupt."""
        for _ in range(max(1, attempts)):
            found, corrupt, transient = self.scan()
            if not transient:
                return found, corrupt
        return found, corrupt + transient

    def counts(self) -> Dict[str, int]:
        """Entry counts per state, plus ``"corrupt"`` for unreadable files
        and ``"transient"`` for entries this scan could not read (every key
        present, zero included)."""
        totals = {state: 0 for state in STATES}
        entries, corrupt, transient = self.scan()
        for entry in entries:
            totals[entry.state] = totals.get(entry.state, 0) + 1
        totals[COUNT_CORRUPT] = len(corrupt)
        totals[COUNT_TRANSIENT] = len(transient)
        return totals

    def drained(self) -> bool:
        """True when no entry is waiting or running.

        Conservative under degraded scans: an entry hidden by a transient
        read error *might* be queued or leased, so it counts as not drained
        -- a draining service must never exit on a scan it could not trust.
        """
        totals = self.counts()
        return (
            totals[STATE_QUEUED] == 0
            and totals[STATE_LEASED] == 0
            and totals[COUNT_TRANSIENT] == 0
        )

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(
        self,
        job: Job,
        priority: int = 0,
        store: Optional[Any] = None,
    ) -> QueueEntry:
        """Enqueue ``job`` unless it is already live or already answered.

        ``store`` is the shared result store dedup consults: a job whose
        result is already on disk is recorded straight to ``done``.  Returns
        the (possibly pre-existing) entry either way.
        """
        job_hash = job.content_hash
        existing = self.get(job_hash)
        if existing is not None and existing.state != STATE_FAILED:
            return existing
        if store is not None and store.has_job(job_hash):
            entry = QueueEntry(
                job_hash=job_hash,
                job=job.to_dict(),
                priority=priority,
                seq=self._next_seq(),
                state=STATE_DONE,
                note="store-hit",
            )
            self._write(entry)
            return entry
        entry = QueueEntry(
            job_hash=job_hash,
            job=job.to_dict(),
            priority=priority,
            seq=self._next_seq(),
            state=STATE_QUEUED,
        )
        self._write(entry)
        return entry

    def submit_many(
        self,
        jobs: List[Job],
        priority: int = 0,
        store: Optional[Any] = None,
    ) -> Dict[str, int]:
        """Submit a batch; returns ``{enqueued, deduped_store, deduped_queue}``."""
        accounting = {"enqueued": 0, "deduped_store": 0, "deduped_queue": 0}
        seen_before = {
            entry.job_hash for entry in self.entries() if entry.state != STATE_FAILED
        }
        for job in jobs:
            job_hash = job.content_hash
            if job_hash in seen_before:
                accounting["deduped_queue"] += 1
                continue
            seen_before.add(job_hash)
            entry = self.submit(job, priority=priority, store=store)
            if entry.note == "store-hit":
                accounting["deduped_store"] += 1
            else:
                accounting["enqueued"] += 1
        return accounting

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def lease(
        self,
        limit: int = 1,
        worker: str = "worker",
        now: Optional[float] = None,
    ) -> List[QueueEntry]:
        """Claim up to ``limit`` queued entries for ``worker``.

        Each lease carries ``now + lease_timeout`` as its deadline and counts
        one attempt.  Entries still inside their retry backoff window
        (``not_before > now``) are skipped.  ``now`` is injectable so tests
        drive lease expiry and backoff without sleeping.
        """
        if limit < 1:
            raise ValueError("lease limit must be at least 1")
        now = time.time() if now is None else now
        leased: List[QueueEntry] = []
        for entry in self.entries():
            if len(leased) >= limit:
                break
            if entry.state != STATE_QUEUED:
                continue
            if entry.not_before is not None and entry.not_before > now:
                continue
            deadline = now + self.lease_timeout
            attempts = entry.attempts + 1
            if self.faults is not None and self.faults.lease_expired(
                entry.job_hash, attempts
            ):
                # Forced-expiry fault: hand out a lease that is already past
                # its deadline, exercising the takeover/requeue path.
                deadline = now - 1.0
            claimed = replace(
                entry,
                state=STATE_LEASED,
                attempts=attempts,
                lease_deadline=deadline,
                not_before=None,
                worker=worker,
            )
            self._write(claimed)
            leased.append(claimed)
        return leased

    def complete(
        self, job_hash: str, fallback: Optional[QueueEntry] = None
    ) -> QueueEntry:
        """Mark a leased entry done (idempotent for already-done entries).

        ``fallback`` is the caller's in-memory copy of the entry (the service
        holds the leased entry it dispatched): if the on-disk file has gone
        corrupt or missing in the meantime -- a torn write, an injected
        fault -- the completion is recorded over it instead of being lost.
        """
        entry = self.get(job_hash)
        if entry is None:
            if fallback is None:
                raise KeyError(f"no queue entry for {job_hash}")
            entry = fallback
        if entry.state == STATE_DONE:
            return entry
        finished = replace(
            entry,
            state=STATE_DONE,
            lease_deadline=None,
            not_before=None,
            error=None,
        )
        self._write(finished)
        return finished

    def fail(
        self,
        job_hash: str,
        error: str,
        now: Optional[float] = None,
        fallback: Optional[QueueEntry] = None,
    ) -> QueueEntry:
        """Record a failed attempt: back to ``queued`` behind a deterministic
        backoff window, or ``failed`` when ``max_attempts`` is exhausted.

        ``fallback`` plays the same torn-write-healing role as in
        :meth:`complete`.
        """
        # Deferred import: resilience imports this module at top level.
        from repro.fleet.resilience import backoff_seconds

        now = time.time() if now is None else now
        entry = self.get(job_hash)
        if entry is None:
            if fallback is None:
                raise KeyError(f"no queue entry for {job_hash}")
            entry = fallback
        exhausted = entry.attempts >= self.max_attempts
        not_before = None
        if not exhausted:
            not_before = now + backoff_seconds(
                job_hash,
                entry.attempts,
                base=self.backoff_base,
                cap=self.backoff_cap,
                jitter=self.backoff_jitter,
            )
        failed = replace(
            entry,
            state=STATE_FAILED if exhausted else STATE_QUEUED,
            lease_deadline=None,
            not_before=not_before,
            worker=None,
            error=error,
        )
        self._write(failed)
        return failed

    def release(
        self,
        job_hash: str,
        note: Optional[str] = None,
        fallback: Optional[QueueEntry] = None,
    ) -> QueueEntry:
        """Return a leased entry to ``queued`` *refunding* its attempt.

        For entries that did not get a fair attempt -- e.g. co-leased
        bystanders of a pool collapse whose culprit is unknown.  No backoff
        is applied: the entry is immediately leasable (typically solo, so a
        repeat collapse identifies it exactly)."""
        entry = self.get(job_hash)
        if entry is None:
            if fallback is None:
                raise KeyError(f"no queue entry for {job_hash}")
            entry = fallback
        released = replace(
            entry,
            state=STATE_QUEUED,
            attempts=max(0, entry.attempts - 1),
            lease_deadline=None,
            not_before=None,
            worker=None,
            note=note if note is not None else entry.note,
        )
        self._write(released)
        return released

    def record_done(
        self, job_hash: str, job: Dict[str, Any], note: Optional[str] = None
    ) -> QueueEntry:
        """(Re)write a ``done`` entry from its serialized job -- the healing
        path for corrupt entries whose results already landed in the store."""
        entry = QueueEntry(
            job_hash=job_hash,
            job=job,
            priority=0,
            seq=self._next_seq(),
            state=STATE_DONE,
            note=note,
        )
        self._write(entry)
        return entry

    def record_queued(
        self, entry: QueueEntry, note: Optional[str] = None
    ) -> QueueEntry:
        """Rewrite ``entry`` as immediately-leasable ``queued`` state."""
        requeued = replace(
            entry,
            state=STATE_QUEUED,
            lease_deadline=None,
            not_before=None,
            worker=None,
            note=note if note is not None else entry.note,
        )
        self._write(requeued)
        return requeued

    def remove(self, job_hash: str) -> bool:
        """Delete an entry file outright (quarantine/GC use only)."""
        try:
            self._entry_path(job_hash).unlink()
            return True
        except OSError:
            return False

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Return timed-out leases to the queue; exhausted ones fail.

        The service calls this once per poll, so a worker crash costs at most
        one lease timeout before the job runs elsewhere.
        """
        now = time.time() if now is None else now
        recovered = 0
        for entry in self.entries():
            if entry.state != STATE_LEASED:
                continue
            if entry.lease_deadline is not None and entry.lease_deadline > now:
                continue
            self.fail(
                entry.job_hash,
                error=(
                    f"lease expired after attempt {entry.attempts} "
                    f"(worker {entry.worker or 'unknown'})"
                ),
                now=now,
            )
            recovered += 1
        return recovered

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def gc(
        self,
        ttl: float = 3600.0,
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, int]:
        """Compact terminal entries older than ``ttl`` seconds.

        Removes ``done``/``failed`` entry files whose last state transition
        (file mtime) is older than the TTL, plus stray ``*.tmp`` files of the
        same age -- queued/leased entries are never touched.  ``dry_run``
        counts without deleting.  Returns
        ``{scanned, removed_done, removed_failed, removed_tmp, kept}``.
        """
        now = time.time() if now is None else now
        summary = {
            "scanned": 0,
            "removed_done": 0,
            "removed_failed": 0,
            "removed_tmp": 0,
            "kept": 0,
        }
        for path in sorted(self._entries_dir.glob("*.json")):
            summary["scanned"] += 1
            entry, _ = self._read_classified(path)
            if entry is None or entry.state not in (STATE_DONE, STATE_FAILED):
                summary["kept"] += 1
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                summary["kept"] += 1
                continue
            if age < ttl:
                summary["kept"] += 1
                continue
            key = "removed_done" if entry.state == STATE_DONE else "removed_failed"
            if not dry_run:
                if not self.remove(entry.job_hash):
                    summary["kept"] += 1
                    continue
            summary[key] += 1
        for tmp in sorted(self._entries_dir.glob("*.tmp")):
            try:
                if now - tmp.stat().st_mtime < ttl:
                    continue
                if not dry_run:
                    tmp.unlink()
            except OSError:
                continue
            summary["removed_tmp"] += 1
        return summary
