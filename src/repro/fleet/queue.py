"""The durable job queue behind ``repro serve`` / ``repro submit``.

Every queue entry is one JSON file named by the job's content hash, written
atomically (same-directory temp file + ``os.replace``) on every state
transition -- a killed service or submitter never leaves a truncated entry,
and the queue's full state survives process restarts by construction.
Submitters (``repro submit``) and the service (``repro serve``) are separate
processes sharing nothing but the queue directory; the service discovers new
entries by rescanning it each poll.

An entry moves through four states::

    queued --lease()--> leased --complete()--> done
       ^                  |
       |                  +--fail() / lease timeout--+
       +--(attempts left)--------------------------- +--> failed (exhausted)

Leases carry a deadline: a worker that dies mid-job simply stops renewing,
:meth:`JobQueue.requeue_expired` flips the entry back to ``queued`` (or to
``failed`` once ``max_attempts`` is spent), and another turn of the service
loop picks it up.  Dispatch order is priority first (higher sooner), then
submission sequence -- a FIFO within each priority band.

Deduplication happens **before** anything is enqueued: a job whose hash is
already live in the queue is returned as-is, and a job whose result already
sits in the shared :class:`~repro.fleet.store.ShardedResultStore` is recorded
straight to ``done`` (``note="store-hit"``) without ever touching a worker.
Jobs are content-addressed, so two racing submitters at worst both write the
same entry -- never conflicting ones.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.runtime.jobs import Job, job_from_dict

__all__ = [
    "FLEET_QUEUE_SCHEMA_VERSION",
    "JobQueue",
    "QueueEntry",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_LEASED",
    "STATE_QUEUED",
]

#: Version stamp on every entry file; mismatched entries are ignored.
FLEET_QUEUE_SCHEMA_VERSION = 1

STATE_QUEUED = "queued"
STATE_LEASED = "leased"
STATE_DONE = "done"
STATE_FAILED = "failed"

#: All states, in lifecycle order (used by ``counts()`` and the status CLI).
STATES = (STATE_QUEUED, STATE_LEASED, STATE_DONE, STATE_FAILED)


@dataclass(frozen=True)
class QueueEntry:
    """One durable queue record; the job payload rides along in full."""

    job_hash: str
    job: Dict[str, Any]
    priority: int
    seq: int
    state: str
    attempts: int = 0
    lease_deadline: Optional[float] = None
    worker: Optional[str] = None
    error: Optional[str] = None
    note: Optional[str] = None

    def build_job(self) -> Job:
        """Rehydrate the executable job from its serialized payload."""
        return job_from_dict(self.job)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": FLEET_QUEUE_SCHEMA_VERSION,
            "job_hash": self.job_hash,
            "job": self.job,
            "priority": self.priority,
            "seq": self.seq,
            "state": self.state,
            "attempts": self.attempts,
            "lease_deadline": self.lease_deadline,
            "worker": self.worker,
            "error": self.error,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueueEntry":
        return cls(
            job_hash=data["job_hash"],
            job=data["job"],
            priority=int(data["priority"]),
            seq=int(data["seq"]),
            state=data["state"],
            attempts=int(data.get("attempts", 0)),
            lease_deadline=data.get("lease_deadline"),
            worker=data.get("worker"),
            error=data.get("error"),
            note=data.get("note"),
        )


class _SeqLock:
    """A directory-level ``O_EXCL`` lockfile guarding the sequence counter.

    Held for microseconds per submit; a lock older than ``stale_after`` is
    treated as abandoned (a submitter killed between create and unlink) and
    broken.
    """

    def __init__(self, path: Path, stale_after: float = 10.0) -> None:
        self.path = path
        self.stale_after = stale_after

    def __enter__(self) -> "_SeqLock":
        while True:
            try:
                descriptor = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(descriptor)
                return self
            except FileExistsError:
                try:
                    held_for = time.time() - self.path.stat().st_mtime
                    if held_for > self.stale_after:
                        self.path.unlink()
                        continue
                except OSError:
                    continue  # holder released between the open and the stat
                time.sleep(0.005)

    def __exit__(self, *exc_info: Any) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


@dataclass
class JobQueue:
    """Durable priority/FIFO queue rooted at ``root``."""

    root: Path
    lease_timeout: float = 60.0
    max_attempts: int = 3
    _entries_dir: Path = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self._entries_dir = self.root / "entries"
        self._entries_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Durable primitives
    # ------------------------------------------------------------------
    def _entry_path(self, job_hash: str) -> Path:
        return self._entries_dir / f"{job_hash}.json"

    def _write(self, entry: QueueEntry) -> None:
        # Imported here, not at module top, purely to reuse one atomic-write
        # helper; the layering is fleet->fleet either way.
        from repro.fleet.store import _atomic_write_json

        _atomic_write_json(self._entry_path(entry.job_hash), entry.to_dict())

    def _read(self, path: Path) -> Optional[QueueEntry]:
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != FLEET_QUEUE_SCHEMA_VERSION
        ):
            return None
        try:
            return QueueEntry.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def _next_seq(self) -> int:
        counter = self.root / "seq"
        with _SeqLock(self.root / "seq.lock"):
            try:
                value = int(counter.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                value = 0
            counter.write_text(str(value + 1), encoding="utf-8")
        return value

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_hash: str) -> Optional[QueueEntry]:
        return self._read(self._entry_path(job_hash))

    def entries(self) -> List[QueueEntry]:
        """Every readable entry, rescanned from disk (sorted by dispatch
        order: priority desc, then submission sequence)."""
        found = []
        for path in sorted(self._entries_dir.glob("*.json")):
            entry = self._read(path)
            if entry is not None:
                found.append(entry)
        found.sort(key=lambda entry: (-entry.priority, entry.seq))
        return found

    def counts(self) -> Dict[str, int]:
        """Entry counts per state (every state present, zero included)."""
        totals = {state: 0 for state in STATES}
        for entry in self.entries():
            totals[entry.state] = totals.get(entry.state, 0) + 1
        return totals

    def drained(self) -> bool:
        """True when no entry is waiting or running."""
        totals = self.counts()
        return totals[STATE_QUEUED] == 0 and totals[STATE_LEASED] == 0

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(
        self,
        job: Job,
        priority: int = 0,
        store: Optional[Any] = None,
    ) -> QueueEntry:
        """Enqueue ``job`` unless it is already live or already answered.

        ``store`` is the shared result store dedup consults: a job whose
        result is already on disk is recorded straight to ``done``.  Returns
        the (possibly pre-existing) entry either way.
        """
        job_hash = job.content_hash
        existing = self.get(job_hash)
        if existing is not None and existing.state != STATE_FAILED:
            return existing
        if store is not None and store.has_job(job_hash):
            entry = QueueEntry(
                job_hash=job_hash,
                job=job.to_dict(),
                priority=priority,
                seq=self._next_seq(),
                state=STATE_DONE,
                note="store-hit",
            )
            self._write(entry)
            return entry
        entry = QueueEntry(
            job_hash=job_hash,
            job=job.to_dict(),
            priority=priority,
            seq=self._next_seq(),
            state=STATE_QUEUED,
        )
        self._write(entry)
        return entry

    def submit_many(
        self,
        jobs: List[Job],
        priority: int = 0,
        store: Optional[Any] = None,
    ) -> Dict[str, int]:
        """Submit a batch; returns ``{enqueued, deduped_store, deduped_queue}``."""
        accounting = {"enqueued": 0, "deduped_store": 0, "deduped_queue": 0}
        seen_before = {
            entry.job_hash for entry in self.entries() if entry.state != STATE_FAILED
        }
        for job in jobs:
            job_hash = job.content_hash
            if job_hash in seen_before:
                accounting["deduped_queue"] += 1
                continue
            seen_before.add(job_hash)
            entry = self.submit(job, priority=priority, store=store)
            if entry.note == "store-hit":
                accounting["deduped_store"] += 1
            else:
                accounting["enqueued"] += 1
        return accounting

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def lease(
        self,
        limit: int = 1,
        worker: str = "worker",
        now: Optional[float] = None,
    ) -> List[QueueEntry]:
        """Claim up to ``limit`` queued entries for ``worker``.

        Each lease carries ``now + lease_timeout`` as its deadline and counts
        one attempt.  ``now`` is injectable so tests drive lease expiry
        without sleeping.
        """
        if limit < 1:
            raise ValueError("lease limit must be at least 1")
        now = time.time() if now is None else now
        leased: List[QueueEntry] = []
        for entry in self.entries():
            if len(leased) >= limit:
                break
            if entry.state != STATE_QUEUED:
                continue
            claimed = replace(
                entry,
                state=STATE_LEASED,
                attempts=entry.attempts + 1,
                lease_deadline=now + self.lease_timeout,
                worker=worker,
            )
            self._write(claimed)
            leased.append(claimed)
        return leased

    def complete(self, job_hash: str) -> QueueEntry:
        """Mark a leased entry done (idempotent for already-done entries)."""
        entry = self.get(job_hash)
        if entry is None:
            raise KeyError(f"no queue entry for {job_hash}")
        if entry.state == STATE_DONE:
            return entry
        finished = replace(
            entry, state=STATE_DONE, lease_deadline=None, error=None
        )
        self._write(finished)
        return finished

    def fail(self, job_hash: str, error: str) -> QueueEntry:
        """Record a failed attempt: back to ``queued``, or ``failed`` when
        ``max_attempts`` is exhausted."""
        entry = self.get(job_hash)
        if entry is None:
            raise KeyError(f"no queue entry for {job_hash}")
        exhausted = entry.attempts >= self.max_attempts
        failed = replace(
            entry,
            state=STATE_FAILED if exhausted else STATE_QUEUED,
            lease_deadline=None,
            worker=None,
            error=error,
        )
        self._write(failed)
        return failed

    def requeue_expired(self, now: Optional[float] = None) -> int:
        """Return timed-out leases to the queue; exhausted ones fail.

        The service calls this once per poll, so a worker crash costs at most
        one lease timeout before the job runs elsewhere.
        """
        now = time.time() if now is None else now
        recovered = 0
        for entry in self.entries():
            if entry.state != STATE_LEASED:
                continue
            if entry.lease_deadline is not None and entry.lease_deadline > now:
                continue
            self.fail(
                entry.job_hash,
                error=(
                    f"lease expired after attempt {entry.attempts} "
                    f"(worker {entry.worker or 'unknown'})"
                ),
            )
            recovered += 1
        return recovered
