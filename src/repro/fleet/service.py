"""The sweep service: campaigns in, bit-identical sweep reports out.

One fleet directory is the whole coordination surface::

    <root>/
      queue/      durable job queue (repro.fleet.queue)
      store/      sharded result store (repro.fleet.store)
      campaigns/  submitted sweep manifests, one per spec_hash
      service.json   service heartbeat (pid, workers, queue counts)

``repro submit`` resolves a named campaign to jobs, writes a **manifest**
(campaign name + ordered job hashes, keyed by the sweep's ``spec_hash``), and
enqueues the jobs -- deduplicating against both the live queue and results
already in the store.  A campaign whose report already exists is a pure warm
start: nothing is enqueued at all.

``repro serve`` runs :class:`FleetService`: each poll it recovers expired
leases, leases a slice of the queue, runs it through a
:class:`~repro.fleet.batching.BatchingExecutor` writing straight into the
store's job namespace, marks entries done, finalizes any manifest whose jobs
have all landed into a ``spec_hash``-keyed sweep report, and lets the
:class:`~repro.fleet.autoscaler.Autoscaler` resize the pool from observed
queue depth.

Determinism contract: the service orchestrates *which* jobs run where and
when, but every job still executes ``execute_job_with_stats`` and every
result payload is the job's pure function of its spec -- so fleet-run
payloads and reports are bit-identical to a serial run of the same campaign
(:func:`verify_campaign` asserts exactly that, and CI runs it).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.batching import BatchingExecutor
from repro.fleet.queue import STATE_FAILED, STATE_LEASED, STATE_QUEUED, JobQueue
from repro.fleet.store import (
    FLEET_SCHEMA_VERSION,
    ShardedResultStore,
    _atomic_write_json,
)
from repro.hashing import content_hash
from repro.obs import state as obs_state
from repro.runtime.campaign import CAMPAIGNS, Campaign
from repro.runtime.executor import SerialExecutor
from repro.runtime.jobs import SimSpec

__all__ = [
    "FleetConfig",
    "FleetPaths",
    "FleetService",
    "fleet_status",
    "resolve_campaign",
    "submit_campaign",
    "sweep_spec_hash",
    "verify_campaign",
]


# ---------------------------------------------------------------------------
# Layout and sweep identity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetPaths:
    """Where a fleet directory keeps each piece of shared state."""

    root: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))

    @property
    def queue_dir(self) -> Path:
        return self.root / "queue"

    @property
    def store_dir(self) -> Path:
        return self.root / "store"

    @property
    def campaigns_dir(self) -> Path:
        return self.root / "campaigns"

    @property
    def heartbeat(self) -> Path:
        return self.root / "service.json"


def sweep_spec_hash(campaign: Campaign) -> str:
    """The sweep's identity: what was asked for, not what came back.

    Hashes the campaign name plus the *ordered* job hashes under a schema
    stamp.  Two submissions asking for the same jobs in the same order share
    one report; capping ``max_simulated_time`` or swapping a policy changes
    every job hash and therefore the spec hash.
    """
    return content_hash(
        {
            "schema": FLEET_SCHEMA_VERSION,
            "kind": "fleet_sweep",
            "campaign": campaign.name,
            "jobs": [job.content_hash for job in campaign.jobs],
        }
    )


def resolve_campaign(
    name: str, quick: bool = False, max_time: Optional[float] = None
) -> Campaign:
    """A named catalog campaign, optionally capped for smoke runs."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r} (known: {known})") from None
    campaign = factory(quick=quick)
    if max_time is not None:
        campaign = campaign.with_sim(SimSpec(max_simulated_time=max_time))
    return campaign


def build_sweep_report(
    campaign_name: str,
    spec_hash: str,
    job_hashes: List[str],
    results: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """The canonical sweep-report document (pure function of its inputs)."""
    return {
        "schema": FLEET_SCHEMA_VERSION,
        "campaign": campaign_name,
        "spec_hash": spec_hash,
        "jobs": list(job_hashes),
        "results": {job_hash: results[job_hash] for job_hash in job_hashes},
    }


# ---------------------------------------------------------------------------
# Producer side (repro submit)
# ---------------------------------------------------------------------------


def submit_campaign(
    root: Path,
    campaign: Campaign,
    priority: int = 0,
    lease_timeout: float = 60.0,
    max_attempts: int = 3,
) -> Dict[str, Any]:
    """Submit a campaign's jobs to the fleet directory at ``root``.

    Writes the manifest, then enqueues jobs with store/queue dedup.  If the
    sweep's report is already stored, this is a pure warm start: no jobs are
    enqueued and ``warm_start`` is true in the returned summary.
    """
    paths = FleetPaths(Path(root))
    store = ShardedResultStore(paths.store_dir)
    queue = JobQueue(
        paths.queue_dir, lease_timeout=lease_timeout, max_attempts=max_attempts
    )
    spec_hash = sweep_spec_hash(campaign)
    job_hashes = [job.content_hash for job in campaign.jobs]
    manifest = {
        "schema": FLEET_SCHEMA_VERSION,
        "kind": "fleet_manifest",
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": job_hashes,
    }
    _atomic_write_json(paths.campaigns_dir / f"{spec_hash}.json", manifest)

    summary: Dict[str, Any] = {
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": len(job_hashes),
        "warm_start": store.get_report(spec_hash) is not None,
        "enqueued": 0,
        "deduped_store": 0,
        "deduped_queue": 0,
    }
    if summary["warm_start"]:
        return summary
    accounting = queue.submit_many(
        list(campaign.jobs), priority=priority, store=store
    )
    summary.update(accounting)
    obs_state.counter("fleet.submitted_jobs").inc(accounting["enqueued"])
    return summary


# ---------------------------------------------------------------------------
# The service loop (repro serve)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """Every knob ``repro serve`` exposes, in one place."""

    root: Path
    workers: int = 2
    batch_size: Optional[int] = None
    poll_interval: float = 0.2
    lease_timeout: float = 60.0
    #: Jobs leased (and handed to the executor) per poll.
    lease_limit: int = 64
    max_attempts: int = 3
    autoscale: bool = True
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    #: Drain mode: exit once the queue is empty and every manifest is
    #: finalized (after waiting up to ``drain_grace`` seconds for the first
    #: work to appear).  This is what CI and tests run.
    drain: bool = False
    drain_grace: float = 10.0
    #: Non-drain services exit after this many seconds with nothing to do
    #: (None = run until killed).
    idle_timeout: Optional[float] = None


class FleetService:
    """A long-lived worker loop over one fleet directory."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.paths = FleetPaths(Path(config.root))
        self.store = ShardedResultStore(self.paths.store_dir)
        self.queue = JobQueue(
            self.paths.queue_dir,
            lease_timeout=config.lease_timeout,
            max_attempts=config.max_attempts,
        )
        self.executor = BatchingExecutor(
            max_workers=config.workers, batch_size=config.batch_size
        )
        self.autoscaler = Autoscaler(
            config=config.autoscaler, workers=self.executor.max_workers
        )
        self.worker_name = f"service-{os.getpid()}"
        self.rounds = 0
        self.jobs_run = 0
        self.reports_finalized = 0

    # -- one poll's worth of work ---------------------------------------
    def run_once(self, now: Optional[float] = None) -> int:
        """Recover, lease, execute, complete, finalize, autoscale -- once.

        Returns the number of jobs executed (0 means the poll found nothing).
        ``now`` is injectable for tests; the default is the wall clock, which
        only ever gates *scheduling* (leases, cooldowns), never results.
        """
        now = time.time() if now is None else now
        self.rounds += 1
        self.queue.requeue_expired(now=now)
        leased = self.queue.lease(
            limit=self.config.lease_limit, worker=self.worker_name, now=now
        )
        if leased:
            jobs = [entry.build_job() for entry in leased]
            try:
                self.executor.run(jobs, cache=self.store.job_cache())
            except Exception as error:  # noqa: BLE001 - any job failure
                for entry in leased:
                    self.queue.fail(entry.job_hash, error=repr(error))
                raise
            for entry in leased:
                self.queue.complete(entry.job_hash)
            self.jobs_run += len(leased)
            obs_state.counter("fleet.jobs_completed").inc(len(leased))
        self.reports_finalized += self.finalize_reports()
        if self.config.autoscale:
            self._autoscale_tick(now)
        self._write_heartbeat(now)
        return len(leased)

    def _autoscale_tick(self, now: float) -> None:
        counts = self.queue.counts()
        decision = self.autoscaler.observe(
            {
                "t": now,
                "queue_depth": counts["queued"],
                "in_flight": counts["leased"],
                "workers": self.executor.max_workers,
            }
        )
        if decision.scaled:
            self.executor.resize(decision.workers)

    def finalize_reports(self) -> int:
        """Turn fully-landed manifests into stored ``spec_hash`` reports."""
        finalized = 0
        if not self.paths.campaigns_dir.is_dir():
            return 0
        for path in sorted(self.paths.campaigns_dir.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if (
                not isinstance(manifest, dict)
                or manifest.get("schema") != FLEET_SCHEMA_VERSION
                or manifest.get("kind") != "fleet_manifest"
            ):
                continue
            spec_hash = manifest["spec_hash"]
            if self.store.get_report(spec_hash) is not None:
                continue
            job_hashes = list(manifest["jobs"])
            results: Dict[str, Dict[str, Any]] = {}
            complete = True
            for job_hash in job_hashes:
                payload = self.store.job_payload(job_hash)
                if payload is None:
                    complete = False
                    break
                results[job_hash] = payload
            if not complete:
                continue
            self.store.put_report(
                spec_hash,
                build_sweep_report(
                    manifest["campaign"], spec_hash, job_hashes, results
                ),
            )
            finalized += 1
        return finalized

    def _pending_manifests(self) -> int:
        """Manifests whose reports are not stored yet."""
        if not self.paths.campaigns_dir.is_dir():
            return 0
        pending = 0
        for path in self.paths.campaigns_dir.glob("*.json"):
            spec_hash = path.stem
            if self.store.get_report(spec_hash) is None:
                pending += 1
        return pending

    def _write_heartbeat(self, now: float) -> None:
        _atomic_write_json(
            self.paths.heartbeat,
            {
                "schema": FLEET_SCHEMA_VERSION,
                "pid": os.getpid(),
                "worker": self.worker_name,
                "updated_unix": now,
                "workers": self.executor.max_workers,
                "rounds": self.rounds,
                "jobs_run": self.jobs_run,
                "queue": self.queue.counts(),
            },
        )

    def drained(self) -> bool:
        """Nothing queued, nothing leased, every manifest reported."""
        return self.queue.drained() and self._pending_manifests() == 0

    def serve_forever(self) -> Dict[str, Any]:
        """The ``repro serve`` loop; returns a summary when it exits.

        Drain mode waits up to ``drain_grace`` for work to first appear, then
        exits as soon as the directory is fully drained -- the shape CI's
        background-service smoke test relies on.  Otherwise the loop runs
        until ``idle_timeout`` (if set) elapses with nothing to do.
        """
        config = self.config
        started = time.time()
        saw_work = False
        idle_since: Optional[float] = None
        try:
            while True:
                executed = self.run_once()
                now = time.time()
                if executed:
                    saw_work = True
                    idle_since = None
                    continue
                counts = self.queue.counts()
                queue_empty = (
                    counts[STATE_QUEUED] == 0 and counts[STATE_LEASED] == 0
                )
                if self.drained():
                    if config.drain and (saw_work or now - started >= config.drain_grace):
                        break
                    if idle_since is None:
                        idle_since = now
                    if (
                        config.idle_timeout is not None
                        and now - idle_since >= config.idle_timeout
                    ):
                        break
                elif config.drain and queue_empty and counts[STATE_FAILED] > 0:
                    # Manifests are pending but their jobs have permanently
                    # failed: draining further cannot make progress.  Exit and
                    # let the status/verify side report the failures.
                    break
                time.sleep(config.poll_interval)
        finally:
            self.executor.close()
        return {
            "rounds": self.rounds,
            "jobs_run": self.jobs_run,
            "reports_finalized": self.reports_finalized,
            "drained": self.drained(),
            "workers": self.executor.max_workers,
            "scaling_events": sum(
                1 for decision in self.autoscaler.decisions if decision.scaled
            ),
        }


# ---------------------------------------------------------------------------
# Status and verification (repro fleet ...)
# ---------------------------------------------------------------------------


def fleet_status(root: Path) -> Dict[str, Any]:
    """A JSON-friendly snapshot of one fleet directory's state."""
    paths = FleetPaths(Path(root))
    store = ShardedResultStore(paths.store_dir)
    queue = JobQueue(paths.queue_dir)
    campaigns = []
    if paths.campaigns_dir.is_dir():
        for path in sorted(paths.campaigns_dir.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(manifest, dict) or "jobs" not in manifest:
                continue
            job_hashes = list(manifest["jobs"])
            landed = sum(1 for h in job_hashes if store.has_job(h))
            campaigns.append(
                {
                    "campaign": manifest.get("campaign"),
                    "spec_hash": manifest.get("spec_hash"),
                    "jobs": len(job_hashes),
                    "landed": landed,
                    "reported": store.get_report(path.stem) is not None,
                }
            )
    service: Optional[Dict[str, Any]] = None
    try:
        with paths.heartbeat.open("r", encoding="utf-8") as handle:
            beat = json.load(handle)
        if isinstance(beat, dict):
            service = beat
    except (OSError, ValueError):
        service = None
    counts = queue.counts()
    return {
        "root": str(paths.root),
        "queue": counts,
        "drained": counts["queued"] == 0
        and counts["leased"] == 0
        and all(entry["reported"] for entry in campaigns),
        "store": store.stats(),
        "campaigns": campaigns,
        "service": service,
    }


def verify_campaign(root: Path, campaign: Campaign) -> Dict[str, Any]:
    """Check fleet results for ``campaign`` against a serial re-run.

    Runs every campaign job serially (through the same cache-free path) and
    compares payload content hashes job by job, plus the stored sweep report
    against a freshly built one.  This is the executable form of the fleet's
    bit-identity guarantee; CI runs it after the smoke sweep.
    """
    store = ShardedResultStore(FleetPaths(Path(root)).store_dir)
    spec_hash = sweep_spec_hash(campaign)
    serial_report = SerialExecutor().run(campaign.jobs)
    mismatched: List[str] = []
    missing: List[str] = []
    serial_results: Dict[str, Dict[str, Any]] = {}
    for outcome in serial_report.outcomes:
        job_hash = outcome.job.content_hash
        serial_results[job_hash] = outcome.payload
        stored = store.job_payload(job_hash)
        if stored is None:
            missing.append(job_hash)
        elif content_hash(stored) != content_hash(outcome.payload):
            mismatched.append(job_hash)
    stored_report = store.get_report(spec_hash)
    expected_report = build_sweep_report(
        campaign.name,
        spec_hash,
        [job.content_hash for job in campaign.jobs],
        serial_results,
    )
    report_ok = stored_report is not None and content_hash(
        stored_report
    ) == content_hash(expected_report)
    return {
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": len(campaign.jobs),
        "missing": missing,
        "mismatched": mismatched,
        "report_ok": report_ok,
        "ok": not missing and not mismatched and report_ok,
    }
