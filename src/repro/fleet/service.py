"""The sweep service: campaigns in, bit-identical sweep reports out.

One fleet directory is the whole coordination surface::

    <root>/
      queue/      durable job queue (repro.fleet.queue)
      store/      sharded result store (repro.fleet.store)
      campaigns/  submitted sweep manifests, one per spec_hash
      service.json   service heartbeat (pid, workers, queue counts)

``repro submit`` resolves a named campaign to jobs, writes a **manifest**
(campaign name + ordered job hashes, keyed by the sweep's ``spec_hash``), and
enqueues the jobs -- deduplicating against both the live queue and results
already in the store.  A campaign whose report already exists is a pure warm
start: nothing is enqueued at all.

``repro serve`` runs :class:`FleetService`: each poll it recovers expired
leases, leases a slice of the queue, runs it through a
:class:`~repro.fleet.batching.BatchingExecutor` writing straight into the
store's job namespace, marks entries done, finalizes any manifest whose jobs
have all landed into a ``spec_hash``-keyed sweep report, and lets the
:class:`~repro.fleet.autoscaler.Autoscaler` resize the pool from observed
queue depth.

Determinism contract: the service orchestrates *which* jobs run where and
when, but every job still executes ``execute_job_with_stats`` and every
result payload is the job's pure function of its spec -- so fleet-run
payloads and reports are bit-identical to a serial run of the same campaign
(:func:`verify_campaign` asserts exactly that, and CI runs it).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from concurrent.futures.process import BrokenProcessPool

from repro.fleet.autoscaler import Autoscaler, AutoscalerConfig
from repro.fleet.batching import BatchingExecutor
from repro.fleet.faults import directive_hook
from repro.fleet.queue import (
    COUNT_CORRUPT,
    COUNT_TRANSIENT,
    STATE_FAILED,
    STATE_LEASED,
    STATE_QUEUED,
    JobQueue,
    QueueEntry,
)
from repro.fleet.resilience import (
    QUARANTINE_SUBDIR,
    FailureRecord,
    Quarantine,
    _pid_alive,
    _restore_from_store,
)
from repro.fleet.store import (
    FLEET_SCHEMA_VERSION,
    ShardedResultStore,
    _atomic_write_json,
)
from repro.hashing import content_hash
from repro.obs import state as obs_state
from repro.runtime.campaign import CAMPAIGNS, Campaign
from repro.runtime.executor import JobFailure, SerialExecutor
from repro.runtime.jobs import SimSpec

__all__ = [
    "FleetConfig",
    "FleetPaths",
    "FleetService",
    "fleet_status",
    "resolve_campaign",
    "submit_campaign",
    "sweep_spec_hash",
    "verify_campaign",
]


# ---------------------------------------------------------------------------
# Layout and sweep identity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetPaths:
    """Where a fleet directory keeps each piece of shared state."""

    root: Path

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))

    @property
    def queue_dir(self) -> Path:
        return self.root / "queue"

    @property
    def store_dir(self) -> Path:
        return self.root / "store"

    @property
    def campaigns_dir(self) -> Path:
        return self.root / "campaigns"

    @property
    def heartbeat(self) -> Path:
        return self.root / "service.json"


def sweep_spec_hash(campaign: Campaign) -> str:
    """The sweep's identity: what was asked for, not what came back.

    Hashes the campaign name plus the *ordered* job hashes under a schema
    stamp.  Two submissions asking for the same jobs in the same order share
    one report; capping ``max_simulated_time`` or swapping a policy changes
    every job hash and therefore the spec hash.
    """
    return content_hash(
        {
            "schema": FLEET_SCHEMA_VERSION,
            "kind": "fleet_sweep",
            "campaign": campaign.name,
            "jobs": [job.content_hash for job in campaign.jobs],
        }
    )


def resolve_campaign(
    name: str, quick: bool = False, max_time: Optional[float] = None
) -> Campaign:
    """A named catalog campaign, optionally capped for smoke runs."""
    try:
        factory = CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r} (known: {known})") from None
    campaign = factory(quick=quick)
    if max_time is not None:
        campaign = campaign.with_sim(SimSpec(max_simulated_time=max_time))
    return campaign


def build_sweep_report(
    campaign_name: str,
    spec_hash: str,
    job_hashes: List[str],
    results: Dict[str, Dict[str, Any]],
) -> Dict[str, Any]:
    """The canonical sweep-report document (pure function of its inputs)."""
    return {
        "schema": FLEET_SCHEMA_VERSION,
        "campaign": campaign_name,
        "spec_hash": spec_hash,
        "jobs": list(job_hashes),
        "results": {job_hash: results[job_hash] for job_hash in job_hashes},
    }


# ---------------------------------------------------------------------------
# Producer side (repro submit)
# ---------------------------------------------------------------------------


def submit_campaign(
    root: Path,
    campaign: Campaign,
    priority: int = 0,
    lease_timeout: float = 60.0,
    max_attempts: int = 3,
) -> Dict[str, Any]:
    """Submit a campaign's jobs to the fleet directory at ``root``.

    Writes the manifest, then enqueues jobs with store/queue dedup.  If the
    sweep's report is already stored, this is a pure warm start: no jobs are
    enqueued and ``warm_start`` is true in the returned summary.
    """
    paths = FleetPaths(Path(root))
    store = ShardedResultStore(paths.store_dir)
    queue = JobQueue(
        paths.queue_dir, lease_timeout=lease_timeout, max_attempts=max_attempts
    )
    spec_hash = sweep_spec_hash(campaign)
    job_hashes = [job.content_hash for job in campaign.jobs]
    manifest = {
        "schema": FLEET_SCHEMA_VERSION,
        "kind": "fleet_manifest",
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": job_hashes,
    }
    _atomic_write_json(paths.campaigns_dir / f"{spec_hash}.json", manifest)

    summary: Dict[str, Any] = {
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": len(job_hashes),
        "warm_start": store.get_report(spec_hash) is not None,
        "enqueued": 0,
        "deduped_store": 0,
        "deduped_queue": 0,
    }
    if summary["warm_start"]:
        return summary
    accounting = queue.submit_many(
        list(campaign.jobs), priority=priority, store=store
    )
    summary.update(accounting)
    obs_state.counter("fleet.submitted_jobs").inc(accounting["enqueued"])
    return summary


# ---------------------------------------------------------------------------
# The service loop (repro serve)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """Every knob ``repro serve`` exposes, in one place."""

    root: Path
    workers: int = 2
    batch_size: Optional[int] = None
    poll_interval: float = 0.2
    lease_timeout: float = 60.0
    #: Jobs leased (and handed to the executor) per poll.
    lease_limit: int = 64
    max_attempts: int = 3
    autoscale: bool = True
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    #: Drain mode: exit once the queue is empty and every manifest is
    #: finalized (after waiting up to ``drain_grace`` seconds for the first
    #: work to appear).  This is what CI and tests run.
    drain: bool = False
    drain_grace: float = 10.0
    #: Non-drain services exit after this many seconds with nothing to do
    #: (None = run until killed).
    idle_timeout: Optional[float] = None
    #: Optional chaos plan (:class:`repro.fleet.faults.FaultPlan`) threaded
    #: into the queue, the store's report namespace, and job dispatch.
    #: ``None`` in production (``repro serve --faults`` / ``REPRO_FLEET_FAULTS``
    #: set it for chaos runs).
    faults: Optional[Any] = None


class FleetService:
    """A long-lived worker loop over one fleet directory."""

    #: Entry note marking a suspected pool-breaker (dispatched solo).
    POOL_SUSPECT = "pool-suspect"

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.paths = FleetPaths(Path(config.root))
        self.store = ShardedResultStore(self.paths.store_dir, faults=config.faults)
        self.queue = JobQueue(
            self.paths.queue_dir,
            lease_timeout=config.lease_timeout,
            max_attempts=config.max_attempts,
            faults=config.faults,
        )
        self.quarantine = Quarantine(self.paths.root / QUARANTINE_SUBDIR)
        self.executor = BatchingExecutor(
            max_workers=config.workers, batch_size=config.batch_size
        )
        self.autoscaler = Autoscaler(
            config=config.autoscaler, workers=self.executor.max_workers
        )
        self.worker_name = f"service-{os.getpid()}"
        self.rounds = 0
        self.jobs_run = 0
        self.jobs_failed = 0
        self.jobs_quarantined = 0
        self.reports_finalized = 0
        self.poll_errors = 0
        #: Last in-memory copy of every entry this service has leased --
        #: the healing source when an entry's on-disk file gets torn.
        self._known: Dict[str, QueueEntry] = {}
        #: Per-job failure history observed by this process (feeds the
        #: quarantine ``FailureRecord``; tracebacks included).
        self._failure_history: Dict[str, List[Dict[str, Any]]] = {}

    # -- one poll's worth of work ---------------------------------------
    def run_once(self, now: Optional[float] = None) -> int:
        """Heal, recover, lease, execute, quarantine, finalize -- once.

        Returns the number of jobs *completed* (0 means the poll found
        nothing, or everything it found failed).  Per-job failures never
        propagate out of here: culprits are ``fail()``ed behind a backoff
        window (and eventually quarantined), healthy co-leased jobs complete.
        ``now`` is injectable for tests; the default is the wall clock, which
        only ever gates *scheduling* (leases, cooldowns, backoff), never
        results.
        """
        now = time.time() if now is None else now
        self.rounds += 1
        self._heal_corrupt(now)
        self.queue.requeue_expired(now=now)
        self._quarantine_exhausted(now)
        leased = self.queue.lease(
            limit=self.config.lease_limit, worker=self.worker_name, now=now
        )
        completed = 0
        if leased:
            # Suspected pool-breakers run solo so a repeat collapse names its
            # culprit exactly; everything else shares one dispatch.
            solo = [e for e in leased if e.note == self.POOL_SUSPECT]
            grouped = [e for e in leased if e.note != self.POOL_SUSPECT]
            for entry in leased:
                self._known[entry.job_hash] = entry
            for dispatch in [[entry] for entry in solo] + (
                [grouped] if grouped else []
            ):
                completed += self._dispatch(dispatch, now)
            # Sweep again so a job exhausted by *this* poll's dispatch is
            # quarantined before a draining loop can observe it and exit.
            self._quarantine_exhausted(now)
        self.reports_finalized += self.finalize_reports()
        if self.config.autoscale:
            self._autoscale_tick(now)
        self._write_heartbeat(now)
        return completed

    # -- dispatch and failure isolation ---------------------------------
    def _dispatch(self, entries: List[QueueEntry], now: float) -> int:
        """Run one leased slice; complete survivors, fail culprits."""
        jobs = [entry.build_job() for entry in entries]
        pre_hook = None
        if self.config.faults is not None:
            directives = self.config.faults.job_directives(
                [(entry.job_hash, entry.attempts) for entry in entries]
            )
            if directives:
                pre_hook = directive_hook(directives)
        failures: Dict[str, JobFailure] = {}

        def on_error(job: Any, failure: JobFailure) -> None:
            failures[job.content_hash] = failure

        try:
            self.executor.run(
                jobs,
                cache=self.store.job_cache(),
                on_error=on_error,
                pre_hook=pre_hook,
            )
        except BrokenProcessPool:
            self._recover_pool_break(entries, now)
            return 0
        except Exception as error:  # noqa: BLE001 - infrastructure failure
            # Not a per-job error (isolation would have routed it): charge
            # the whole slice one attempt and keep the service alive.
            obs_state.counter("fleet.failures.dispatch").inc()
            failure = JobFailure(
                job_hash="",
                kind=type(error).__name__,
                message=str(error),
                traceback="",
            )
            for entry in entries:
                self._fail_entry(entry, failure, now)
            return 0
        completed = 0
        for entry in entries:
            failure = failures.get(entry.job_hash)
            if failure is None:
                # fallback= heals a torn/corrupt on-disk lease record.
                self.queue.complete(entry.job_hash, fallback=entry)
                completed += 1
            else:
                self._fail_entry(entry, failure, now)
        if completed:
            self.jobs_run += completed
            obs_state.counter("fleet.jobs_completed").inc(completed)
        return completed

    def _recover_pool_break(self, entries: List[QueueEntry], now: float) -> None:
        """A worker died and poisoned the pool: requeue, suspect, recover.

        The executor has already torn the broken pool down (a fresh one is
        built lazily on the next dispatch).  Results from this slice never
        landed, so: a solo dispatch identifies its culprit exactly and is
        charged the attempt; a shared dispatch releases every entry with the
        attempt *refunded* and marks them pool-suspects to be retried solo.
        Repeat solo breakers exhaust their budget and end up quarantined as
        poison.
        """
        obs_state.counter("fleet.failures.pool_breaks").inc()
        for entry in entries:
            if self.store.has_job(entry.job_hash):
                self.queue.complete(entry.job_hash, fallback=entry)
                continue
            if len(entries) == 1:
                self._record_history(
                    entry,
                    "BrokenProcessPool",
                    "worker process died during solo dispatch",
                )
                self.queue.fail(
                    entry.job_hash,
                    error="BrokenProcessPool: worker died during solo dispatch",
                    now=now,
                    fallback=entry,
                )
                self.jobs_failed += 1
                obs_state.counter("fleet.failures.jobs").inc()
            else:
                self.queue.release(
                    entry.job_hash, note=self.POOL_SUSPECT, fallback=entry
                )
                obs_state.counter("fleet.retries.pool_suspects").inc()

    def _fail_entry(
        self, entry: QueueEntry, failure: JobFailure, now: float
    ) -> None:
        self._record_history(
            entry, failure.kind, failure.message, failure.traceback
        )
        updated = self.queue.fail(
            entry.job_hash, error=failure.describe(), now=now, fallback=entry
        )
        self.jobs_failed += 1
        obs_state.counter("fleet.failures.jobs").inc()
        if updated.state == STATE_QUEUED:
            obs_state.counter("fleet.retries.scheduled").inc()

    def _record_history(
        self,
        entry: QueueEntry,
        error_class: str,
        message: str,
        traceback: str = "",
    ) -> None:
        record: Dict[str, Any] = {
            "attempt": entry.attempts,
            "error_class": error_class,
            "error": f"{error_class}: {message}",
        }
        if traceback:
            record["traceback"] = traceback
        self._failure_history.setdefault(entry.job_hash, []).append(record)

    # -- healing and quarantine -----------------------------------------
    def _heal_corrupt(self, now: float) -> None:
        """Restore or quarantine unreadable queue-entry files.

        Restoration sources, in order: the store (result already landed ->
        rewrite as ``done``), this service's in-memory copy (we leased it ->
        requeue it).  A corrupt file with neither source is left alone until
        it is older than the lease timeout -- an in-flight torn write gets
        healed by ``complete(fallback=...)`` within one poll -- then moved,
        bytes intact, into quarantine with a ``FailureRecord``.
        """
        _, corrupt, _ = self.queue.scan()
        for path in corrupt:
            job_hash = path.stem
            if self.store.has_job(job_hash) and _restore_from_store(
                self.queue, self.store, job_hash
            ):
                obs_state.counter("fleet.failures.corrupt_healed").inc()
                continue
            known = self._known.get(job_hash)
            if known is not None:
                self.queue.record_queued(known, note="healed")
                obs_state.counter("fleet.failures.corrupt_healed").inc()
                continue
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue
            if age <= self.config.lease_timeout:
                continue
            self.quarantine.add(
                FailureRecord(
                    job_hash=job_hash,
                    reason="corrupt-entry",
                    error_class="ValueError",
                    message="unreadable queue entry with no recovery source",
                    attempts=0,
                    recorded_unix=now,
                )
            )
            self.quarantine.absorb_corrupt(path)
            self.jobs_quarantined += 1
            obs_state.counter("fleet.failures.quarantined").inc()

    def _quarantine_exhausted(self, now: float) -> None:
        """Move terminally-failed entries out of the queue, with forensics."""
        for entry in self.queue.entries():
            if entry.state != STATE_FAILED:
                continue
            history = tuple(self._failure_history.pop(entry.job_hash, ()))
            error_class = (
                history[-1].get("error_class", "Exception")
                if history
                else "Exception"
            )
            self.quarantine.add(
                FailureRecord(
                    job_hash=entry.job_hash,
                    reason=(
                        "poison-pool"
                        if entry.note == self.POOL_SUSPECT
                        else "exhausted"
                    ),
                    error_class=error_class,
                    message=entry.error or "",
                    attempts=entry.attempts,
                    job=entry.job,
                    history=history,
                    recorded_unix=now,
                )
            )
            self.queue.remove(entry.job_hash)
            self._known.pop(entry.job_hash, None)
            self.jobs_quarantined += 1
            obs_state.counter("fleet.failures.quarantined").inc()

    def _autoscale_tick(self, now: float) -> None:
        counts = self.queue.counts()
        decision = self.autoscaler.observe(
            {
                "t": now,
                "queue_depth": counts["queued"],
                "in_flight": counts["leased"],
                "workers": self.executor.max_workers,
            }
        )
        if decision.scaled:
            self.executor.resize(decision.workers)

    def finalize_reports(self) -> int:
        """Turn fully-landed manifests into stored ``spec_hash`` reports."""
        finalized = 0
        if not self.paths.campaigns_dir.is_dir():
            return 0
        for path in sorted(self.paths.campaigns_dir.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if (
                not isinstance(manifest, dict)
                or manifest.get("schema") != FLEET_SCHEMA_VERSION
                or manifest.get("kind") != "fleet_manifest"
            ):
                continue
            spec_hash = manifest["spec_hash"]
            if self.store.get_report(spec_hash) is not None:
                continue
            job_hashes = list(manifest["jobs"])
            results: Dict[str, Dict[str, Any]] = {}
            complete = True
            for job_hash in job_hashes:
                payload = self.store.job_payload(job_hash)
                if payload is None:
                    complete = False
                    break
                results[job_hash] = payload
            if not complete:
                continue
            self.store.put_report(
                spec_hash,
                build_sweep_report(
                    manifest["campaign"], spec_hash, job_hashes, results
                ),
            )
            finalized += 1
        return finalized

    def _pending_manifests(self) -> int:
        """Manifests whose reports are not stored yet."""
        if not self.paths.campaigns_dir.is_dir():
            return 0
        pending = 0
        for path in self.paths.campaigns_dir.glob("*.json"):
            spec_hash = path.stem
            if self.store.get_report(spec_hash) is None:
                pending += 1
        return pending

    def _write_heartbeat(self, now: float) -> None:
        _atomic_write_json(
            self.paths.heartbeat,
            {
                "schema": FLEET_SCHEMA_VERSION,
                "pid": os.getpid(),
                "worker": self.worker_name,
                "updated_unix": now,
                "workers": self.executor.max_workers,
                "rounds": self.rounds,
                "jobs_run": self.jobs_run,
                "queue": self.queue.counts(),
            },
        )

    def drained(self) -> bool:
        """Nothing queued, nothing leased, every manifest reported."""
        return self.queue.drained() and self._pending_manifests() == 0

    def serve_forever(self) -> Dict[str, Any]:
        """The ``repro serve`` loop; returns a summary when it exits.

        Drain mode waits up to ``drain_grace`` for work to first appear, then
        exits as soon as the directory is fully drained -- the shape CI's
        background-service smoke test relies on.  Otherwise the loop runs
        until ``idle_timeout`` (if set) elapses with nothing to do.
        """
        config = self.config
        started = time.time()
        saw_work = False
        drained_at_exit = False
        idle_since: Optional[float] = None
        try:
            while True:
                try:
                    executed = self.run_once()
                except Exception:  # noqa: BLE001 - degrade, keep polling
                    # An injected (or real) infrastructure error escaped a
                    # poll -- e.g. an OSError out of a queue write.  The
                    # queue's durable state self-recovers (leases expire,
                    # corrupt files heal); crashing the service would not.
                    self.poll_errors += 1
                    obs_state.counter("fleet.failures.poll_errors").inc()
                    time.sleep(config.poll_interval)
                    continue
                now = time.time()
                if executed:
                    saw_work = True
                    idle_since = None
                    continue
                counts = self.queue.counts()
                queue_empty = (
                    counts[STATE_QUEUED] == 0 and counts[STATE_LEASED] == 0
                )
                if self.drained():
                    # drained() is only ever True on a complete (nothing
                    # transient-hidden) scan, so the observation is
                    # trustworthy at this instant -- record it for the
                    # summary, whose own rescan could be degraded.
                    if config.drain and (saw_work or now - started >= config.drain_grace):
                        drained_at_exit = True
                        break
                    if idle_since is None:
                        idle_since = now
                    if (
                        config.idle_timeout is not None
                        and now - idle_since >= config.idle_timeout
                    ):
                        drained_at_exit = True
                        break
                elif (
                    config.drain
                    and queue_empty
                    and counts[COUNT_CORRUPT] == 0
                    and counts[COUNT_TRANSIENT] == 0
                    and (
                        counts[STATE_FAILED] > 0
                        or self.quarantine.counts()["jobs"] > 0
                    )
                ):
                    # Manifests are pending but their missing jobs are
                    # terminally failed or quarantined: draining further
                    # cannot make progress.  Exit and let status/doctor/
                    # verify report the damage.
                    break
                time.sleep(config.poll_interval)
        finally:
            self.executor.close()
        return {
            "rounds": self.rounds,
            "jobs_run": self.jobs_run,
            "jobs_failed": self.jobs_failed,
            "jobs_quarantined": self.jobs_quarantined,
            "poll_errors": self.poll_errors,
            "reports_finalized": self.reports_finalized,
            "drained": drained_at_exit or self.drained(),
            "workers": self.executor.max_workers,
            "scaling_events": sum(
                1 for decision in self.autoscaler.decisions if decision.scaled
            ),
            "faults": (
                self.config.faults.summary()
                if self.config.faults is not None
                else {}
            ),
        }


# ---------------------------------------------------------------------------
# Status and verification (repro fleet ...)
# ---------------------------------------------------------------------------


def fleet_status(
    root: Path,
    now: Optional[float] = None,
    stale_after: float = 30.0,
) -> Dict[str, Any]:
    """A JSON-friendly snapshot of one fleet directory's state.

    The ``service`` block carries a ``health`` verdict: heartbeat age, pid
    liveness, and a ``stale`` flag (age beyond ``stale_after`` or a dead
    pid) -- a wedged or killed service reads as exactly that, not healthy.
    """
    now = time.time() if now is None else now
    paths = FleetPaths(Path(root))
    store = ShardedResultStore(paths.store_dir)
    queue = JobQueue(paths.queue_dir)
    campaigns = []
    if paths.campaigns_dir.is_dir():
        for path in sorted(paths.campaigns_dir.glob("*.json")):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(manifest, dict) or "jobs" not in manifest:
                continue
            job_hashes = list(manifest["jobs"])
            landed = sum(1 for h in job_hashes if store.has_job(h))
            campaigns.append(
                {
                    "campaign": manifest.get("campaign"),
                    "spec_hash": manifest.get("spec_hash"),
                    "jobs": len(job_hashes),
                    "landed": landed,
                    "reported": store.get_report(path.stem) is not None,
                }
            )
    service: Optional[Dict[str, Any]] = None
    try:
        with paths.heartbeat.open("r", encoding="utf-8") as handle:
            beat = json.load(handle)
        if isinstance(beat, dict):
            service = dict(beat)
    except (OSError, ValueError):
        service = None
    if service is not None:
        age = now - float(service.get("updated_unix", 0.0))
        pid = int(service.get("pid", -1))
        alive = pid > 0 and _pid_alive(pid)
        service["health"] = {
            "age_seconds": age,
            "alive": alive,
            "stale": age > stale_after or not alive,
        }
    counts = queue.counts()
    quarantine = Quarantine(paths.root / QUARANTINE_SUBDIR)
    return {
        "root": str(paths.root),
        "queue": counts,
        "drained": counts["queued"] == 0
        and counts["leased"] == 0
        and counts[COUNT_TRANSIENT] == 0
        and all(entry["reported"] for entry in campaigns),
        "store": store.stats(),
        "quarantine": quarantine.counts(),
        "campaigns": campaigns,
        "service": service,
    }


def verify_campaign(root: Path, campaign: Campaign) -> Dict[str, Any]:
    """Check fleet results for ``campaign`` against a serial re-run.

    Runs every campaign job serially (through the same cache-free path) and
    compares payload content hashes job by job, plus the stored sweep report
    against a freshly built one.  This is the executable form of the fleet's
    bit-identity guarantee; CI runs it after the smoke sweep.
    """
    store = ShardedResultStore(FleetPaths(Path(root)).store_dir)
    spec_hash = sweep_spec_hash(campaign)
    serial_report = SerialExecutor().run(campaign.jobs)
    mismatched: List[str] = []
    missing: List[str] = []
    serial_results: Dict[str, Dict[str, Any]] = {}
    for outcome in serial_report.outcomes:
        job_hash = outcome.job.content_hash
        serial_results[job_hash] = outcome.payload
        stored = store.job_payload(job_hash)
        if stored is None:
            missing.append(job_hash)
        elif content_hash(stored) != content_hash(outcome.payload):
            mismatched.append(job_hash)
    stored_report = store.get_report(spec_hash)
    expected_report = build_sweep_report(
        campaign.name,
        spec_hash,
        [job.content_hash for job in campaign.jobs],
        serial_results,
    )
    report_ok = stored_report is not None and content_hash(
        stored_report
    ) == content_hash(expected_report)
    return {
        "campaign": campaign.name,
        "spec_hash": spec_hash,
        "jobs": len(campaign.jobs),
        "missing": missing,
        "mismatched": mismatched,
        "report_ok": report_ok,
        "ok": not missing and not mismatched and report_ok,
    }
