"""A node-fleet-style scaling decision engine over executor telemetry.

The autoscaler never touches the executor's internals: it consumes the same
``executor.queue_depth`` / ``executor.in_flight`` / ``executor.workers``
gauges every other observer reads (``obs.snapshot()`` live, or
``timeseries.sample`` trace events recorded earlier), and emits
:class:`ScalingDecision` objects.  The service applies them with
``ParallelExecutor.resize``; tests replay recorded sample fixtures through
:meth:`Autoscaler.observe` and assert on the decision table.

The algorithm is the classic reactive fleet-scaling shape:

* **Sustained-load windows** -- one deep-queue sample never scales anything;
  the queue depth must sit above ``scale_up_depth`` (or below
  ``scale_down_depth``) for ``sustained_readings`` *consecutive* samples.
  A single sample on the other side resets the streak, so transient spikes
  and troughs are ignored.
* **Cooldowns** -- after a scaling event, further moves in *either* direction
  wait out a cooldown (``scale_up_cooldown`` / ``scale_down_cooldown``,
  asymmetric so the fleet grows eagerly and shrinks reluctantly).  On this
  executor a resize costs a pool restart, so thrash is pure waste.
* **Bounds** -- worker counts clamp to ``[min_workers, max_workers]``; a
  streak that would cross a bound holds instead.

All timing comes from the *samples* (``t`` from ``timeseries.sample`` events
or monotonic sampler time), never from the wall clock, so replaying a
recorded time series yields the identical decision sequence every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs import state as obs_state

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ScalingDecision",
    "sample_from_snapshot",
]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds, windows, cooldowns, and bounds for the decision engine."""

    min_workers: int = 1
    max_workers: int = 4
    #: Queue depth at/above which a sample counts toward scaling up.
    scale_up_depth: float = 8.0
    #: Queue depth at/below which a sample counts toward scaling down
    #: (idle-ish: in-flight work does not block a scale-down on its own).
    scale_down_depth: float = 1.0
    #: Consecutive qualifying samples required before either move.
    sustained_readings: int = 2
    #: Seconds (of sample time) to hold after any scaling event.
    scale_up_cooldown: float = 2.0
    scale_down_cooldown: float = 10.0
    #: Workers added / removed per event.  Growing by more than it shrinks
    #: is deliberate: a deep queue costs throughput now, spare workers cost
    #: only their idle keep-alive.
    scale_up_step: int = 2
    scale_down_step: int = 1

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be at least 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.scale_down_depth > self.scale_up_depth:
            raise ValueError("scale_down_depth must not exceed scale_up_depth")
        if self.sustained_readings < 1:
            raise ValueError("sustained_readings must be at least 1")
        if self.scale_up_step < 1 or self.scale_down_step < 1:
            raise ValueError("scaling steps must be at least 1")


@dataclass(frozen=True)
class ScalingDecision:
    """One evaluated sample: what (if anything) the fleet should do."""

    action: str  # "scale_up" | "scale_down" | "hold"
    workers: int  # target worker count after this decision
    previous: int
    reason: str
    at: float  # sample time the decision was made at

    @property
    def scaled(self) -> bool:
        return self.action != "hold"


def sample_from_snapshot(
    snapshot: Mapping[str, Any], t: float
) -> Dict[str, float]:
    """Shape a live ``obs.snapshot()`` like a ``timeseries.sample`` event.

    Lets the service feed the autoscaler from the ambient registry with the
    exact field names recorded fixtures use, so tests and production run the
    same :meth:`Autoscaler.observe` code path.
    """
    gauges = snapshot.get("gauges", {})
    return {
        "t": t,
        "queue_depth": float(gauges.get("executor.queue_depth", 0.0)),
        "in_flight": float(gauges.get("executor.in_flight", 0.0)),
        "workers": float(gauges.get("executor.workers", 0.0)),
    }


@dataclass
class Autoscaler:
    """Feed samples in, get a :class:`ScalingDecision` per sample out."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    workers: int = 0  # current target; 0 means "adopt the first sample's"
    _high_streak: int = field(init=False, default=0)
    _low_streak: int = field(init=False, default=0)
    _last_scale_at: Optional[float] = field(init=False, default=None)
    decisions: List[ScalingDecision] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.workers:
            self.workers = self._clamp(self.workers)

    def _clamp(self, workers: int) -> int:
        return max(self.config.min_workers, min(self.config.max_workers, workers))

    def _decide(self, action: str, workers: int, reason: str, t: float) -> ScalingDecision:
        decision = ScalingDecision(
            action=action,
            workers=workers,
            previous=self.workers,
            reason=reason,
            at=t,
        )
        self.decisions.append(decision)
        if decision.scaled:
            self.workers = workers
            self._last_scale_at = t
            self._high_streak = 0
            self._low_streak = 0
            obs_state.counter(f"fleet.autoscaler.{action}").inc()
        obs_state.gauge("fleet.autoscaler.target_workers").set(self.workers)
        return decision

    def observe(self, sample: Mapping[str, Any]) -> ScalingDecision:
        """Evaluate one ``timeseries.sample``-shaped mapping.

        Requires ``t`` and ``queue_depth``; ``workers`` seeds the current
        target on the first sample if the autoscaler was not told a starting
        size.  Returns the decision (also appended to :attr:`decisions`).
        """
        cfg = self.config
        t = float(sample["t"])
        depth = float(sample["queue_depth"])
        if self.workers == 0:
            self.workers = self._clamp(int(sample.get("workers") or 0) or cfg.min_workers)

        # Streak accounting happens before cooldown gating so that load
        # sustained *through* a cooldown acts the moment the cooldown ends.
        if depth >= cfg.scale_up_depth:
            self._high_streak += 1
            self._low_streak = 0
        elif depth <= cfg.scale_down_depth:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        if self._high_streak >= cfg.sustained_readings:
            if self._last_scale_at is not None:
                elapsed = t - self._last_scale_at
                if elapsed < cfg.scale_up_cooldown:
                    return self._decide(
                        "hold",
                        self.workers,
                        f"scale-up wanted but cooling down "
                        f"({elapsed:.1f}s < {cfg.scale_up_cooldown:.1f}s)",
                        t,
                    )
            target = self._clamp(self.workers + cfg.scale_up_step)
            if target == self.workers:
                return self._decide(
                    "hold",
                    self.workers,
                    f"queue depth {depth:.0f} sustained but already at "
                    f"max_workers={cfg.max_workers}",
                    t,
                )
            return self._decide(
                "scale_up",
                target,
                f"queue depth {depth:.0f} >= {cfg.scale_up_depth:.0f} for "
                f"{self._high_streak} consecutive samples",
                t,
            )

        if self._low_streak >= cfg.sustained_readings:
            if self._last_scale_at is not None:
                elapsed = t - self._last_scale_at
                if elapsed < cfg.scale_down_cooldown:
                    return self._decide(
                        "hold",
                        self.workers,
                        f"scale-down wanted but cooling down "
                        f"({elapsed:.1f}s < {cfg.scale_down_cooldown:.1f}s)",
                        t,
                    )
            target = self._clamp(self.workers - cfg.scale_down_step)
            if target == self.workers:
                return self._decide(
                    "hold",
                    self.workers,
                    f"queue depth {depth:.0f} idle but already at "
                    f"min_workers={cfg.min_workers}",
                    t,
                )
            return self._decide(
                "scale_down",
                target,
                f"queue depth {depth:.0f} <= {cfg.scale_down_depth:.0f} for "
                f"{self._low_streak} consecutive samples",
                t,
            )

        streak = max(self._high_streak, self._low_streak)
        return self._decide(
            "hold",
            self.workers,
            f"queue depth {depth:.0f}: no sustained signal "
            f"(streak {streak}/{cfg.sustained_readings})",
            t,
        )
