"""Failure semantics for the fleet: backoff, quarantine, and the doctor.

PR 9's fleet assumed the happy path: one misbehaving job failed its whole
leased batch, a corrupt entry file simply vanished from every scan, and a
poison job retried forever with no paper trail.  This module is the other
half of the failure state machine:

* :func:`backoff_seconds` -- deterministic exponential backoff with jitter
  derived from ``(job_hash, attempt)`` through :func:`content_hash`, so retry
  schedules are reproducible (and chaos tests can pin them) while still
  decorrelating retries across jobs.  ``JobQueue.fail`` stamps the result
  into ``QueueEntry.not_before``; ``lease`` honors it.

* :class:`FailureRecord` / :class:`Quarantine` -- when a job exhausts
  ``max_attempts`` (or repeatedly breaks the worker pool), its queue entry is
  replaced by a structured record under ``<fleet_root>/quarantine/``: error
  class, message, attempt count, and the per-attempt history the service
  observed (tracebacks included).  Corrupt queue-entry files get moved --
  bytes intact -- into the same namespace instead of being silently ignored.
  Quarantine is terminal: nothing retries out of it without an explicit
  resubmit.

* :func:`run_doctor` -- the consistency audit behind ``repro fleet doctor
  [--fix]``.  It cross-checks queue, store, campaign manifests, heartbeat,
  and quarantine, reporting findings by severity; ``fix=True`` applies the
  safe repairs (restore or quarantine corrupt entries, requeue done-but-lost
  results, complete already-stored leases, recover expired leases, sweep
  stray temp files).  The exit contract: a directory is healthy iff no
  *unfixed* error-severity finding remains.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.queue import STATE_DONE, STATE_LEASED, STATE_QUEUED, JobQueue
from repro.fleet.store import ShardedResultStore, _atomic_write_json
from repro.hashing import content_hash

__all__ = [
    "RESILIENCE_SCHEMA_VERSION",
    "DoctorReport",
    "FailureRecord",
    "Finding",
    "Quarantine",
    "backoff_seconds",
    "run_doctor",
]

#: Stamped on every quarantine record (and the backoff jitter payloads).
RESILIENCE_SCHEMA_VERSION = 1

#: Subdirectory of a fleet root holding the quarantine namespace.
QUARANTINE_SUBDIR = "quarantine"

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

#: Temp files older than this are stray (no atomic write takes seconds).
STRAY_TMP_AGE = 60.0


# ---------------------------------------------------------------------------
# Deterministic retry backoff
# ---------------------------------------------------------------------------


def backoff_seconds(
    job_hash: str,
    attempt: int,
    base: float = 0.25,
    cap: float = 30.0,
    jitter: float = 0.5,
) -> float:
    """Delay before retry ``attempt + 1`` of ``job_hash`` may be leased.

    Exponential in the attempt number (``base * 2**(attempt-1)``, capped),
    scaled by ``1 + jitter * u`` where ``u in [0, 1)`` is derived from
    ``content_hash((job_hash, attempt))`` -- so the schedule is a pure
    function of job identity and attempt count: reproducible everywhere,
    pinnable in fixtures, yet decorrelated across jobs (no thundering-herd
    retry waves after a batch failure).
    """
    if attempt < 1:
        return 0.0
    delay = min(cap, base * (2.0 ** (attempt - 1)))
    digest = content_hash(
        {
            "schema": RESILIENCE_SCHEMA_VERSION,
            "kind": "fleet_backoff",
            "job_hash": job_hash,
            "attempt": attempt,
        }
    )
    unit = int(digest[:12], 16) / float(16**12)
    return delay * (1.0 + jitter * unit)


# ---------------------------------------------------------------------------
# Quarantine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FailureRecord:
    """Why one job left the queue for quarantine, with its paper trail."""

    job_hash: str
    #: ``exhausted`` (max_attempts spent), ``poison-pool`` (repeatedly broke
    #: the worker pool), or ``corrupt-entry`` (unreadable queue file).
    reason: str
    error_class: str
    message: str
    attempts: int
    #: The serialized job payload, when the queue entry still carried one --
    #: enough to resubmit the exact job after a fix.
    job: Optional[Dict[str, Any]] = None
    #: Per-attempt failures the recording service observed, oldest first
    #: (``{"attempt", "error", "traceback"?}`` dicts).
    history: Tuple[Dict[str, Any], ...] = ()
    recorded_unix: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESILIENCE_SCHEMA_VERSION,
            "job_hash": self.job_hash,
            "reason": self.reason,
            "error_class": self.error_class,
            "message": self.message,
            "attempts": self.attempts,
            "job": self.job,
            "history": list(self.history),
            "recorded_unix": self.recorded_unix,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureRecord":
        return cls(
            job_hash=data["job_hash"],
            reason=data["reason"],
            error_class=data.get("error_class", "Exception"),
            message=data.get("message", ""),
            attempts=int(data.get("attempts", 0)),
            job=data.get("job"),
            history=tuple(data.get("history", ())),
            recorded_unix=data.get("recorded_unix"),
        )


@dataclass
class Quarantine:
    """The terminal namespace for poison jobs and corrupt queue files.

    ``<root>/jobs/<job_hash>.json`` holds one :class:`FailureRecord` per
    quarantined job; ``<root>/corrupt/<name>`` holds corrupt queue-entry
    files moved out of the scan path with their bytes intact (forensics
    beats deletion).  Nothing in here is ever leased again.
    """

    root: Path

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def corrupt_dir(self) -> Path:
        return self.root / "corrupt"

    def add(self, record: FailureRecord) -> Path:
        path = self.jobs_dir / f"{record.job_hash}.json"
        _atomic_write_json(path, record.to_dict())
        return path

    def get(self, job_hash: str) -> Optional[FailureRecord]:
        try:
            with (self.jobs_dir / f"{job_hash}.json").open(
                "r", encoding="utf-8"
            ) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("schema") != RESILIENCE_SCHEMA_VERSION
        ):
            return None
        try:
            return FailureRecord.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def records(self) -> List[FailureRecord]:
        if not self.jobs_dir.is_dir():
            return []
        found = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            record = self.get(path.stem)
            if record is not None:
                found.append(record)
        return found

    def has(self, job_hash: str) -> bool:
        """True when ``job_hash`` is accounted for in quarantine -- either a
        structured record or a corrupt entry file moved here under its name."""
        if (self.jobs_dir / f"{job_hash}.json").is_file():
            return True
        return (self.corrupt_dir / f"{job_hash}.json").is_file()

    def absorb_corrupt(self, path: Path) -> Path:
        """Move a corrupt file into the quarantine, keeping its name."""
        self.corrupt_dir.mkdir(parents=True, exist_ok=True)
        target = self.corrupt_dir / path.name
        os.replace(path, target)
        return target

    def counts(self) -> Dict[str, int]:
        jobs = len(list(self.jobs_dir.glob("*.json"))) if self.jobs_dir.is_dir() else 0
        corrupt = (
            len(list(self.corrupt_dir.iterdir())) if self.corrupt_dir.is_dir() else 0
        )
        return {"jobs": jobs, "corrupt": corrupt}


# ---------------------------------------------------------------------------
# The doctor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One doctor observation: what, about which object, how bad, fixed?"""

    severity: str
    code: str
    subject: str
    message: str
    fixed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "code": self.code,
            "subject": self.subject,
            "message": self.message,
            "fixed": self.fixed,
        }


@dataclass
class DoctorReport:
    """Everything ``repro fleet doctor`` found, plus the health verdict."""

    root: str
    fix: bool
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Healthy iff no error-severity finding is left unfixed."""
        return not any(
            finding.severity == SEVERITY_ERROR and not finding.fixed
            for finding in self.findings
        )

    @property
    def fixed_count(self) -> int:
        return sum(1 for finding in self.findings if finding.fixed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "fix": self.fix,
            "ok": self.ok,
            "fixed": self.fixed_count,
            "findings": [finding.to_dict() for finding in self.findings],
        }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True  # exists, just not ours to signal
    return True


def _restore_from_store(
    queue: JobQueue, store: ShardedResultStore, job_hash: str
) -> bool:
    """Rebuild a ``done`` queue entry from the store's result entry.

    Store entries carry the full serialized job next to the payload, so a
    corrupt queue file whose result already landed is fully recoverable.
    """
    try:
        with store.job_path(job_hash).open("r", encoding="utf-8") as handle:
            entry = json.load(handle)
    except (OSError, ValueError):
        return False
    if not isinstance(entry, dict) or not isinstance(entry.get("job"), dict):
        return False
    queue.record_done(job_hash, entry["job"], note="doctor-restored")
    return True


def run_doctor(
    root: Path,
    fix: bool = False,
    now: Optional[float] = None,
    heartbeat_stale_after: float = 30.0,
) -> DoctorReport:
    """Audit one fleet directory's queue/store/manifest/heartbeat consistency.

    Pure observation by default; ``fix=True`` additionally applies every
    repair that cannot lose information.  Findings come back ordered by
    check, each tagged with severity and whether it was fixed.  ``now`` is
    injectable so tests audit frozen directories deterministically.
    """
    # Deferred import: service.py imports this module at top level.
    from repro.fleet.service import FleetPaths

    now = time.time() if now is None else now
    paths = FleetPaths(Path(root))
    queue = JobQueue(paths.queue_dir)
    store = ShardedResultStore(paths.store_dir)
    quarantine = Quarantine(paths.root / QUARANTINE_SUBDIR)
    report = DoctorReport(root=str(paths.root), fix=fix)
    findings = report.findings

    # -- 1. corrupt queue entries --------------------------------------
    # scan_settled retries transient-hidden entries so a one-scan read
    # blip cannot fabricate a lost-job/skew verdict out of thin air.
    entries, corrupt_paths = queue.scan_settled()
    for path in corrupt_paths:
        job_hash = path.stem
        repaired = False
        if fix:
            if store.has_job(job_hash) and _restore_from_store(
                queue, store, job_hash
            ):
                message = "corrupt queue entry restored from stored result"
                repaired = True
            else:
                quarantine.absorb_corrupt(path)
                message = "corrupt queue entry moved to quarantine"
                repaired = True
        else:
            message = "unreadable queue entry (json or schema)"
        findings.append(
            Finding(SEVERITY_ERROR, "corrupt-entry", job_hash, message, repaired)
        )
    if fix and corrupt_paths:
        entries, _ = queue.scan_settled()

    # -- 2/3/4. queue-vs-store state skew ------------------------------
    for entry in entries:
        stored = store.has_job(entry.job_hash)
        if entry.state == STATE_DONE and not stored:
            repaired = False
            if fix:
                queue.record_queued(entry, note="doctor-requeued")
                repaired = True
            findings.append(
                Finding(
                    SEVERITY_ERROR,
                    "done-missing-result",
                    entry.job_hash,
                    "entry is done but its result is not in the store",
                    repaired,
                )
            )
        elif entry.state in (STATE_QUEUED, STATE_LEASED) and stored:
            repaired = False
            if fix:
                queue.complete(entry.job_hash)
                repaired = True
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "already-stored",
                    entry.job_hash,
                    f"{entry.state} entry already has a stored result",
                    repaired,
                )
            )
        elif (
            entry.state == STATE_LEASED
            and entry.lease_deadline is not None
            and entry.lease_deadline <= now
        ):
            repaired = False
            if fix:
                queue.requeue_expired(now=now)
                repaired = True
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "expired-lease",
                    entry.job_hash,
                    f"lease expired (worker {entry.worker or 'unknown'})",
                    repaired,
                )
            )

    # -- 5. heartbeat liveness ------------------------------------------
    undrained = any(
        entry.state in (STATE_QUEUED, STATE_LEASED) for entry in entries
    )
    beat: Optional[Dict[str, Any]] = None
    try:
        with paths.heartbeat.open("r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            beat = loaded
    except (OSError, ValueError):
        beat = None
    if beat is None:
        if undrained:
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "no-service",
                    "service.json",
                    "work is pending but no service heartbeat exists",
                )
            )
    else:
        age = now - float(beat.get("updated_unix", 0.0))
        pid = int(beat.get("pid", -1))
        alive = pid > 0 and _pid_alive(pid)
        if age > heartbeat_stale_after or not alive:
            state = "stale" if age > heartbeat_stale_after else "dead-pid"
            severity = SEVERITY_WARNING if undrained else SEVERITY_INFO
            findings.append(
                Finding(
                    severity,
                    "stale-heartbeat",
                    "service.json",
                    (
                        f"heartbeat is {state} (age {age:.1f}s, pid {pid} "
                        f"{'alive' if alive else 'not running'})"
                        + ("; queued/leased work is waiting" if undrained else "")
                    ),
                )
            )

    # -- 6. stray temp files --------------------------------------------
    for base in (queue.entries_dir, store.root, paths.campaigns_dir):
        if not base.is_dir():
            continue
        for tmp in sorted(base.rglob("*.tmp")):
            try:
                age = now - tmp.stat().st_mtime
            except OSError:
                continue
            if age <= STRAY_TMP_AGE:
                continue
            repaired = False
            if fix:
                try:
                    tmp.unlink()
                    repaired = True
                except OSError:
                    pass
            findings.append(
                Finding(
                    SEVERITY_WARNING,
                    "stray-tmp",
                    str(tmp.relative_to(paths.root)),
                    f"orphaned temp file ({age:.0f}s old)",
                    repaired,
                )
            )

    # -- 7. manifest accounting ------------------------------------------
    known = {entry.job_hash for entry in entries}
    if paths.campaigns_dir.is_dir():
        for manifest_path in sorted(paths.campaigns_dir.glob("*.json")):
            try:
                with manifest_path.open("r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(manifest, dict) or "jobs" not in manifest:
                continue
            for job_hash in manifest["jobs"]:
                if store.has_job(job_hash) or job_hash in known:
                    continue
                if quarantine.has(job_hash):
                    findings.append(
                        Finding(
                            SEVERITY_INFO,
                            "quarantined-job",
                            job_hash,
                            f"manifest job is quarantined "
                            f"(campaign {manifest.get('campaign')})",
                        )
                    )
                else:
                    findings.append(
                        Finding(
                            SEVERITY_ERROR,
                            "lost-job",
                            job_hash,
                            "manifest job has no queue entry, stored result, "
                            "or quarantine record",
                        )
                    )

    quarantine_counts = quarantine.counts()
    if quarantine_counts["jobs"] or quarantine_counts["corrupt"]:
        findings.append(
            Finding(
                SEVERITY_INFO,
                "quarantine",
                QUARANTINE_SUBDIR,
                (
                    f"{quarantine_counts['jobs']} quarantined job(s), "
                    f"{quarantine_counts['corrupt']} corrupt file(s) preserved"
                ),
            )
        )
    return report
