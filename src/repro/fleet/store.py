"""The sharded content-addressed result store the sweep service shares.

One store directory holds two namespaces, both prefix-sharded the way the
runtime cache shards (two-character hash-prefix directories, one JSON file
per entry, atomic temp-file-then-``os.replace`` writes):

``jobs/``
    Per-job result entries in **exactly** the :class:`ResultCache` layout and
    entry format -- the store's job side *is* a cache directory, so the
    existing runtime cache reads and writes it unchanged
    (:meth:`ShardedResultStore.job_cache` hands back a ``ResultCache`` rooted
    there).  Multiple services or CLI runs pointed at the same store share
    results with no translation layer.

``reports/``
    Whole sweep reports keyed by **spec hash** -- the content hash of what a
    campaign *asked for* (name + ordered job hashes), not of any one result.
    A campaign resubmitted against a warm store is served at report
    granularity: no queueing, no per-job lookups, the finished document comes
    straight back.  This is the ``spec_hash``-level warm start the ROADMAP's
    sweep-service item calls for.

:meth:`ShardedResultStore.migrate_flat` absorbs the pre-sharded flat layout
(every ``<hash>.json`` directly in one directory) by moving entries into
their prefix shards, so an old cache directory can be adopted as a store's
job namespace in place.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.obs import state as obs_state
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import SCHEMA_VERSION, Job

__all__ = [
    "FLEET_SCHEMA_VERSION",
    "SHARD_WIDTH",
    "ShardedResultStore",
]

#: Version stamp carried by every report entry (and the sweep-spec payloads
#: hashed into ``spec_hash``); bump on incompatible layout changes.
FLEET_SCHEMA_VERSION = 1

#: Hash-prefix width of shard directories.  Fixed at the ``ResultCache``
#: width so the job namespace stays byte-compatible with the runtime cache.
SHARD_WIDTH = 2

_JOBS_SUBDIR = "jobs"
_REPORTS_SUBDIR = "reports"


def _atomic_write_json(
    path: Path,
    document: Dict[str, Any],
    faults: Optional[Any] = None,
    fault_op: Optional[str] = None,
) -> None:
    """Write ``document`` to ``path`` via a same-directory temp file.

    ``faults``/``fault_op`` are the chaos seam: when a
    :class:`~repro.fleet.faults.FaultPlan` is attached, it may replace the
    write with a torn one, drop it (leaving a stray temp file), or raise an
    injected ``OSError`` -- deterministically from its seed.  Production
    callers pass neither and get the plain atomic write.
    """
    if faults is not None and fault_op is not None:
        if faults.intercept_write(fault_op, path, document) is not None:
            return
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{path.stem[:8]}-", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


@dataclass
class ShardedResultStore:
    """Job results plus spec-hash-keyed sweep reports under one root."""

    root: Path
    #: Optional chaos plan (:class:`repro.fleet.faults.FaultPlan`) applied to
    #: the report namespace's reads/writes; ``None`` in production.  The job
    #: namespace goes through ``ResultCache`` (runtime layer) and is not
    #: intercepted -- runtime never sees fleet.
    faults: Optional[Any] = None
    _job_cache: ResultCache = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._job_cache = ResultCache(self.root / _JOBS_SUBDIR)

    # ------------------------------------------------------------------
    # Job namespace (ResultCache-compatible)
    # ------------------------------------------------------------------
    @property
    def jobs_root(self) -> Path:
        return self.root / _JOBS_SUBDIR

    @property
    def reports_root(self) -> Path:
        return self.root / _REPORTS_SUBDIR

    def job_cache(self) -> ResultCache:
        """The runtime cache view of the job namespace.

        Executors take this exactly where they take any other
        ``ResultCache`` -- the store adds namespacing, reports, and
        migration *around* the cache format, never a new entry format.
        """
        return self._job_cache

    def job_path(self, job_hash: str) -> Path:
        return self._job_cache.path_for(job_hash)

    def has_job(self, job_hash: str) -> bool:
        """True when a result entry for ``job_hash`` is on disk."""
        return self.job_path(job_hash).is_file()

    def get_job(self, job: Job) -> Optional[Dict[str, Any]]:
        return self._job_cache.get(job)

    def put_job(self, job: Job, payload: Dict[str, Any]) -> Path:
        return self._job_cache.put(job, payload)

    def job_payload(self, job_hash: str) -> Optional[Dict[str, Any]]:
        """The stored result payload for a hash, without a ``Job`` object.

        Status and verification read results by hash (the queue and campaign
        manifests only carry hashes); schema-mismatched or unreadable entries
        read as absent, the same way the cache treats them.
        """
        try:
            with self.job_path(job_hash).open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION:
            return None
        return entry.get("result")

    # ------------------------------------------------------------------
    # Report namespace (spec_hash-level warm starts)
    # ------------------------------------------------------------------
    def report_path(self, spec_hash: str) -> Path:
        if len(spec_hash) <= SHARD_WIDTH:
            raise ValueError(f"spec hash {spec_hash!r} is too short")
        return self.reports_root / spec_hash[:SHARD_WIDTH] / f"{spec_hash}.json"

    def get_report(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The stored sweep report for ``spec_hash``, or ``None``.

        Entries written under a different schema version (or corrupt files)
        read as absent: the sweep simply runs again and rewrites them.
        """
        try:
            if self.faults is not None:
                self.faults.intercept_read("store.read", self.report_path(spec_hash))
            with self.report_path(spec_hash).open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != FLEET_SCHEMA_VERSION
            or entry.get("spec_hash") != spec_hash
            or "report" not in entry
        ):
            return None
        return entry["report"]

    def put_report(self, spec_hash: str, report: Dict[str, Any]) -> Path:
        """Store a finished sweep report under its spec hash, atomically."""
        path = self.report_path(spec_hash)
        _atomic_write_json(
            path,
            {
                "schema": FLEET_SCHEMA_VERSION,
                "spec_hash": spec_hash,
                "report": report,
            },
            faults=self.faults,
            fault_op="store.write",
        )
        obs_state.counter("fleet.store.report_writes").inc()
        return path

    def iter_reports(self) -> Iterator[Path]:
        if not self.reports_root.is_dir():
            return
        for shard in sorted(self.reports_root.iterdir()):
            if shard.is_dir() and len(shard.name) == SHARD_WIDTH:
                yield from sorted(shard.glob("*.json"))

    # ------------------------------------------------------------------
    # Migration and accounting
    # ------------------------------------------------------------------
    def migrate_flat(self, source: Optional[Union[str, Path]] = None) -> int:
        """Move flat ``<hash>.json`` entries into their prefix shards.

        ``source`` defaults to the store's own job namespace (adopting a flat
        legacy directory in place); pointing it at another cache directory
        pulls that directory's entries -- flat files *and* already-sharded
        ones -- into this store.  Moves are ``os.replace`` per entry, so a
        crash mid-migration loses nothing: every entry is either still at its
        old path or already at its new one.
        """
        source_dir = Path(source) if source is not None else self.jobs_root
        if not source_dir.is_dir():
            return 0
        moved = 0
        candidates = sorted(source_dir.glob("*.json"))
        if source_dir != self.jobs_root:
            for shard in sorted(source_dir.iterdir()):
                if shard.is_dir() and len(shard.name) == SHARD_WIDTH:
                    candidates.extend(sorted(shard.glob("*.json")))
        for path in candidates:
            job_hash = path.stem
            if len(job_hash) <= SHARD_WIDTH:
                continue
            target = self.job_path(job_hash)
            if target == path:
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            moved += 1
        if moved:
            obs_state.counter("fleet.store.migrated_entries").inc(moved)
        return moved

    def stats(self) -> Dict[str, Any]:
        """Entry counts and on-disk footprint, for ``repro fleet status``."""
        job_entries = list(self._job_cache.iter_entries())
        report_entries = list(self.iter_reports())
        return {
            "root": str(self.root),
            "shard_width": SHARD_WIDTH,
            "jobs": len(job_entries),
            "reports": len(report_entries),
            "bytes": sum(p.stat().st_size for p in job_entries + report_entries),
        }
