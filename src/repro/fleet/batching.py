"""Batched dispatch planning and the fleet's instrumented executor.

``ParallelExecutor`` already packs jobs into per-submission batches (the
amortization itself lives in the runtime layer, where *every* caller gets
it).  What the fleet adds on top is the part a service operator sees:

* :func:`plan_batches` -- a pure function from (jobs, batch size, workers) to
  the exact dispatch plan, so the batching a ``--batch-size`` flag produces
  can be printed, asserted on in tests, and reasoned about without running
  anything; and

* :class:`BatchingExecutor` -- a ``ParallelExecutor`` that emits ``fleet.*``
  metrics (dispatches, jobs dispatched, batch-size histogram) around each
  ``_execute_many``, feeding the same ``obs.snapshot()`` the autoscaler and
  ``repro fleet status`` read.

Neither changes what executes: the leaf executor remains ``ParallelExecutor``
running ``execute_job_with_stats`` per job, which is why fleet results stay
bit-identical to serial ones at any batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs import state as obs_state
from repro.runtime.executor import (
    FailureCallback,
    ParallelExecutor,
    PreExecuteHook,
    auto_batch_size,
)
from repro.runtime.jobs import Job

__all__ = ["BatchPlan", "BatchingExecutor", "plan_batches"]


@dataclass(frozen=True)
class BatchPlan:
    """The dispatch shape a job list will take: sizes, not contents."""

    batch_size: int
    batches: Tuple[int, ...]

    @property
    def dispatches(self) -> int:
        """Pool submissions (== pickle/IPC round trips) the plan pays."""
        return len(self.batches)

    @property
    def jobs(self) -> int:
        return sum(self.batches)

    @property
    def amortization(self) -> float:
        """Mean jobs per dispatch -- 1.0 means no batching benefit at all."""
        return self.jobs / self.dispatches if self.batches else 0.0


def plan_batches(
    jobs: Sequence[Job],
    batch_size: Optional[int] = None,
    workers: int = 1,
) -> BatchPlan:
    """How ``ParallelExecutor`` will slice ``jobs`` into submissions.

    ``batch_size=None`` mirrors the executor's auto-sizing
    (:func:`repro.runtime.executor.auto_batch_size`); an explicit size mirrors
    ``--batch-size``.  Pure and deterministic: same inputs, same plan.
    """
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be at least 1 (or None for auto)")
    size = batch_size or auto_batch_size(len(jobs), workers)
    sizes = tuple(
        min(size, len(jobs) - start) for start in range(0, len(jobs), size)
    )
    return BatchPlan(batch_size=size, batches=sizes)


@dataclass
class BatchingExecutor(ParallelExecutor):
    """``ParallelExecutor`` with fleet-level dispatch telemetry.

    Emits, per ``_execute_many`` round (all no-ops while telemetry is off):

    * ``fleet.dispatches`` -- pool submissions planned this round
    * ``fleet.jobs_dispatched`` -- jobs covered by those submissions
    * ``fleet.batch_size`` histogram -- the per-round effective batch size

    Execution is entirely inherited; this class adds observation only.
    """

    def _execute_many(
        self,
        jobs: List[Job],
        on_executed: Callable[..., None],
        on_error: Optional[FailureCallback] = None,
        pre_hook: Optional[PreExecuteHook] = None,
    ) -> None:
        # max_workers == 1 takes the inherited in-process path: no pool
        # submissions happen, so recording "dispatches" would be a lie.
        if obs_state.enabled() and jobs and self.max_workers > 1:
            plan = plan_batches(
                jobs, batch_size=self.batch_size, workers=self.max_workers
            )
            obs_state.counter("fleet.dispatches").inc(plan.dispatches)
            obs_state.counter("fleet.jobs_dispatched").inc(plan.jobs)
            obs_state.histogram("fleet.batch_size").observe(plan.batch_size)
        super()._execute_many(jobs, on_executed, on_error=on_error, pre_hook=pre_hook)
