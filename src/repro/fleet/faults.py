"""Seeded, deterministic fault injection for the fleet's failure seams.

The chaos harness behind the fleet's robustness contract: a
:class:`FaultPlan` decides -- purely from its seed and the identity of each
injection opportunity -- whether to corrupt a queue/store write, lose it
"mid-rename", raise an ``OSError`` at a filesystem seam, crash or hang a
worker mid-job, or hand out an already-expired lease.  Because every decision
is a pure function of ``(seed, kind, op, key)`` (hashed through
:func:`repro.hashing.content_hash`), the same plan driven through the same
operation sequence injects the *same* faults in the same places, every time:
chaos tests replay bit-identically, and a failure found under a seed is a
repro recipe, not a flake.

Two keying modes keep that determinism honest:

* **Filesystem seams** (``queue.write``, ``queue.read``, ``store.write``,
  ``store.read``) key on a per-``(kind, op)`` ordinal -- the Nth write decides
  the same way whenever the op sequence is the same.
* **Job seams** (``job`` crash/hang/raise, ``queue.lease`` forced expiry) key
  on ``(job_hash, attempt)`` -- order-independent, so a retried job sees a
  *fresh* decision per attempt (a 0.3-rate crash plan recovers) while a
  rate-1.0 rule pinned to one hash prefix makes a perfectly reproducible
  poison job.

Plans parse from a compact spec string (the ``repro serve --faults`` flag and
``REPRO_FLEET_FAULTS`` env var)::

    seed=42;torn@queue.write=0.1;crash@job=0.2;hang@job=0.1:0.05

Every injected fault is appended to :attr:`FaultPlan.events`, which is the
replay-determinism surface the tests pin.  The plan only ever *decides and
logs*; the seams that consult it (``JobQueue``, ``ShardedResultStore``, the
service's dispatch path) own the recovery behavior the injections force.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.hashing import content_hash

__all__ = [
    "FAULT_SCHEMA_VERSION",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedOSError",
    "InjectedWorkerCrash",
    "directive_hook",
]

#: Stamped into every decision payload hashed for an injection chance; bump
#: when the decision keying changes so old pinned tables are invalidated
#: loudly instead of silently drifting.
FAULT_SCHEMA_VERSION = 1

#: Exit code an injected worker crash dies with (visible in pool diagnostics).
CRASH_EXIT_CODE = 17

#: kind -> ops it may attach to.
_KIND_OPS = {
    "torn": {"queue.write", "store.write"},
    "skip": {"queue.write", "store.write"},
    "oserror": {"queue.write", "queue.read", "store.write", "store.read"},
    "crash": {"job"},
    "hang": {"job"},
    "raise": {"job"},
    "expire": {"queue.lease"},
}

#: Ops whose decisions key on (job_hash, attempt) instead of an ordinal.
_JOB_KEYED_OPS = {"job", "queue.lease"}


class InjectedFault(RuntimeError):
    """An exception deliberately raised by the chaos harness."""


class InjectedWorkerCrash(InjectedFault):
    """A 'worker crash' injected on the in-process execution path.

    In a real pool worker the crash directive calls ``os._exit`` and the
    parent sees ``BrokenProcessPool``; in-process execution cannot die
    without taking the service down, so it raises this instead and flows
    through the same per-job failure isolation.
    """


class InjectedOSError(OSError):
    """An ``OSError`` deliberately raised at a filesystem seam."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: ``kind`` at ``op``, with probability ``rate``.

    ``param`` carries the kind-specific knob (hang seconds); ``match``
    restricts job-keyed rules to job hashes with that prefix (the poison-job
    lever) and is ignored for ordinal-keyed filesystem seams.
    """

    kind: str
    op: str
    rate: float
    param: float = 0.0
    match: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_OPS:
            known = ", ".join(sorted(_KIND_OPS))
            raise ValueError(f"unknown fault kind {self.kind!r} (known: {known})")
        if self.op not in _KIND_OPS[self.kind]:
            allowed = ", ".join(sorted(_KIND_OPS[self.kind]))
            raise ValueError(
                f"fault kind {self.kind!r} cannot attach to op {self.op!r} "
                f"(allowed: {allowed})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.param < 0.0:
            raise ValueError(f"fault param must be non-negative, got {self.param}")

    def describe(self) -> str:
        target = f"{self.op}[{self.match}]" if self.match else self.op
        suffix = f":{self.param:g}" if self.param else ""
        return f"{self.kind}@{target}={self.rate:g}{suffix}"


def _parse_rule(token: str) -> FaultRule:
    """``KIND@OP=RATE``, ``KIND@OP=RATE:PARAM``, or ``KIND@OP[PREFIX]=RATE``."""
    head, _, value = token.partition("=")
    if not value:
        raise ValueError(f"fault rule {token!r} is missing '=RATE'")
    kind, _, target = head.partition("@")
    if not target:
        raise ValueError(f"fault rule {token!r} is missing '@OP'")
    match: Optional[str] = None
    if target.endswith("]") and "[" in target:
        target, _, selector = target[:-1].partition("[")
        match = selector or None
    rate_text, _, param_text = value.partition(":")
    try:
        rate = float(rate_text)
        param = float(param_text) if param_text else 0.0
    except ValueError as error:
        raise ValueError(f"fault rule {token!r} has a non-numeric value") from error
    return FaultRule(
        kind=kind.strip(), op=target.strip(), rate=rate, param=param, match=match
    )


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus the injection log."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()
    #: Every injected fault, in injection order: the replay surface.
    events: List[Dict[str, Any]] = field(default_factory=list)
    _ordinals: Dict[Tuple[str, str], int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``seed=N;KIND@OP=RATE;...`` spec string."""
        seed = 0
        rules: List[FaultRule] = []
        for token in spec.replace(",", ";").split(";"):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed="):])
                except ValueError as error:
                    raise ValueError(f"bad fault seed in {token!r}") from error
            else:
                rules.append(_parse_rule(token))
        return cls(seed=seed, rules=tuple(rules))

    def describe(self) -> str:
        parts = [f"seed={self.seed}"] + [rule.describe() for rule in self.rules]
        return ";".join(parts)

    # ------------------------------------------------------------------
    # The decision function
    # ------------------------------------------------------------------
    def _chance(self, kind: str, op: str, key: str) -> float:
        """Uniform [0, 1) value, a pure function of (seed, kind, op, key)."""
        digest = content_hash(
            {
                "schema": FAULT_SCHEMA_VERSION,
                "kind_tag": "fleet_fault",
                "seed": self.seed,
                "fault": kind,
                "op": op,
                "key": key,
            }
        )
        return int(digest[:12], 16) / float(16**12)

    def _next_key(self, kind: str, op: str) -> str:
        ordinal = self._ordinals.get((kind, op), 0)
        self._ordinals[(kind, op)] = ordinal + 1
        return str(ordinal)

    def _record(self, kind: str, op: str, key: str, **detail: Any) -> None:
        event = {"kind": kind, "op": op, "key": key}
        event.update(detail)
        self.events.append(event)

    def _decide(
        self, op: str, key: Optional[str] = None
    ) -> Optional[Tuple[FaultRule, str]]:
        """The first rule for ``op`` that fires, with the key it fired on."""
        for rule in self.rules:
            if rule.op != op:
                continue
            if key is not None and rule.match and not key.startswith(rule.match):
                continue
            decision_key = key if key is not None else self._next_key(rule.kind, op)
            if self._chance(rule.kind, op, decision_key) < rule.rate:
                return rule, decision_key
        return None

    # ------------------------------------------------------------------
    # Filesystem seams
    # ------------------------------------------------------------------
    def intercept_write(
        self, op: str, path: Path, document: Dict[str, Any]
    ) -> Optional[str]:
        """Consult the plan before an atomic JSON write.

        Returns ``None`` to let the real write proceed, or the injected kind
        after performing it: ``"torn"`` leaves invalid JSON at the
        destination (a non-atomic filesystem corrupting the entry),
        ``"skip"`` leaves the destination untouched but a stray temp file
        behind (a crash between the temp write and the rename).  An
        ``"oserror"`` rule raises :class:`InjectedOSError` instead.
        """
        fired = self._decide(op)
        if fired is None:
            return None
        rule, key = fired
        self._record(rule.kind, op, key, path=path.name)
        if rule.kind == "oserror":
            raise InjectedOSError(f"injected OSError at {op} ({path.name})")
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(document)
        if rule.kind == "torn":
            path.write_text(text[: max(1, len(text) // 2)], encoding="utf-8")
        else:  # skip: the temp file was written, the rename never happened
            stray = path.parent / f".{path.stem[:8]}-chaos-{key}.tmp"
            stray.write_text(text, encoding="utf-8")
        return rule.kind

    def intercept_read(self, op: str, path: Path) -> None:
        """Consult the plan before a filesystem read; may raise an OSError.

        Callers treat the injected error exactly like a transient filesystem
        error: the entry is invisible for this scan and retried on the next,
        never quarantined (the bytes on disk are fine).
        """
        fired = self._decide(op)
        if fired is None:
            return
        rule, key = fired
        self._record(rule.kind, op, key, path=path.name)
        raise InjectedOSError(f"injected OSError at {op} ({path.name})")

    # ------------------------------------------------------------------
    # Job seams
    # ------------------------------------------------------------------
    def _job_key(self, job_hash: str, attempt: int) -> str:
        return f"{job_hash}:{attempt}"

    def lease_expired(self, job_hash: str, attempt: int) -> bool:
        """True when the plan forces this lease to be handed out pre-expired."""
        fired = self._decide("queue.lease", key=self._job_key(job_hash, attempt))
        if fired is None:
            return False
        rule, key = fired
        self._record(rule.kind, "queue.lease", key)
        return True

    def job_directives(
        self, jobs: Sequence[Tuple[str, int]]
    ) -> Dict[str, Tuple[str, float]]:
        """Per-job chaos directives for one dispatch.

        ``jobs`` is ``[(job_hash, attempt), ...]``; the result maps job hash
        to ``(kind, param)`` for every job a ``job``-op rule fires on.  Keyed
        purely by ``(job_hash, attempt)``, so batch composition and dispatch
        order cannot change what gets injected.
        """
        directives: Dict[str, Tuple[str, float]] = {}
        for job_hash, attempt in jobs:
            fired = self._decide("job", key=self._job_key(job_hash, attempt))
            if fired is None:
                continue
            rule, key = fired
            self._record(rule.kind, "job", key)
            directives[job_hash] = (rule.kind, rule.param)
        return directives

    def summary(self) -> Dict[str, int]:
        """Injection counts by ``kind@op``, for logs and test assertions."""
        totals: Dict[str, int] = {}
        for event in self.events:
            label = f"{event['kind']}@{event['op']}"
            totals[label] = totals.get(label, 0) + 1
        return totals


# ---------------------------------------------------------------------------
# The executor-side directive hook
# ---------------------------------------------------------------------------


def _apply_directives(
    directives: Dict[str, Tuple[str, float]], parent_pid: int, job: Any
) -> None:
    """Pre-execution hook body: act on this job's directive, if any.

    Runs in whichever process executes the job.  ``crash`` kills a real pool
    worker with ``os._exit`` (the parent sees ``BrokenProcessPool``); on the
    in-process path it raises :class:`InjectedWorkerCrash` instead so the
    service itself survives.  ``hang`` sleeps past the configured seconds and
    then lets the job run (exercising lease expiry and late completion);
    ``raise`` fails just this job.
    """
    directive = directives.get(job.content_hash)
    if directive is None:
        return
    kind, param = directive
    if kind == "hang":
        time.sleep(param)
    elif kind == "raise":
        raise InjectedFault(f"injected job fault ({job.content_hash[:12]})")
    elif kind == "crash":
        if os.getpid() != parent_pid:
            os._exit(CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(
            f"injected worker crash ({job.content_hash[:12]})"
        )


def directive_hook(
    directives: Dict[str, Tuple[str, float]], parent_pid: Optional[int] = None
):
    """A picklable pre-execution hook applying ``directives`` per job.

    ``functools.partial`` over a module-level function survives the pool's
    pickling; the parent pid travels along so the crash directive can tell a
    forked worker (where it may really die) from the service process.
    """
    return partial(
        _apply_directives,
        dict(directives),
        os.getpid() if parent_pid is None else parent_pid,
    )
