"""``python -m repro`` entry point (delegates to the runtime CLI)."""

from repro.runtime.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
