"""Serial and process-parallel job executors.

Both executors share one contract: take a sequence of jobs (duplicates
allowed), consult the cache, execute only the unique misses, and return an
:class:`ExecutionReport` whose outcomes line up with the submitted order.
Deduplication happens *before* execution, so a campaign that names the same
(platform, policy, trace) combination dozens of times simulates it once.

:class:`ParallelExecutor` fans the misses out over a ``ProcessPoolExecutor``.
Worker processes rebuild their own platforms from the job specs (see
``repro.runtime.jobs.platform_for``): the simulation engine mutates live MRC
register state while running, so a platform object must never be shared by two
concurrent runs.  Serial and parallel execution funnel through the same
``execute_job_with_stats`` function, which is what makes their results
bit-identical; engine loop statistics ride back alongside each payload (and
per-worker metric snapshots are merged into the parent's ``repro.obs``
registry when telemetry is enabled), never inside it.

Submission is **batched**: a campaign of tiny jobs (the scenario catalog at a
capped ``max_simulated_time`` runs a job in single-digit milliseconds) loses
its parallel speedup to per-job pickling round-trips if every job is its own
pool submission -- BENCH_7 measured cold parallel at 264 jobs/s vs. 258
serial.  ``batch_size`` packs that many jobs per submission (``None`` derives
a size from the batch and worker count via :func:`auto_batch_size`), so the
pickle/IPC overhead amortizes across the batch while results still stream
back batch by batch.  Batching never touches what executes: each worker runs
the same ``execute_job_with_stats`` per job, in submission order, so payloads
stay bit-identical to serial whatever the batch size.

The pool is created lazily on the first batch that needs it and then **kept
alive across** ``run()`` **calls**: a session that submits one experiment after
another (the CLI running several targets, ``repro.api.Session``) reuses one
warm pool -- with its worker-local platform/calibration memos -- instead of
forking and tearing down a fresh pool per experiment.  Call :meth:`close` (or
use the executor as a context manager) for a deterministic shutdown; a GC
finalizer shuts the pool down as a fallback.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import traceback as traceback_module
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import state as obs_state
from repro.obs.spans import span as _span
from repro.runtime.cache import ResultCache
from repro.runtime.jobs import Job, decode_result, execute_job_with_stats
from repro.sim.result import EngineRunStats


@dataclass(frozen=True)
class ProgressUpdate:
    """One per-job progress event (cache hits report instantly)."""

    label: str
    job_hash: str
    from_cache: bool
    completed: int
    total: int
    elapsed: float


ProgressCallback = Callable[[ProgressUpdate], None]


@dataclass(frozen=True)
class JobFailure:
    """Why one job's execution failed, in picklable form.

    Produced on whichever side of the pool boundary the exception happened
    and handed to the caller's ``on_error`` callback -- the exception object
    itself never crosses process boundaries (tracebacks do not pickle, and a
    worker-defined exception class may not even import in the parent).
    """

    job_hash: str
    kind: str
    message: str
    traceback: str

    def describe(self) -> str:
        return f"{self.kind}: {self.message}"


#: Isolation callback: invoked once per unique failed job instead of letting
#: the exception tear down the whole batch.
FailureCallback = Callable[[Job, JobFailure], None]

#: Pre-execution seam: invoked with each job right before it runs, *in the
#: process that runs it* (a pool worker under ``ParallelExecutor``).  This is
#: the fleet chaos harness's injection point; it must be picklable (a
#: module-level function or ``functools.partial`` over one).
PreExecuteHook = Callable[[Job], None]


def _failure_from(job: Job, error: BaseException) -> JobFailure:
    return JobFailure(
        job_hash=job.content_hash,
        kind=type(error).__name__,
        message=str(error),
        traceback=traceback_module.format_exc(),
    )


@dataclass(frozen=True)
class JobOutcome:
    """One submitted job with its payload and provenance.

    ``stats`` carries the engine's per-run loop statistics when the job was
    actually simulated in this call; it is ``None`` for cache hits (nothing
    ran) and for job kinds without an engine pass.  Stats ride *next to* the
    payload -- they are never cached, so cached payloads stay byte-identical
    regardless of telemetry.
    """

    job: Job
    payload: Dict[str, Any]
    from_cache: bool
    stats: Optional[EngineRunStats] = None

    @property
    def result(self):
        """The payload decoded into its natural result object."""
        return decode_result(self.job, self.payload)


@dataclass
class ExecutionReport:
    """What one executor call did: outcomes plus dedup/cache accounting."""

    outcomes: List[JobOutcome]
    unique_jobs: int
    cache_hits: int
    executed: int
    elapsed: float
    #: Unique jobs whose execution raised while ``on_error`` isolation was
    #: active; they have no outcome entry.  Always 0 without isolation (the
    #: exception propagates instead).
    failed: int = 0

    @property
    def submitted(self) -> int:
        """Jobs submitted, before deduplication."""
        return len(self.outcomes)

    def results(self) -> List[Any]:
        """Decoded results, aligned with the submitted job order."""
        return [outcome.result for outcome in self.outcomes]

    def payloads(self) -> List[Dict[str, Any]]:
        """Raw payloads, aligned with the submitted job order."""
        return [outcome.payload for outcome in self.outcomes]

    def summary(self) -> str:
        """One-line accounting string for logs and the CLI."""
        return (
            f"{self.submitted} job(s) submitted, {self.unique_jobs} unique, "
            f"{self.executed} simulated, {self.cache_hits} cache hit(s) "
            f"in {self.elapsed:.2f}s"
        )

    def engine_stats(self) -> Dict[str, int]:
        """Aggregate engine loop statistics over the jobs executed this call.

        Duplicate submissions share one execution, so totals are per unique
        job; cache hits contribute nothing (no engine ran for them).
        """
        totals = {
            "runs": 0,
            "ticks": 0,
            "segments": 0,
            "model_evaluations": 0,
            "memo_hits": 0,
            "evaluations": 0,
            "transitions": 0,
        }
        seen = set()
        for outcome in self.outcomes:
            stats = outcome.stats
            if stats is None:
                continue
            job_hash = outcome.job.content_hash
            if job_hash in seen:
                continue
            seen.add(job_hash)
            totals["runs"] += 1
            for name, value in stats.as_dict().items():
                totals[name] += value
        return totals


class Executor:
    """Common dedup-then-execute plumbing; subclasses provide ``_execute_many``."""

    def run(
        self,
        jobs: Sequence[Job],
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        on_error: Optional[FailureCallback] = None,
        pre_hook: Optional[PreExecuteHook] = None,
    ) -> ExecutionReport:
        """Execute ``jobs`` (deduplicated) and return the full report.

        Without ``on_error``, any job exception propagates and the whole call
        fails -- the historical contract every experiment path relies on.
        With ``on_error``, failures are isolated per job: the callback gets
        ``(job, JobFailure)``, the failed job simply has no outcome entry,
        and every healthy job still completes.  ``pre_hook`` runs before each
        job in the executing process (the fault-injection seam); a hook
        exception counts as that job's failure under isolation.
        """
        jobs = list(jobs)
        started = time.perf_counter()

        unique: Dict[str, Job] = {}
        for job in jobs:
            unique.setdefault(job.content_hash, job)

        resolved: Dict[str, Dict[str, Any]] = {}
        stats_by_hash: Dict[str, EngineRunStats] = {}
        hit_hashes = set()
        if cache is not None:
            for job_hash, job in unique.items():
                payload = cache.get(job)
                if payload is not None:
                    resolved[job_hash] = payload
                    hit_hashes.add(job_hash)

        pending = [job for job_hash, job in unique.items() if job_hash not in resolved]
        total = len(unique)

        metrics_on = obs_state.enabled()
        if metrics_on:
            obs_state.counter("executor.submitted").inc(len(jobs))
            obs_state.counter("executor.unique").inc(total)
            obs_state.counter("executor.cache_hits").inc(len(hit_hashes))
            if jobs:
                # Dedup ratio: how much work submission-level duplication saved.
                obs_state.histogram("executor.dedup_ratio").observe(
                    1.0 - total / len(jobs)
                )

        if progress is not None:
            ordered_hits = [h for h in unique if h in hit_hashes]
            for completed, job_hash in enumerate(ordered_hits, start=1):
                job = unique[job_hash]
                progress(
                    ProgressUpdate(
                        label=job.label,
                        job_hash=job_hash,
                        from_cache=True,
                        completed=completed,
                        total=total,
                        elapsed=time.perf_counter() - started,
                    )
                )

        def on_executed(
            job: Job,
            payload: Dict[str, Any],
            stats: Optional[EngineRunStats] = None,
        ) -> None:
            job_hash = job.content_hash
            resolved[job_hash] = payload
            if stats is not None:
                stats_by_hash[job_hash] = stats
            if metrics_on:
                obs_state.counter("executor.executed").inc()
            if cache is not None:
                cache.put(job, payload)
            if progress is not None:
                progress(
                    ProgressUpdate(
                        label=job.label,
                        job_hash=job_hash,
                        from_cache=False,
                        completed=len(resolved),
                        total=total,
                        elapsed=time.perf_counter() - started,
                    )
                )

        failed_hashes: set = set()
        isolate = on_error is not None

        def on_failed(job: Job, failure: JobFailure) -> None:
            failed_hashes.add(job.content_hash)
            if metrics_on:
                obs_state.counter("executor.failed").inc()
            on_error(job, failure)

        if pending:
            with _span(
                "executor.run", executor=type(self).__name__, jobs=len(pending)
            ):
                self._execute_many(
                    pending,
                    on_executed,
                    on_error=on_failed if isolate else None,
                    pre_hook=pre_hook,
                )

        outcomes = [
            JobOutcome(
                job=job,
                payload=resolved[job.content_hash],
                from_cache=job.content_hash in hit_hashes,
                stats=stats_by_hash.get(job.content_hash),
            )
            for job in jobs
            if job.content_hash in resolved
        ]
        return ExecutionReport(
            outcomes=outcomes,
            unique_jobs=total,
            cache_hits=len(hit_hashes),
            executed=len(pending) - len(failed_hashes),
            elapsed=time.perf_counter() - started,
            failed=len(failed_hashes),
        )

    def _execute_many(
        self,
        jobs: List[Job],
        on_executed: Callable[..., None],
        on_error: Optional[FailureCallback] = None,
        pre_hook: Optional[PreExecuteHook] = None,
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (a no-op for in-process executors)."""


def _execute_inline(
    jobs: List[Job],
    on_executed: Callable[..., None],
    on_error: Optional[FailureCallback] = None,
    pre_hook: Optional[PreExecuteHook] = None,
) -> None:
    """Run jobs in the calling process, with gauges and optional isolation.

    The same gauges the pool path maintains, so a --sample-interval time
    series reads consistently whichever executor ran (all gauge writes are
    no-ops while telemetry is disabled).
    """
    queue_gauge = obs_state.gauge("executor.queue_depth")
    in_flight_gauge = obs_state.gauge("executor.in_flight")
    obs_state.gauge("executor.workers").set(1)
    for index, job in enumerate(jobs):
        queue_gauge.set(len(jobs) - index - 1)
        in_flight_gauge.set(1)
        if on_error is not None:
            try:
                if pre_hook is not None:
                    pre_hook(job)
                payload, stats = execute_job_with_stats(job)
            except Exception as error:  # noqa: BLE001 - isolation contract
                on_error(job, _failure_from(job, error))
                continue
        else:
            if pre_hook is not None:
                pre_hook(job)
            payload, stats = execute_job_with_stats(job)
        on_executed(job, payload, stats)
    in_flight_gauge.set(0)


@dataclass
class SerialExecutor(Executor):
    """Execute jobs one after another in the calling process."""

    def _execute_many(
        self,
        jobs: List[Job],
        on_executed: Callable[..., None],
        on_error: Optional[FailureCallback] = None,
        pre_hook: Optional[PreExecuteHook] = None,
    ) -> None:
        _execute_inline(jobs, on_executed, on_error=on_error, pre_hook=pre_hook)


def _run_batch_jobs(
    jobs: List[Job],
    isolate: bool,
    pre_hook: Optional[PreExecuteHook],
) -> List[Any]:
    """Run one batch in order; items are ``(payload, stats)`` or ``JobFailure``."""
    executed: List[Any] = []
    for job in jobs:
        if isolate:
            try:
                if pre_hook is not None:
                    pre_hook(job)
                executed.append(execute_job_with_stats(job))
            except Exception as error:  # noqa: BLE001 - isolation contract
                executed.append(_failure_from(job, error))
        else:
            if pre_hook is not None:
                pre_hook(job)
            executed.append(execute_job_with_stats(job))
    return executed


def _pool_execute_batch(
    jobs: List[Job],
    collect_metrics: bool,
    isolate: bool = False,
    pre_hook: Optional[PreExecuteHook] = None,
):
    """Worker-side task: run a batch of jobs, optionally under a metrics scope.

    One submission carries ``len(jobs)`` jobs, so the pickle/IPC round trip is
    paid once per batch instead of once per job.  Jobs run strictly in the
    order submitted, each through the same ``execute_job_with_stats`` the
    serial path uses -- batching is a transport optimization and cannot change
    payloads.

    When the parent has telemetry enabled, the batch runs inside
    ``obs.scoped()`` -- a fresh registry (so counters do not double count
    across batches sharing a worker) that inherits the parent's sinks and
    trace flag via fork, letting worker trace events reach the same
    append-mode JSONL file.  The registry snapshot travels back with the
    results and is merged into the parent registry, which is how worker-side
    metrics aggregate across ``run()`` calls.

    With ``isolate``, a job exception is captured as a :class:`JobFailure`
    element in the result list instead of poisoning the batch -- the parent
    routes it to ``on_error`` and every other job in the batch still lands.
    ``pre_hook`` runs before each job *in this worker process*.
    """
    if not collect_metrics:
        return _run_batch_jobs(jobs, isolate, pre_hook), None
    with obs_state.scoped() as scope:
        executed = _run_batch_jobs(jobs, isolate, pre_hook)
        snapshot = scope.registry.snapshot()
    return executed, snapshot


#: Cap on auto-derived batch sizes: past this, the pickle amortization has
#: flattened out and bigger batches only make progress/result latency lumpier.
MAX_AUTO_BATCH_SIZE = 16

#: Auto-sizing aims for about this many submissions per worker, so slow jobs
#: still rebalance across the pool instead of one worker owning a giant batch.
AUTO_BATCH_ROUNDS = 4


def auto_batch_size(jobs: int, workers: int) -> int:
    """A batch size giving each worker ~:data:`AUTO_BATCH_ROUNDS` submissions.

    Small batches collapse to 1 (no behavior change for a handful of jobs);
    large campaigns amortize pickling without starving the pool of
    rebalancing opportunities.
    """
    if jobs <= 0:
        return 1
    per_worker = math.ceil(jobs / max(1, workers))
    return max(1, min(MAX_AUTO_BATCH_SIZE, math.ceil(per_worker / AUTO_BATCH_ROUNDS)))


def _worker_count(requested: Optional[int]) -> int:
    if requested is not None:
        if requested < 1:
            raise ValueError("worker count must be at least 1")
        return requested
    return max(1, os.cpu_count() or 1)


@dataclass
class ParallelExecutor(Executor):
    """Fan jobs out over a persistent process pool, one platform per worker.

    ``max_workers=None`` uses every available core.  ``batch_size`` packs that
    many jobs per pool submission (``None`` auto-sizes per batch via
    :func:`auto_batch_size`) so tiny jobs amortize their pickling round trips.
    ``max_pending`` bounds the number of batch futures in flight so campaigns
    with tens of thousands of jobs do not hold every argument pickled in
    memory at once.  The pool is created on first use and reused by every
    subsequent ``run()`` until :meth:`close`; :meth:`resize` changes the
    worker count between batches (the fleet autoscaler's lever).
    """

    max_workers: Optional[int] = None
    max_pending: int = 1024
    batch_size: Optional[int] = None
    _mp_context: Any = field(init=False, repr=False, default=None)
    _pool: Any = field(init=False, repr=False, default=None)
    _finalizer: Any = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.max_workers = _worker_count(self.max_workers)
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be at least 1 (or None for auto)")
        # Fork keeps worker start cheap and inherits the warm platform memo;
        # fall back to the platform default (e.g. spawn) where fork is absent.
        try:
            self._mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            self._mp_context = multiprocessing.get_context()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            obs_state.counter("executor.pool_starts").inc()
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._mp_context
            )
            # GC fallback: shut the workers down if the owner forgets close().
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=False
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down; the next ``run()`` starts a fresh one."""
        if self._pool is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
            self._pool.shutdown(wait=True)
            self._pool = None

    def resize(self, workers: int) -> None:
        """Change the worker count; takes effect on the next batch.

        A ``ProcessPoolExecutor`` cannot grow or shrink in place, so the warm
        pool is shut down and the next ``run()`` forks a fresh one at the new
        size.  That costs a pool start (the caller -- the fleet autoscaler --
        rate-limits itself with cooldowns); a same-size resize is a no-op and
        keeps the warm pool.
        """
        workers = _worker_count(workers)
        if workers == self.max_workers:
            return
        self.max_workers = workers
        self.close()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _execute_many(
        self,
        jobs: List[Job],
        on_executed: Callable[..., None],
        on_error: Optional[FailureCallback] = None,
        pre_hook: Optional[PreExecuteHook] = None,
    ) -> None:
        if self.max_workers == 1 or (len(jobs) == 1 and self._pool is None):
            # A pool would only add fork/teardown overhead; once a warm pool
            # exists, even single-job batches go through it.
            _execute_inline(jobs, on_executed, on_error=on_error, pre_hook=pre_hook)
            return
        collect_metrics = obs_state.enabled()
        if self._pool is not None and collect_metrics:
            obs_state.counter("executor.pool_reuse").inc()
        pool = self._ensure_pool()
        queue_gauge = obs_state.gauge("executor.queue_depth")
        in_flight_gauge = obs_state.gauge("executor.in_flight")
        obs_state.gauge("executor.workers").set(self.max_workers)
        size = self.batch_size or auto_batch_size(len(jobs), self.max_workers)
        queue = deque(
            jobs[start : start + size] for start in range(0, len(jobs), size)
        )
        queued_jobs = len(jobs)
        in_flight: Dict[Any, List[Job]] = {}
        in_flight_jobs = 0
        try:
            while queue or in_flight:
                while queue and len(in_flight) < self.max_pending:
                    batch = queue.popleft()
                    queued_jobs -= len(batch)
                    in_flight_jobs += len(batch)
                    in_flight[
                        pool.submit(
                            _pool_execute_batch,
                            batch,
                            collect_metrics,
                            on_error is not None,
                            pre_hook,
                        )
                    ] = batch
                # The gauges count *jobs*, not batch futures, so a sampled
                # time series reads the same whatever the batch size.
                queue_gauge.set(queued_jobs)
                in_flight_gauge.set(in_flight_jobs)
                done, _ = wait(set(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    batch = in_flight.pop(future)
                    executed, worker_snapshot = future.result()
                    if worker_snapshot is not None:
                        obs_state.merge_snapshot(worker_snapshot)
                    in_flight_jobs -= len(batch)
                    for job, item in zip(batch, executed):
                        if isinstance(item, JobFailure):
                            on_error(job, item)
                        else:
                            payload, stats = item
                            on_executed(job, payload, stats)
                # Refresh after draining completions too, so a background
                # sampler never reads a count the pool has already retired.
                in_flight_gauge.set(in_flight_jobs)
            queue_gauge.set(0)
            in_flight_gauge.set(0)
        except BrokenProcessPool:
            # A dead worker poisons the whole pool; drop it so the next
            # run() starts fresh instead of failing instantly forever.
            self.close()
            raise
        except BaseException:
            # Don't leave abandoned work running in the reused pool.
            for future in in_flight:
                future.cancel()
            raise


def make_executor(jobs: int = 1) -> Executor:
    """The natural executor for a ``--jobs N`` request."""
    if jobs < 1:
        raise ValueError("job count must be at least 1")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(max_workers=jobs)
