"""On-disk, content-addressed result store.

Every entry is one JSON file named by the job's content hash (sharded into
two-character prefix directories so large campaigns do not pile tens of
thousands of files into one directory).  The file records the full job spec
next to the result payload, so a cache entry is self-describing: it can be
audited, replayed, or garbage-collected without any external index.

Writes are atomic (write to a temp file in the same directory, then
``os.replace``) so a killed run never leaves a truncated entry behind, and
concurrent runs sharing a cache directory at worst do redundant work -- they
can never corrupt each other's entries.

A bounded in-memory memo sits in front of the disk store: warm sweeps that
resolve the same job hash repeatedly (campaign rebasing, ``hwsweep`` and
``robustness`` sharing jobs across experiments in one session) hit the memo
instead of re-reading and re-parsing the same JSON file.  Memo hits are
reported separately in :class:`CacheStats` (they still count as hits).
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.obs import state as obs_state
from repro.runtime.jobs import SCHEMA_VERSION, Job

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Default bound on the in-memory hit memo (entries, not bytes); a result
#: payload is a few KB, so the default working set stays small while covering
#: every real campaign's repeat-lookup pattern.
DEFAULT_MEMO_ENTRIES = 1024


def default_cache_dir() -> Path:
    """The cache directory the CLI and examples use by default."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache instance.

    ``memo_hits`` counts the subset of ``hits`` served from the in-memory memo
    without touching the on-disk entry.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    memo_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "memo_hits": self.memo_hits,
        }


@dataclass
class ResultCache:
    """Content-addressed job-result store rooted at ``root``.

    ``memo_entries`` bounds the in-memory hit memo (0 disables it).
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)
    memo_entries: int = DEFAULT_MEMO_ENTRIES
    _memo: "OrderedDict[str, Dict[str, Any]]" = field(
        default_factory=OrderedDict, repr=False
    )

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.memo_entries < 0:
            raise ValueError("memo_entries must be non-negative")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, job_hash: str) -> Path:
        """The entry file for a job hash."""
        if len(job_hash) < 3:
            raise ValueError(f"job hash {job_hash!r} is too short")
        return self.root / job_hash[:2] / f"{job_hash}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, job: Job) -> Optional[Dict[str, Any]]:
        """The cached result payload for ``job``, or ``None`` on a miss.

        Entries written under a different schema version, or unreadable files,
        count as misses (the entry will simply be recomputed and rewritten).
        Repeat lookups of the same hash are served from the in-memory memo
        without re-reading the file.
        """
        job_hash = job.content_hash
        memoized = self._memo.get(job_hash)
        if memoized is not None:
            self._memo.move_to_end(job_hash)
            self.stats.hits += 1
            self.stats.memo_hits += 1
            obs_state.counter("cache.hits").inc()
            obs_state.counter("cache.memo_hits").inc()
            # Serve a copy: a disk read always returned a fresh dict, so a
            # caller mutating its payload must never poison later hits.
            return copy.deepcopy(memoized)
        path = self.path_for(job_hash)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            # OSError covers missing/unreadable files; ValueError covers both
            # json.JSONDecodeError and UnicodeDecodeError from corrupt bytes.
            self.stats.misses += 1
            obs_state.counter("cache.misses").inc()
            return None
        if not isinstance(entry, dict) or entry.get("schema") != SCHEMA_VERSION or "result" not in entry:
            self.stats.misses += 1
            obs_state.counter("cache.misses").inc()
            return None
        self.stats.hits += 1
        obs_state.counter("cache.hits").inc()
        self._memoize(job_hash, entry["result"])
        return entry["result"]

    def _memoize(self, job_hash: str, payload: Dict[str, Any]) -> None:
        if self.memo_entries <= 0:
            return
        # Detach from the caller's dict for the same no-aliasing reason get()
        # serves copies.
        self._memo[job_hash] = copy.deepcopy(payload)
        self._memo.move_to_end(job_hash)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def put(self, job: Job, payload: Dict[str, Any]) -> Path:
        """Store ``payload`` for ``job`` atomically; returns the entry path."""
        job_hash = job.content_hash
        path = self.path_for(job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": SCHEMA_VERSION,
            "hash": job_hash,
            "job": job.to_dict(),
            "result": payload,
        }
        descriptor, temp_name = tempfile.mkstemp(
            prefix=f".{job_hash[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        obs_state.counter("cache.writes").inc()
        self._memoize(job_hash, payload)
        return path

    def contains(self, job: Job) -> bool:
        """True when an entry for ``job`` exists (does not touch the stats)."""
        return self.path_for(job.content_hash).is_file()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[Path]:
        """All entry files currently in the store."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def size_bytes(self) -> int:
        """Total on-disk size of all entries."""
        return sum(path.stat().st_size for path in self.iter_entries())

    def clear(self) -> int:
        """Delete every entry (and the in-memory memo); returns entries removed."""
        removed = 0
        for path in list(self.iter_entries()):
            path.unlink()
            removed += 1
        self._memo.clear()
        return removed
