"""Declarative sweep campaigns: grids of simulation jobs, deduplicated.

A campaign is a named, ordered, duplicate-free collection of jobs.  The grid
builder crosses workloads x policies x TDPs x DRAM devices -- the axes every
scaling study in the paper varies -- and drops jobs whose content hash has
already been seen, so overlapping campaigns (or a figure re-listing a workload
under a second axis) never submit redundant work.

The named campaigns registered in :data:`CAMPAIGNS` back the ``python -m repro
run <campaign>`` CLI targets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import config
from repro.runtime.jobs import (
    Job,
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
)
from repro.workloads.batterylife import BATTERY_LIFE_WORKLOADS
from repro.workloads.graphics import GRAPHICS_BENCHMARKS
from repro.workloads.spec2006 import SPEC_CPU2006


@dataclass(frozen=True)
class Campaign:
    """A named, deduplicated batch of jobs."""

    name: str
    jobs: Tuple[Job, ...]
    description: str = ""

    def __post_init__(self) -> None:
        hashes = [job.content_hash for job in self.jobs]
        if len(set(hashes)) != len(hashes):
            raise ValueError(f"campaign {self.name!r} contains duplicate jobs")

    def __len__(self) -> int:
        return len(self.jobs)

    def with_sim(self, sim: SimSpec) -> "Campaign":
        """A copy whose simulation jobs all use ``sim`` (for capped smoke runs)."""
        jobs = tuple(
            replace(job, sim=sim) if isinstance(job, SimulationJob) else job
            for job in self.jobs
        )
        return Campaign(name=self.name, jobs=dedupe_jobs(jobs), description=self.description)


def dedupe_jobs(jobs: Iterable[Job]) -> Tuple[Job, ...]:
    """Drop jobs with an already-seen content hash, preserving order."""
    seen = set()
    unique: List[Job] = []
    for job in jobs:
        job_hash = job.content_hash
        if job_hash not in seen:
            seen.add(job_hash)
            unique.append(job)
    return tuple(unique)


def build_grid_campaign(
    name: str,
    traces: Sequence[TraceSpec],
    policies: Sequence[PolicySpec],
    tdps: Sequence[float] = (config.SKYLAKE_DEFAULT_TDP,),
    drams: Sequence[str] = ("lpddr3",),
    sim: SimSpec = SimSpec(),
    peripherals: Optional[str] = None,
    description: str = "",
) -> Campaign:
    """Cross workloads x policies x TDPs x DRAM devices into one campaign."""
    jobs: List[Job] = []
    for dram in drams:
        for tdp in tdps:
            platform = PlatformSpec(tdp=tdp, dram=dram)
            for trace in traces:
                for policy in policies:
                    jobs.append(
                        SimulationJob(
                            trace=trace,
                            policy=policy,
                            platform=platform,
                            sim=sim,
                            peripherals=peripherals,
                        )
                    )
    return Campaign(name=name, jobs=dedupe_jobs(jobs), description=description)


# ---------------------------------------------------------------------------
# Named campaigns (CLI targets)
# ---------------------------------------------------------------------------

#: Representative SPEC subset for ``--quick`` runs (also used by the
#: evaluation-sweep example).
QUICK_SPEC_SUBSET: Tuple[str, ...] = (
    "400.perlbench", "416.gamess", "429.mcf", "433.milc", "436.cactusADM",
    "444.namd", "445.gobmk", "456.hmmer", "462.libquantum", "470.lbm",
    "473.astar", "482.sphinx3",
)

#: Default workload duration (seconds) for campaign traces.
CAMPAIGN_SPEC_DURATION = 1.0

BOTH_POLICIES = (PolicySpec.make("baseline"), PolicySpec.make("sysscale"))


def _spec_traces(quick: bool, duration: float = CAMPAIGN_SPEC_DURATION) -> List[TraceSpec]:
    names = QUICK_SPEC_SUBSET if quick else tuple(sorted(SPEC_CPU2006))
    return [TraceSpec.make("spec", name=name, duration=duration) for name in names]


def spec_tdp_campaign(quick: bool = False) -> Campaign:
    """SPEC x {baseline, SysScale} x the Table 2 TDP range (Fig. 10's grid)."""
    return build_grid_campaign(
        name="spec-tdp",
        traces=_spec_traces(quick),
        policies=BOTH_POLICIES,
        tdps=(config.SKYLAKE_TDP_RANGE[0], config.SKYLAKE_DEFAULT_TDP, config.SKYLAKE_TDP_RANGE[1]),
        description="SPEC CPU2006 x {baseline, SysScale} x {3.5, 4.5, 7.0} W",
    )


def evaluation_campaign(quick: bool = False) -> Campaign:
    """The paper's headline evaluation: SPEC + 3DMark + battery life (Figs. 7-9)."""
    jobs: List[Job] = []
    for trace in _spec_traces(quick):
        for policy in BOTH_POLICIES:
            jobs.append(SimulationJob(trace=trace, policy=policy))
    for name in sorted(GRAPHICS_BENCHMARKS):
        for policy in BOTH_POLICIES:
            jobs.append(
                SimulationJob(trace=TraceSpec.make("graphics", name=name), policy=policy)
            )
    for name in sorted(BATTERY_LIFE_WORKLOADS):
        for policy in BOTH_POLICIES:
            jobs.append(
                SimulationJob(
                    trace=TraceSpec.make("battery_life", name=name),
                    policy=policy,
                    peripherals="single_hd",
                )
            )
    return Campaign(
        name="evaluation",
        jobs=dedupe_jobs(jobs),
        description="SPEC + 3DMark + battery-life workloads under baseline and SysScale",
    )


def dram_device_campaign(quick: bool = False) -> Campaign:
    """SPEC x {baseline, SysScale} on LPDDR3 and DDR4 platforms (Sec. 7.4)."""
    traces = _spec_traces(quick)
    jobs: List[Job] = []
    for dram in ("lpddr3", "ddr4"):
        platform = PlatformSpec(dram=dram)
        policies = (
            PolicySpec.make("baseline"),
            PolicySpec.make("sysscale", operating_points="default" if dram == "lpddr3" else "ddr4"),
        )
        for trace in traces:
            for policy in policies:
                jobs.append(SimulationJob(trace=trace, policy=policy, platform=platform))
    return Campaign(
        name="dram-device",
        jobs=dedupe_jobs(jobs),
        description="SPEC under baseline and SysScale on LPDDR3 vs. DDR4 platforms",
    )


#: ``--quick`` scenario subset: one representative per generator family.
QUICK_SCENARIO_SUBSET: Tuple[str, ...] = (
    "bursty-heavy", "periodic-fast", "ramp-up", "idle-mostly",
    "thrash-sustained", "gfx-interference-light", "io-stream-hd",
    "markov-mobile-day",
)

#: Full scenario-sweep policy set; ``--quick`` drops the static MD-DVFS arm.
SCENARIO_POLICIES = (
    PolicySpec.make("baseline"),
    PolicySpec.make("sysscale"),
    PolicySpec.make("md_dvfs"),
)


def scenario_campaign(
    quick: bool = False,
    policies: Optional[Sequence[PolicySpec]] = None,
    names: Optional[Sequence[str]] = None,
) -> Campaign:
    """The synthesized-scenario catalog crossed with the policy set.

    The full grid is every catalog scenario x {baseline, SysScale, MD-DVFS};
    ``quick`` reduces to one scenario per generator family under the two
    headline policies.
    """
    # Deferred import: repro.runtime.__init__ imports this module, and the
    # scenario registry imports repro.runtime.jobs -- a top-level import here
    # would close that cycle.
    from repro.scenarios.registry import SCENARIOS, catalog_trace_specs

    if names is None:
        names = QUICK_SCENARIO_SUBSET if quick else tuple(sorted(SCENARIOS))
    if policies is None:
        policies = BOTH_POLICIES if quick else SCENARIO_POLICIES
    return build_grid_campaign(
        name="scenarios",
        traces=catalog_trace_specs(names),
        policies=policies,
        description=(
            f"{len(names)} synthesized scenario(s) x "
            f"{len(policies)} polic(ies) (repro.scenarios catalog)"
        ),
    )


#: Campaigns runnable by name from the CLI; each factory takes ``quick``.
CAMPAIGNS: Dict[str, Callable[[bool], Campaign]] = {
    "spec-tdp": spec_tdp_campaign,
    "evaluation": evaluation_campaign,
    "dram-device": dram_device_campaign,
    "scenarios": scenario_campaign,
}
