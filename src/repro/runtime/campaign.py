"""Declarative sweep campaigns: grids of simulation jobs, deduplicated.

A campaign is a named, ordered, duplicate-free collection of jobs.  The grid
builders cross workloads x policies x platforms -- either the classic
TDP x DRAM knobs over one base hardware description, or an explicit list of
:class:`~repro.hw.spec.HardwareSpec` variants (the hardware grid) -- and drop
jobs whose content hash has already been seen, so overlapping campaigns (or a
figure re-listing a workload under a second axis) never submit redundant work.

The named campaigns registered in :data:`CAMPAIGNS` back the ``python -m repro
run <campaign>`` CLI targets.  Every factory accepts an optional ``hardware``
base so ``--platform NAME --set key=value`` rebases a whole campaign onto a
different platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import config
from repro.hw import HardwareSpec, resolve_hardware
from repro.runtime.jobs import (
    Job,
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
)
from repro.workloads.batterylife import BATTERY_LIFE_WORKLOADS
from repro.workloads.graphics import GRAPHICS_BENCHMARKS
from repro.workloads.spec2006 import SPEC_CPU2006


@dataclass(frozen=True)
class Campaign:
    """A named, deduplicated batch of jobs."""

    name: str
    jobs: Tuple[Job, ...]
    description: str = ""

    def __post_init__(self) -> None:
        hashes = [job.content_hash for job in self.jobs]
        if len(set(hashes)) != len(hashes):
            raise ValueError(f"campaign {self.name!r} contains duplicate jobs")

    def __len__(self) -> int:
        return len(self.jobs)

    def with_sim(self, sim: SimSpec) -> "Campaign":
        """A copy whose simulation jobs all use ``sim`` (for capped smoke runs)."""
        jobs = tuple(
            replace(job, sim=sim) if isinstance(job, SimulationJob) else job
            for job in self.jobs
        )
        return Campaign(name=self.name, jobs=dedupe_jobs(jobs), description=self.description)


def dedupe_jobs(jobs: Iterable[Job]) -> Tuple[Job, ...]:
    """Drop jobs with an already-seen content hash, preserving order."""
    seen = set()
    unique: List[Job] = []
    for job in jobs:
        job_hash = job.content_hash
        if job_hash not in seen:
            seen.add(job_hash)
            unique.append(job)
    return tuple(unique)


def build_grid_campaign(
    name: str,
    traces: Sequence[TraceSpec],
    policies: Sequence[PolicySpec],
    tdps: Optional[Sequence[float]] = None,
    drams: Optional[Sequence[str]] = None,
    sim: SimSpec = SimSpec(),
    peripherals: Optional[str] = None,
    description: str = "",
    hardware: Optional[Union[str, HardwareSpec]] = None,
) -> Campaign:
    """Cross workloads x policies x TDPs x DRAM devices into one campaign.

    The TDP/DRAM axes are deltas over ``hardware`` (default: the registered
    ``skylake`` description), so the same grid can be rebased onto any
    platform variant.  An omitted axis *inherits* the base description's value
    rather than resetting it -- ``scenarios sweep --set tdp=7.0`` must sweep
    at 7 W, not silently at the grid's historical default.
    """
    base = resolve_hardware(hardware)
    tdp_axis: Sequence[float] = tuple(tdps) if tdps is not None else (base.tdp,)
    dram_axis: Sequence[object] = (
        tuple(drams) if drams is not None else (base.dram,)
    )
    jobs: List[Job] = []
    for dram in dram_axis:
        for tdp in tdp_axis:
            platform = base.derive(tdp=tdp, dram=dram)
            for trace in traces:
                for policy in policies:
                    jobs.append(
                        SimulationJob(
                            trace=trace,
                            policy=policy,
                            platform=platform,
                            sim=sim,
                            peripherals=peripherals,
                        )
                    )
    return Campaign(name=name, jobs=dedupe_jobs(jobs), description=description)


def build_hardware_grid_campaign(
    name: str,
    traces: Sequence[TraceSpec],
    hardware: Sequence[Union[str, HardwareSpec]],
    policies: Optional[Sequence[PolicySpec]] = None,
    sim: SimSpec = SimSpec(),
    peripherals: Optional[str] = None,
    description: str = "",
) -> Campaign:
    """Cross workloads x policies x an explicit list of hardware variants.

    When ``policies`` is omitted, every variant gets the headline
    {baseline, SysScale} pair with the SysScale operating-point table matched
    to the variant's DRAM family (the DDR4 variants need the DDR4 table).
    """
    jobs: List[Job] = []
    for entry in hardware:
        spec = resolve_hardware(entry)
        variant_policies = policies
        if variant_policies is None:
            sysscale = (
                # The parameter-free form matches the headline campaigns, so
                # lpddr3 jobs here dedupe against theirs.
                PolicySpec.make("sysscale")
                if spec.dram.technology == "lpddr3"
                else PolicySpec.make("sysscale", operating_points="ddr4")
            )
            variant_policies = (PolicySpec.make("baseline"), sysscale)
        for trace in traces:
            for policy in variant_policies:
                jobs.append(
                    SimulationJob(
                        trace=trace,
                        policy=policy,
                        platform=spec,
                        sim=sim,
                        peripherals=peripherals,
                    )
                )
    return Campaign(name=name, jobs=dedupe_jobs(jobs), description=description)


# ---------------------------------------------------------------------------
# Named campaigns (CLI targets)
# ---------------------------------------------------------------------------

#: Representative SPEC subset for ``--quick`` runs (also used by the
#: evaluation-sweep example).
QUICK_SPEC_SUBSET: Tuple[str, ...] = (
    "400.perlbench", "416.gamess", "429.mcf", "433.milc", "436.cactusADM",
    "444.namd", "445.gobmk", "456.hmmer", "462.libquantum", "470.lbm",
    "473.astar", "482.sphinx3",
)

#: Default workload duration (seconds) for campaign traces.
CAMPAIGN_SPEC_DURATION = 1.0

BOTH_POLICIES = (PolicySpec.make("baseline"), PolicySpec.make("sysscale"))


def _spec_traces(quick: bool, duration: float = CAMPAIGN_SPEC_DURATION) -> List[TraceSpec]:
    names = QUICK_SPEC_SUBSET if quick else tuple(sorted(SPEC_CPU2006))
    return [TraceSpec.make("spec", name=name, duration=duration) for name in names]


def spec_tdp_campaign(
    quick: bool = False, hardware: Optional[Union[str, HardwareSpec]] = None
) -> Campaign:
    """SPEC x {baseline, SysScale} x the Table 2 TDP range (Fig. 10's grid)."""
    return build_grid_campaign(
        name="spec-tdp",
        traces=_spec_traces(quick),
        policies=BOTH_POLICIES,
        tdps=(config.SKYLAKE_TDP_RANGE[0], config.SKYLAKE_DEFAULT_TDP, config.SKYLAKE_TDP_RANGE[1]),
        description="SPEC CPU2006 x {baseline, SysScale} x {3.5, 4.5, 7.0} W",
        hardware=hardware,
    )


def evaluation_campaign(
    quick: bool = False, hardware: Optional[Union[str, HardwareSpec]] = None
) -> Campaign:
    """The paper's headline evaluation: SPEC + 3DMark + battery life (Figs. 7-9)."""
    platform = resolve_hardware(hardware)
    jobs: List[Job] = []
    for trace in _spec_traces(quick):
        for policy in BOTH_POLICIES:
            jobs.append(SimulationJob(trace=trace, policy=policy, platform=platform))
    for name in sorted(GRAPHICS_BENCHMARKS):
        for policy in BOTH_POLICIES:
            jobs.append(
                SimulationJob(
                    trace=TraceSpec.make("graphics", name=name),
                    policy=policy,
                    platform=platform,
                )
            )
    for name in sorted(BATTERY_LIFE_WORKLOADS):
        for policy in BOTH_POLICIES:
            jobs.append(
                SimulationJob(
                    trace=TraceSpec.make("battery_life", name=name),
                    policy=policy,
                    platform=platform,
                    peripherals="single_hd",
                )
            )
    return Campaign(
        name="evaluation",
        jobs=dedupe_jobs(jobs),
        description="SPEC + 3DMark + battery-life workloads under baseline and SysScale",
    )


def dram_device_campaign(
    quick: bool = False, hardware: Optional[Union[str, HardwareSpec]] = None
) -> Campaign:
    """SPEC x {baseline, SysScale} on LPDDR3 and DDR4 platforms (Sec. 7.4)."""
    base = resolve_hardware(hardware)
    traces = _spec_traces(quick)
    jobs: List[Job] = []
    for dram in ("lpddr3", "ddr4"):
        platform = base.derive(dram=dram)
        policies = (
            PolicySpec.make("baseline"),
            PolicySpec.make("sysscale", operating_points="default" if dram == "lpddr3" else "ddr4"),
        )
        for trace in traces:
            for policy in policies:
                jobs.append(SimulationJob(trace=trace, policy=policy, platform=platform))
    return Campaign(
        name="dram-device",
        jobs=dedupe_jobs(jobs),
        description="SPEC under baseline and SysScale on LPDDR3 vs. DDR4 platforms",
    )


#: Hardware-variant axis of the ``hw-variants`` campaign and the ``hwsweep``
#: experiment; ``--quick`` keeps the first three.
DEFAULT_HW_VARIANTS: Tuple[str, ...] = (
    "skylake", "broadwell", "skylake-lowleak", "skylake-7w", "skylake-ddr4",
)


def hw_variants_campaign(
    quick: bool = False, hardware: Optional[Union[str, HardwareSpec]] = None
) -> Campaign:
    """SPEC subset x {baseline, SysScale} x registered hardware variants.

    ``hardware`` (from ``--platform``/``--set``) replaces the whole variant
    axis with the single given platform -- useful to run the workload grid on
    one ad-hoc description.
    """
    variants: Sequence[Union[str, HardwareSpec]]
    if hardware is not None:
        variants = (resolve_hardware(hardware),)
    else:
        variants = DEFAULT_HW_VARIANTS[:3] if quick else DEFAULT_HW_VARIANTS
    return build_hardware_grid_campaign(
        name="hw-variants",
        traces=_spec_traces(True),
        hardware=variants,
        description=(
            f"SPEC subset x {{baseline, SysScale}} x {len(variants)} "
            "hardware variant(s)"
        ),
    )


#: ``--quick`` scenario subset: one representative per generator family.
QUICK_SCENARIO_SUBSET: Tuple[str, ...] = (
    "bursty-heavy", "periodic-fast", "ramp-up", "idle-mostly",
    "thrash-sustained", "gfx-interference-light", "io-stream-hd",
    "markov-mobile-day",
)

#: Full scenario-sweep policy set; ``--quick`` drops the static MD-DVFS arm.
SCENARIO_POLICIES = (
    PolicySpec.make("baseline"),
    PolicySpec.make("sysscale"),
    PolicySpec.make("md_dvfs"),
)


def scenario_campaign(
    quick: bool = False,
    policies: Optional[Sequence[PolicySpec]] = None,
    names: Optional[Sequence[str]] = None,
    hardware: Optional[Union[str, HardwareSpec]] = None,
) -> Campaign:
    """The synthesized-scenario catalog crossed with the policy set.

    The full grid is every catalog scenario x {baseline, SysScale, MD-DVFS};
    ``quick`` reduces to one scenario per generator family under the two
    headline policies.
    """
    # Deferred import: repro.runtime.__init__ imports this module, and the
    # scenario registry imports repro.runtime.jobs -- a top-level import here
    # would close that cycle.
    from repro.scenarios.registry import SCENARIOS, catalog_trace_specs

    if names is None:
        names = QUICK_SCENARIO_SUBSET if quick else tuple(sorted(SCENARIOS))
    if policies is None:
        policies = BOTH_POLICIES if quick else SCENARIO_POLICIES
    return build_grid_campaign(
        name="scenarios",
        traces=catalog_trace_specs(names),
        policies=policies,
        description=(
            f"{len(names)} synthesized scenario(s) x "
            f"{len(policies)} polic(ies) (repro.scenarios catalog)"
        ),
        hardware=hardware,
    )


#: Campaigns runnable by name from the CLI; each factory takes ``quick`` and an
#: optional ``hardware`` base (the ``--platform``/``--set`` override).
CAMPAIGNS: Dict[str, Callable[..., Campaign]] = {
    "spec-tdp": spec_tdp_campaign,
    "evaluation": evaluation_campaign,
    "dram-device": dram_device_campaign,
    "scenarios": scenario_campaign,
    "hw-variants": hw_variants_campaign,
}
