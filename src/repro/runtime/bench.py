"""The ``python -m repro bench`` performance harness.

Measures the hot paths the runtime's throughput rests on and emits one
machine-readable JSON document (``BENCH_8.json`` by default) so every PR has a
perf trajectory to compare against.  ``repro bench compare BASELINE
[CURRENT]`` diffs two such documents with per-metric regression budgets
derived from the recorded per-repetition samples (see
:mod:`repro.obs.analysis.benchdiff`):

* **engine** -- the cold single-job engine benchmark: one battery-life trace
  (the paper's Sec. 7.3 shape, the motivating 120 s case) under SysScale, run
  once with the seed per-tick reference loop
  (``SimulationConfig(reference_loop=True)``) and once with the default
  segment-stepping loop, in the same process in the same invocation.  Reports
  ticks/second for both and the speedup; **fails unless the two results are
  bit-identical**.
* **engine_markov** -- the same comparison on a Markov scenario walk, the
  memo-friendly shape (recurring phases share one model evaluation).
* **engine_telemetry** -- the fast engine path run three ways: ``repro.obs``
  disabled (the default no-op state), enabled for metrics only, and enabled
  with full segment tracing.  Reports the overhead of each; **fails unless
  all three results are bit-identical** and the metrics-only overhead stays
  within the acceptance bound.
* **jobs_serial** -- a scenario-catalog job batch through ``SerialExecutor``
  against a fresh temporary result cache (cold) and again against the now-warm
  cache; reports jobs/second for both and **fails unless the warm payloads are
  bit-identical to the cold ones** (and the warm pass simulated nothing).
* **jobs_parallel** -- the same batch through a ``ParallelExecutor`` worker
  pool into its own fresh cache; **fails unless the parallel payloads are
  bit-identical to the serial ones**.
* **jobs_batched** -- the same batch through an explicitly batched pool
  (``batch_size=8``), cold and warm, then re-run with ``batch_size=1``
  through the same warm pool to isolate what per-submission pickling costs.
  **Fails unless batched payloads are bit-identical to serial** and (full
  mode) batching at least matches per-job dispatch; the cold
  batched-vs-serial speedup gate additionally requires a machine that can
  actually run two workers at once (``parallel_capacity >= 2``) -- on a
  single-CPU container no submission strategy can beat serial, and the
  document records the capacity so the skip is auditable.

Every check doubles as a regression gate: the CLI exits non-zero when any
fails, which is what the CI ``repro bench --quick`` step relies on.
"""

from __future__ import annotations

import json
import os
import platform as platform_module
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import Console, MemorySink
from repro.obs import state as obs_state
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Executor, ParallelExecutor, SerialExecutor
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import Platform

#: Bench document schema version (bump on incompatible layout changes).
#: v2 added per-repetition ``*_samples`` arrays, which ``repro bench
#: compare`` uses to derive noise-based regression budgets.
BENCH_SCHEMA_VERSION = 2

#: The PR series number this harness writes by default; the driver and CI look
#: for ``BENCH_<n>.json`` so successive PRs leave a comparable trajectory.
BENCH_SERIES = 8

DEFAULT_BENCH_PATH = f"BENCH_{BENCH_SERIES}.json"

#: The speedup the segment-stepping engine must sustain over the reference
#: loop on the cold single-job benchmark (the PR's acceptance floor).
MIN_ENGINE_SPEEDUP = 5.0

#: The metrics-only telemetry overhead the fast engine path may pay (full
#: suite); quick mode measures runs too short to separate from timer noise,
#: so it gets a generous slack instead.
MAX_TELEMETRY_OVERHEAD = 0.05
MAX_TELEMETRY_OVERHEAD_QUICK = 0.50


def _time(function: Callable[[], Any], repeats: int = 1) -> Tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``function`` plus its last result."""
    best, _samples, result = _time_samples(function, repeats)
    return best, result


def _time_samples(
    function: Callable[[], Any], repeats: int = 1
) -> Tuple[float, List[float], Any]:
    """Like :func:`_time` but also returning every repetition's wall time.

    The per-repetition samples land in the bench document (``*_samples``);
    ``repro bench compare`` derives noise-based regression budgets from
    their spread instead of guessing a one-size tolerance.
    """
    samples: List[float] = []
    result = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = function()
        samples.append(time.perf_counter() - started)
    return min(samples), samples, result


def _interleaved_time(
    functions: List[Callable[[], Any]], repeats: int
) -> List[Tuple[float, List[float], Any]]:
    """Best-of-``repeats`` for several functions, sampled round-robin.

    Timing each function's repetitions back-to-back lets slow drift (thermal
    ramps, another process waking up) land entirely on one configuration and
    masquerade as a real difference -- BENCH_6 recorded a *negative*
    telemetry overhead exactly this way.  Interleaving spreads any drift
    evenly across all configurations, so best-of-N minimums compare like
    with like.

    The order rotates every round: a fixed order would hand position
    effects (the first run paying the previous round's garbage, the second
    enjoying warmed caches) to the same configuration every time, which is
    just drift at round granularity.
    """
    samples: List[List[float]] = [[] for _ in functions]
    results: List[Any] = [None] * len(functions)
    for round_index in range(max(1, repeats)):
        for offset in range(len(functions)):
            index = (round_index + offset) % len(functions)
            started = time.perf_counter()
            results[index] = functions[index]()
            samples[index].append(time.perf_counter() - started)
    return [
        (min(samples[index]), samples[index], results[index])
        for index in range(len(functions))
    ]


def _engine_case(
    name: str,
    platform: Platform,
    trace,
    policy_factory: Callable[[], Any],
    max_time: float,
    repeats: int,
    checks: Dict[str, bool],
) -> Dict[str, Any]:
    """Fast-vs-reference comparison of one single-job engine run."""
    fast_engine = SimulationEngine(
        platform, SimulationConfig(max_simulated_time=max_time)
    )
    reference_engine = SimulationEngine(
        platform, SimulationConfig(max_simulated_time=max_time, reference_loop=True)
    )
    # One untimed fast run first warms the platform-level caches both loops
    # share, so the reference loop is not charged for them.
    fast_engine.run(trace, policy_factory())

    reference_seconds, reference_samples, reference_result = _time_samples(
        lambda: reference_engine.run(trace, policy_factory())
    )
    fast_seconds, fast_samples, fast_result = _time_samples(
        lambda: fast_engine.run(trace, policy_factory()), repeats=repeats
    )
    stats = fast_engine.last_run_stats
    parity = fast_result.to_dict() == reference_result.to_dict()
    checks[f"{name}_fast_reference_parity"] = parity

    ticks = stats.ticks
    return {
        "workload": trace.name,
        "policy": fast_result.policy,
        "simulated_seconds": fast_result.execution_time,
        "ticks": ticks,
        "reference_seconds": reference_seconds,
        "reference_samples": reference_samples,
        "fast_seconds": fast_seconds,
        "fast_samples": fast_samples,
        "speedup": reference_seconds / fast_seconds if fast_seconds > 0 else 0.0,
        "reference_ticks_per_second": ticks / reference_seconds if reference_seconds else 0.0,
        "fast_ticks_per_second": ticks / fast_seconds if fast_seconds else 0.0,
        "segments": stats.segments,
        "model_evaluations": stats.model_evaluations,
        "memo_hits": stats.memo_hits,
        "ticks_per_model_evaluation": stats.ticks_per_evaluation,
        "bit_identical": parity,
    }


def _telemetry_case(
    platform: Platform,
    trace,
    policy_factory: Callable[[], Any],
    max_time: float,
    repeats: int,
    quick: bool,
    checks: Dict[str, bool],
) -> Dict[str, Any]:
    """Overhead and bit-identity of the fast engine path under telemetry.

    Three timed configurations: telemetry disabled (the production default),
    enabled for metrics only, and full segment tracing.  The traced
    configuration uses its own engine with ``trace_segments=True`` in the
    *config* -- the engine never consults ambient obs state (that inversion
    is what keeps the sim layer free of telemetry imports) -- while
    ``scoped()`` still pins each run's obs state explicitly, so ambient
    ``--trace-out``/``--profile`` flags on the bench invocation itself cannot
    skew the disabled baseline.

    The three configurations are timed **interleaved, best-of-N** (see
    :func:`_interleaved_time`): timing them sequentially let machine drift
    land on one configuration and report impossible negative overheads
    (BENCH_6 shipped ``metrics_overhead_fraction = -0.12``).  Timing noise
    is additive-positive (a shared box only ever steals cycles, it never
    donates them), so each configuration's minimum converges on its true
    floor and the ratio of minimums estimates the real overhead -- but only
    with enough rounds for every configuration to land a clean one, so this
    case scales ``repeats`` well past the throughput cases.
    """
    engine = SimulationEngine(platform, SimulationConfig(max_simulated_time=max_time))
    traced_engine = SimulationEngine(
        platform,
        SimulationConfig(max_simulated_time=max_time, trace_segments=True),
    )
    engine.run(trace, policy_factory())  # warm the shared platform caches

    def run_plain():
        with obs_state.scoped(enabled=False):
            return engine.run(trace, policy_factory())

    def run_metrics():
        with obs_state.scoped(enabled=True, sinks=[]):
            return engine.run(trace, policy_factory())

    sink = MemorySink()
    trace_summary: Dict[str, Any] = {}

    def run_traced():
        sink.clear()
        with obs_state.scoped(enabled=True, sinks=[sink], trace_segments=True):
            result = traced_engine.run(trace, policy_factory())
        if traced_engine.last_run_trace is not None:
            trace_summary.update(traced_engine.last_run_trace.summary())
        return result

    # The paired-median estimator needs enough rounds to resolve a
    # few-percent effect under heavy per-sample noise (shared CI boxes show
    # +/-10% per round): the median's standard error shrinks ~1/sqrt(N).
    overhead_repeats = max(5 if quick else 21, repeats)
    (
        (plain_seconds, plain_samples, plain_result),
        (metrics_seconds, metrics_samples, metrics_result),
        (traced_seconds, traced_samples, traced_result),
    ) = _interleaved_time(
        [run_plain, run_metrics, run_traced], repeats=overhead_repeats
    )

    segments = int(trace_summary.get("segments", 0))

    identical = (
        plain_result.to_dict() == metrics_result.to_dict() == traced_result.to_dict()
    )
    metrics_overhead = (
        metrics_seconds / plain_seconds - 1.0 if plain_seconds > 0 else 0.0
    )
    traced_overhead = (
        traced_seconds / plain_seconds - 1.0 if plain_seconds > 0 else 0.0
    )
    bound = MAX_TELEMETRY_OVERHEAD_QUICK if quick else MAX_TELEMETRY_OVERHEAD
    checks["telemetry_bit_identity"] = identical
    checks["telemetry_trace_recorded"] = segments > 0
    checks["telemetry_overhead_within_bound"] = metrics_overhead <= bound

    return {
        "workload": trace.name,
        "ticks": engine.last_run_stats.ticks,
        "repeats": overhead_repeats,
        "plain_seconds": plain_seconds,
        "plain_samples": plain_samples,
        "metrics_seconds": metrics_seconds,
        "metrics_samples": metrics_samples,
        "traced_seconds": traced_seconds,
        "traced_samples": traced_samples,
        "metrics_overhead_fraction": metrics_overhead,
        "traced_overhead_fraction": traced_overhead,
        "overhead_bound": bound,
        "trace_segments": segments,
        "bit_identical": identical,
    }


def _run_batch(
    executor: Executor, jobs, cache: ResultCache
) -> Tuple[float, Any]:
    started = time.perf_counter()
    report = executor.run(jobs, cache=cache)
    return time.perf_counter() - started, report


def _jobs_cases(
    quick: bool, workers: int, max_time: float, checks: Dict[str, bool]
) -> Dict[str, Dict[str, Any]]:
    """Cold/warm serial and parallel throughput over a scenario job batch."""
    # Deferred import: the campaign module pulls in the scenario registry.
    from repro.runtime.campaign import scenario_campaign
    from repro.runtime.jobs import SimSpec

    campaign = scenario_campaign(quick=quick).with_sim(
        SimSpec(max_simulated_time=max_time)
    )
    jobs = list(campaign.jobs)
    results: Dict[str, Dict[str, Any]] = {}

    scratch = Path(tempfile.mkdtemp(prefix="repro-bench-"))
    try:
        serial_cache = ResultCache(scratch / "serial")
        cold_seconds, cold = _run_batch(SerialExecutor(), jobs, serial_cache)
        warm_seconds, warm = _run_batch(SerialExecutor(), jobs, serial_cache)
        warm_identical = warm.payloads() == cold.payloads()
        checks["warm_cache_bit_identity"] = warm_identical
        checks["warm_cache_simulates_nothing"] = warm.executed == 0
        results["jobs_serial"] = {
            "jobs": len(jobs),
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "cold_jobs_per_second": len(jobs) / cold_seconds if cold_seconds else 0.0,
            "warm_jobs_per_second": len(jobs) / warm_seconds if warm_seconds else 0.0,
            "warm_cache_hits": warm.cache_hits,
            "warm_executed": warm.executed,
            "bit_identical": warm_identical,
        }

        parallel_cache = ResultCache(scratch / "parallel")
        with ParallelExecutor(max_workers=workers) as pool:
            parallel_seconds, parallel = _run_batch(pool, jobs, parallel_cache)
            # A second batch through the *same* pool exercises pool reuse.
            reuse_seconds, _ = _run_batch(pool, jobs, ResultCache(scratch / "reuse"))
        parallel_identical = parallel.payloads() == cold.payloads()
        checks["serial_parallel_bit_identity"] = parallel_identical
        results["jobs_parallel"] = {
            "jobs": len(jobs),
            "workers": workers,
            "cold_seconds": parallel_seconds,
            "cold_jobs_per_second": (
                len(jobs) / parallel_seconds if parallel_seconds else 0.0
            ),
            "pool_reuse_seconds": reuse_seconds,
            "pool_reuse_jobs_per_second": (
                len(jobs) / reuse_seconds if reuse_seconds else 0.0
            ),
            "bit_identical": parallel_identical,
        }

        # Batched dispatch.  The cold pass measures the headline number; the
        # warm-pool batch-size-8 vs batch-size-1 pair isolates the pickling
        # amortization itself, which -- unlike the serial comparison -- does
        # not depend on how many CPUs the machine can actually run at once.
        batch_size = 8 if len(jobs) >= 16 else max(1, len(jobs) // 2)
        with ParallelExecutor(max_workers=workers, batch_size=batch_size) as pool:
            batched_seconds, batched = _run_batch(
                pool, jobs, ResultCache(scratch / "batched")
            )
            batched_reuse_seconds = min(
                _run_batch(pool, jobs, ResultCache(scratch / f"batched-reuse{i}"))[0]
                for i in range(2)
            )
            # Same warm pool, per-job submission: what batching saves.
            pool.batch_size = 1
            unbatched_seconds = min(
                _run_batch(pool, jobs, ResultCache(scratch / f"unbatched{i}"))[0]
                for i in range(2)
            )
        batched_identical = batched.payloads() == cold.payloads()
        checks["batched_parallel_bit_identity"] = batched_identical
        amortization = (
            unbatched_seconds / batched_reuse_seconds if batched_reuse_seconds else 0.0
        )
        speedup_vs_serial = (
            cold_seconds / batched_seconds if batched_seconds else 0.0
        )
        # How many of the requested workers this machine can truly run in
        # parallel.  Gate the beats-serial check on it: with one CPU, cold
        # parallel can never beat serial whatever the submission strategy.
        parallel_capacity = min(workers, os.cpu_count() or 1)
        if not quick:
            checks["batched_amortizes_dispatch"] = amortization >= 1.0
            if parallel_capacity >= 2:
                checks["batched_beats_serial_1_5x"] = speedup_vs_serial >= 1.5
        results["jobs_batched"] = {
            "jobs": len(jobs),
            "workers": workers,
            "batch_size": batch_size,
            "parallel_capacity": parallel_capacity,
            "cold_seconds": batched_seconds,
            "cold_jobs_per_second": (
                len(jobs) / batched_seconds if batched_seconds else 0.0
            ),
            "pool_reuse_seconds": batched_reuse_seconds,
            "pool_reuse_jobs_per_second": (
                len(jobs) / batched_reuse_seconds if batched_reuse_seconds else 0.0
            ),
            "unbatched_seconds": unbatched_seconds,
            "unbatched_jobs_per_second": (
                len(jobs) / unbatched_seconds if unbatched_seconds else 0.0
            ),
            "dispatch_amortization": amortization,
            "speedup_vs_serial": speedup_vs_serial,
            "bit_identical": batched_identical,
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    return results


def run_bench(
    quick: bool = False,
    workers: int = 2,
    repeats: Optional[int] = None,
) -> Dict[str, Any]:
    """Run every benchmark and return the (JSON-serializable) document."""
    from repro.runtime.jobs import _build_sysscale
    from repro.scenarios.registry import SCENARIOS
    from repro.sim.platform import build_platform
    from repro.workloads.batterylife import battery_life_workload

    if repeats is None:
        repeats = 2 if quick else 3
    checks: Dict[str, bool] = {}
    soc = build_platform()

    battery_trace = battery_life_workload(
        "video_playback", cycles=2 if quick else 20
    )
    markov_trace = SCENARIOS["markov-mobile-day"].build()

    results: Dict[str, Any] = {}
    results["engine"] = _engine_case(
        "engine",
        soc,
        battery_trace,
        lambda: _build_sysscale(soc),
        max_time=battery_trace.total_duration + 1.0,
        repeats=repeats,
        checks=checks,
    )
    checks["engine_speedup_at_least_5x"] = (
        results["engine"]["speedup"] >= MIN_ENGINE_SPEEDUP
    )
    results["engine_markov"] = _engine_case(
        "engine_markov",
        soc,
        markov_trace,
        lambda: _build_sysscale(soc),
        max_time=markov_trace.total_duration + 1.0,
        repeats=repeats,
        checks=checks,
    )
    results["engine_telemetry"] = _telemetry_case(
        soc,
        battery_trace,
        lambda: _build_sysscale(soc),
        max_time=battery_trace.total_duration + 1.0,
        repeats=repeats,
        quick=quick,
        checks=checks,
    )
    results.update(
        _jobs_cases(
            quick=quick,
            workers=workers,
            max_time=0.1 if quick else 0.5,
            checks=checks,
        )
    )

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": BENCH_SERIES,
        "quick": quick,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "machine": platform_module.machine(),
        "results": results,
        "checks": checks,
        "ok": all(checks.values()),
    }


def main(args) -> int:
    """CLI entry point (wired up by ``repro.runtime.cli``)."""
    ui = Console(info_stream=sys.stderr if args.json else None)
    if args.jobs < 1:
        ui.error(f"--jobs must be at least 1, got {args.jobs}")
        return 2
    ui.info(
        f"bench: {'quick' if args.quick else 'full'} suite, "
        f"{args.jobs} worker(s)"
    )
    document = run_bench(quick=args.quick, workers=args.jobs)

    for name, metrics in document["results"].items():
        line = f"  {name:16s}"
        if "speedup" in metrics:
            line += (
                f" {metrics['ticks']:>7d} ticks  "
                f"fast {metrics['fast_ticks_per_second']:,.0f} ticks/s  "
                f"reference {metrics['reference_ticks_per_second']:,.0f} ticks/s  "
                f"speedup {metrics['speedup']:.1f}x"
            )
        elif "metrics_overhead_fraction" in metrics:
            line += (
                f" {metrics['ticks']:>7d} ticks  "
                f"metrics {metrics['metrics_overhead_fraction'] * 100:+.1f}%  "
                f"traced {metrics['traced_overhead_fraction'] * 100:+.1f}%  "
                f"({metrics['trace_segments']} segments)"
            )
        else:
            line += (
                f" {metrics['jobs']:>4d} jobs  "
                f"cold {metrics['cold_jobs_per_second']:.1f} jobs/s"
            )
            if "warm_jobs_per_second" in metrics:
                line += f"  warm {metrics['warm_jobs_per_second']:.1f} jobs/s"
        ui.info(line)
    failed = sorted(name for name, ok in document["checks"].items() if not ok)
    if failed:
        ui.error(f"bench: FAILED check(s): {', '.join(failed)}")
    else:
        ui.info("bench: all checks passed")

    if args.json:
        ui.out(json.dumps(document, indent=2))
    out_arg = args.out if args.out is not None else DEFAULT_BENCH_PATH
    if out_arg != "-":
        out = Path(out_arg)
        if str(out.parent) not in ("", "."):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
        ui.info(f"wrote {out}")
    return 0 if document["ok"] else 1


def compare_main(args) -> int:
    """``repro bench compare BASELINE [CURRENT]`` (wired up by the CLI).

    With no CURRENT document, runs a fresh bench in-process (honouring
    ``--quick``/``--jobs``) and gates it against the baseline.  Exits 1 when
    any metric exceeds its budget, 2 on unreadable documents.
    """
    from repro.obs.analysis.benchdiff import (
        compare_documents,
        load_bench_document,
        render_comparison_text,
    )

    ui = Console(info_stream=sys.stderr if args.json else None)
    try:
        baseline = load_bench_document(args.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        ui.error(f"bench compare: cannot read baseline: {error}")
        return 2

    if args.current is not None:
        try:
            current = load_bench_document(args.current)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            ui.error(f"bench compare: cannot read current: {error}")
            return 2
        current_label = str(args.current)
    else:
        ui.info(
            f"bench compare: no CURRENT given, running a fresh "
            f"{'quick' if args.quick else 'full'} bench"
        )
        current = run_bench(quick=args.quick, workers=args.jobs)
        current_label = "<fresh run>"

    comparison = compare_documents(
        baseline,
        current,
        baseline_label=str(args.baseline),
        current_label=current_label,
    )
    if args.json:
        ui.out(json.dumps(comparison.to_dict(), indent=2))
    else:
        ui.out(render_comparison_text(comparison))
    return 0 if comparison.ok else 1
