"""The ``python -m repro`` command line.

Four subcommands:

* ``list`` -- every runnable target (the paper's tables and figures plus the
  named sweep campaigns) and every registered building block: trace builders,
  policies, DRAM devices, and the scenario catalog;
* ``run TARGET [TARGET ...]`` -- run targets through the runtime, with
  ``--jobs N`` (process parallelism), ``--cache-dir``/``--no-cache`` (the
  content-addressed result store), ``--quick`` (reduced workload sets), and
  ``--duration``/``--max-time`` (trace/engine scaling for smoke runs);
* ``scenarios`` -- the synthesized-workload catalog: ``list`` it, ``describe``
  one spec, or ``sweep`` scenarios x policies through the runtime;
* ``cache`` -- inspect or clear the result store.

Every ``run`` invocation ends with the runtime summary line, e.g.::

    runtime: 58 job(s) submitted, 58 unique, 0 simulated, 58 cache hit(s)

so a warm-cache rerun is verifiable at a glance (``0 simulated``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro import config
from repro.experiments import (
    build_context,
    run_scenario_robustness,
    run_dram_frequency_sensitivity,
    run_fig2_motivation,
    run_fig3_bandwidth_demand,
    run_fig4_mrc_impact,
    run_fig5_transition_flow,
    run_fig6_prediction,
    run_fig7_spec,
    run_fig8_graphics,
    run_fig9_battery_life,
    run_fig10_tdp_sensitivity,
    run_table1,
    run_table2,
)
from repro.experiments.runner import ExperimentContext, ExperimentRuntime
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.campaign import (
    CAMPAIGNS,
    QUICK_SCENARIO_SUBSET,
    QUICK_SPEC_SUBSET,
    scenario_campaign,
)
from repro.runtime.executor import ProgressUpdate, make_executor
from repro.runtime.jobs import (
    DRAM_BUILDERS,
    POLICY_BUILDERS,
    TRACE_BUILDERS,
    PolicySpec,
    SimSpec,
    SimulationJob,
)
from repro.sim.engine import SimulationConfig
from repro.workloads.trace import WorkloadClass

#: ``--quick`` corpus sizes for the Fig. 6 predictor evaluation.
QUICK_FIG6_CORPUS = {
    WorkloadClass.CPU_SINGLE_THREAD: 60,
    WorkloadClass.CPU_MULTI_THREAD: 30,
    WorkloadClass.GRAPHICS: 20,
}

Target = Callable[[ExperimentContext, bool], Dict[str, Any]]

#: Experiment targets: name -> (description, runner(context, quick)).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (
        "Table 1: static MD-DVFS operating-point settings",
        lambda context, quick: run_table1(context),
    ),
    "table2": (
        "Table 2: evaluated system parameters",
        lambda context, quick: run_table2(context),
    ),
    "fig2": (
        "Fig. 2: MD-DVFS motivation (power vs. performance impact)",
        lambda context, quick: run_fig2_motivation(context),
    ),
    "fig3": (
        "Fig. 3: memory bandwidth demand of workloads and displays",
        lambda context, quick: run_fig3_bandwidth_demand(context),
    ),
    "fig4": (
        "Fig. 4: impact of unoptimized MRC register values",
        lambda context, quick: run_fig4_mrc_impact(context),
    ),
    "fig5": (
        "Fig. 5: SysScale transition-flow latency breakdown",
        lambda context, quick: run_fig5_transition_flow(context),
    ),
    "fig6": (
        "Fig. 6: demand-predictor accuracy over the synthetic corpus",
        lambda context, quick: run_fig6_prediction(
            context, workloads_per_class=QUICK_FIG6_CORPUS if quick else None
        ),
    ),
    "fig7": (
        "Fig. 7: SPEC CPU2006 performance improvement",
        lambda context, quick: run_fig7_spec(
            context, subset=QUICK_SPEC_SUBSET if quick else None
        ),
    ),
    "fig8": (
        "Fig. 8: 3DMark performance improvement",
        lambda context, quick: run_fig8_graphics(context),
    ),
    "fig9": (
        "Fig. 9: battery-life workload power reduction",
        lambda context, quick: run_fig9_battery_life(context),
    ),
    "fig10": (
        "Fig. 10: SysScale benefit vs. SoC TDP",
        lambda context, quick: run_fig10_tdp_sensitivity(
            subset=QUICK_SPEC_SUBSET if quick else None,
            workload_duration=context.workload_duration,
            runtime=context.runtime,
            sim_config=context.engine.config,
        ),
    ),
    "sensitivity": (
        "Sec. 7.4: DRAM device and operating-point sensitivity",
        lambda context, quick: run_dram_frequency_sensitivity(
            context, corpus_size=20 if quick else 80
        ),
    ),
    "robustness": (
        "Scenario robustness: SysScale vs. baselines across the synthesized catalog",
        lambda context, quick: run_scenario_robustness(
            context, subset=QUICK_SCENARIO_SUBSET if quick else None
        ),
    ),
}


#: Context flags some experiment targets do not honor: fig10 sweeps its own
#: TDP grid; fig6/sensitivity corpora and the fig8/fig9 suites use fixed trace
#: durations.  Used to warn instead of silently presenting default-parameter
#: numbers as if the flag applied.
FLAGS_IGNORED_BY_TARGET: Dict[str, tuple] = {
    "fig10": ("--tdp",),
    "fig6": ("--duration",),
    "fig8": ("--duration",),
    "fig9": ("--duration",),
    "sensitivity": ("--duration",),
    "table1": ("--duration",),
    "table2": ("--duration",),
    "fig4": ("--duration",),
    "fig5": ("--duration",),
    "robustness": ("--duration",),
}


def _available_targets() -> List[str]:
    return list(EXPERIMENTS) + list(CAMPAIGNS)


def _print_scalar_summary(result: Dict[str, Any]) -> None:
    """Print the scalar entries (and row counts) of an experiment result."""
    for key, value in result.items():
        if isinstance(value, bool) or isinstance(value, (int, str)):
            print(f"  {key}: {value}")
        elif isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        elif isinstance(value, dict) and all(
            isinstance(v, (int, float)) for v in value.values()
        ):
            rendered = ", ".join(f"{k}={v:.4g}" for k, v in value.items())
            print(f"  {key}: {rendered}")
        elif isinstance(value, list):
            print(f"  {key}: {len(value)} row(s)")


def _json_default(value: Any) -> Any:
    """Encode numpy scalars (and anything float-like) for ``--json`` output."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class _ProgressPrinter:
    """Prints at most ~10 evenly spaced progress lines per batch."""

    def __init__(self) -> None:
        self._last_decile = -1

    def __call__(self, update: ProgressUpdate) -> None:
        if update.total <= 0:
            return
        decile = (10 * update.completed) // update.total
        if update.completed == update.total or decile > self._last_decile:
            self._last_decile = decile if update.completed < update.total else -1
            source = "cache" if update.from_cache else "simulated"
            print(
                f"    [{update.completed}/{update.total}] {update.label} ({source})",
                flush=True,
            )


def _build_runtime(args: argparse.Namespace) -> ExperimentRuntime:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ExperimentRuntime(
        executor=make_executor(args.jobs),
        cache=cache,
        progress=_ProgressPrinter() if args.progress else None,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.scenarios.generators import GENERATORS
    from repro.scenarios.registry import SCENARIOS

    print("experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:12s} {description}")
    print("campaigns:")
    for name, factory in CAMPAIGNS.items():
        campaign = factory(True)
        print(f"  {name:12s} {campaign.description} ({len(factory(False))} jobs full)")
    print("trace builders (TraceSpec.make(<builder>, ...)):")
    for name in sorted(TRACE_BUILDERS):
        print(f"  {name}")
    print("policies (PolicySpec.make(<builder>, ...)):")
    for name in sorted(POLICY_BUILDERS):
        print(f"  {name}")
    print("platforms (PlatformSpec knobs):")
    print(f"  dram: {', '.join(sorted(DRAM_BUILDERS))}")
    print(
        f"  tdp: default {config.SKYLAKE_DEFAULT_TDP:g} W "
        f"(evaluated range {config.SKYLAKE_TDP_RANGE[0]:g}-"
        f"{config.SKYLAKE_TDP_RANGE[1]:g} W)"
    )
    print(
        f"scenarios: {len(SCENARIOS)} in catalog across {len(GENERATORS)} "
        "generators (python -m repro scenarios list)"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [t for t in args.targets if t not in EXPERIMENTS and t not in CAMPAIGNS]
    if unknown:
        print(
            f"unknown target(s): {', '.join(unknown)}; "
            f"known: {', '.join(_available_targets())}",
            file=sys.stderr,
        )
        return 2
    for flag, value, minimum in (
        ("--jobs", args.jobs, 1),
        ("--duration", args.duration, None),
        ("--max-time", args.max_time, None),
        ("--tdp", args.tdp, None),
    ):
        if value is None:
            continue
        if (minimum is not None and value < minimum) or (minimum is None and value <= 0):
            bound = f"at least {minimum}" if minimum is not None else "positive"
            print(f"{flag} must be {bound}, got {value}", file=sys.stderr)
            return 2

    runtime = _build_runtime(args)
    sim_config = (
        SimulationConfig(max_simulated_time=args.max_time) if args.max_time else None
    )
    context = build_context(
        tdp=args.tdp,
        workload_duration=args.duration,
        sim_config=sim_config,
        runtime=runtime,
    )

    for target in args.targets:
        print(f"== {target} ==")
        started = time.perf_counter()
        if target in EXPERIMENTS:
            changed = {
                "--tdp": args.tdp != config.SKYLAKE_DEFAULT_TDP,
                "--duration": args.duration != 1.0,
            }
            ignored = [
                flag
                for flag in FLAGS_IGNORED_BY_TARGET.get(target, ())
                if changed.get(flag)
            ]
            if ignored:
                print(
                    f"note: {'/'.join(ignored)} do(es) not apply to {target!r}",
                    file=sys.stderr,
                )
            _, entry = EXPERIMENTS[target]
            result = entry(context, args.quick)
        else:
            # Campaign jobs carry their own platform and trace specs; of the
            # context flags only --max-time is folded in, so say so rather
            # than silently presenting default-platform numbers.
            if args.tdp != config.SKYLAKE_DEFAULT_TDP or args.duration != 1.0:
                print(
                    f"note: --tdp/--duration do not apply to campaign {target!r} "
                    "(its jobs define their own platforms and trace durations)",
                    file=sys.stderr,
                )
            campaign = CAMPAIGNS[target](args.quick)
            if sim_config is not None:
                campaign = campaign.with_sim(SimSpec.from_config(sim_config))
            report = runtime.run_jobs(campaign.jobs)
            result = {
                "campaign": campaign.name,
                "description": campaign.description,
                "jobs": len(campaign.jobs),
                "rows": [outcome.result.as_dict() for outcome in report.outcomes],
            }
        elapsed = time.perf_counter() - started
        if args.json:
            print(json.dumps(result, indent=2, default=_json_default))
        else:
            _print_scalar_summary(result)
        print(f"  elapsed: {elapsed:.2f}s")

    print(f"runtime: {runtime.summary()}")
    if runtime.cache is not None:
        print(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)")
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    if args.json:
        print(
            json.dumps(
                {name: SCENARIOS[name].to_dict() for name in sorted(SCENARIOS)},
                indent=2,
            )
        )
        return 0
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        print(f"  {name:26s} {spec.generator:22s} seed={spec.seed:<6d} {spec.description}")
    print(f"{len(SCENARIOS)} scenario(s); describe one with: scenarios describe NAME")
    return 0


def _cmd_scenarios_describe(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    spec = SCENARIOS.get(args.name)
    if spec is None:
        print(
            f"unknown scenario {args.name!r}; known: {', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    trace = spec.build()
    details = {
        "spec": spec.to_dict(),
        "content_hash": spec.content_hash,
        "trace": {
            "name": trace.name,
            "workload_class": trace.workload_class.value,
            "metric": trace.metric.value,
            "phases": len(trace.phases),
            "total_duration_s": trace.total_duration,
            "average_bandwidth_gbps": trace.average_bandwidth_demand / config.gbps(1),
            "peak_bandwidth_gbps": trace.peak_bandwidth_demand / config.gbps(1),
            "memory_bound_fraction": trace.average_memory_bound_fraction,
        },
    }
    if args.json:
        print(json.dumps(details, indent=2, default=_json_default))
        return 0
    print(f"scenario {spec.name!r}: {spec.description}")
    print(f"  generator: {spec.generator}  seed: {spec.seed}")
    if spec.params:
        rendered = ", ".join(f"{key}={value}" for key, value in spec.params)
        print(f"  params: {rendered}")
    print(f"  content hash: {spec.content_hash}")
    for key, value in details["trace"].items():
        formatted = f"{value:.4g}" if isinstance(value, float) else value
        print(f"  {key}: {formatted}")
    return 0


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    unknown = [p for p in (args.policies or []) if p not in POLICY_BUILDERS]
    if unknown:
        print(
            f"unknown polic(ies): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(POLICY_BUILDERS))}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.max_time is not None and args.max_time <= 0:
        print(f"--max-time must be positive, got {args.max_time}", file=sys.stderr)
        return 2

    runtime = _build_runtime(args)
    policies = (
        tuple(PolicySpec.make(name) for name in args.policies)
        if args.policies
        else None
    )
    campaign = scenario_campaign(quick=args.quick, policies=policies)
    if args.max_time is not None:
        campaign = campaign.with_sim(SimSpec(max_simulated_time=args.max_time))

    started = time.perf_counter()
    report = runtime.run_jobs(campaign.jobs)
    elapsed = time.perf_counter() - started

    # Regroup the flat outcome list scenario by scenario; the grid builder
    # emits trace-outer, policy-inner, but group by label to stay robust.
    per_scenario: Dict[str, Dict[str, Any]] = {}
    for outcome in report.outcomes:
        job = outcome.job
        assert isinstance(job, SimulationJob)
        per_scenario.setdefault(job.trace.label, {})[
            job.policy.builder
        ] = outcome.result

    rows: List[Dict[str, Any]] = []
    for scenario in sorted(per_scenario):
        for policy, result in sorted(per_scenario[scenario].items()):
            row = {
                "scenario": scenario,
                "policy": policy,
                "energy_j": result.energy.total,
                "time_s": result.execution_time,
            }
            baseline = per_scenario[scenario].get("baseline")
            if baseline is not None and policy != "baseline":
                row["energy_reduction"] = result.energy_reduction_vs(baseline)
                row["perf_impact"] = result.performance_improvement_over(baseline)
            rows.append(row)

    if args.json:
        print(json.dumps({"sweep": campaign.description, "rows": rows}, indent=2))
    else:
        print(
            f"sweep: {len(per_scenario)} scenario(s) x "
            f"{len({row['policy'] for row in rows})} polic(ies), "
            f"{len(campaign.jobs)} job(s)"
        )
        for row in rows:
            line = (
                f"  {row['scenario']:26s} {row['policy']:10s} "
                f"energy={row['energy_j']:.9g} J  time={row['time_s']:.9g} s"
            )
            if "energy_reduction" in row:
                line += (
                    f"  d_energy={row['energy_reduction'] * 100:.6g}%"
                    f"  d_perf={row['perf_impact'] * 100:.6g}%"
                )
            print(line)
        reductions = [
            row["energy_reduction"] for row in rows
            if row["policy"] == "sysscale" and "energy_reduction" in row
        ]
        if reductions:
            print(
                f"  sysscale average energy reduction: "
                f"{sum(reductions) / len(reductions) * 100:.6g}%"
            )
    print(f"  elapsed: {elapsed:.2f}s")
    print(f"runtime: {runtime.summary()}")
    if runtime.cache is not None:
        print(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    entries = len(cache)
    print(f"cache: {cache.root}")
    print(f"  entries: {entries}")
    print(f"  size: {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """The executor/cache flags shared by ``run`` and ``scenarios sweep``."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial in-process execution)",
    )
    parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-job progress lines"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SysScale reproduction runner: regenerate the paper's tables, "
            "figures, and sweep campaigns through the parallel, cached runtime."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list runnable targets").set_defaults(
        handler=_cmd_list
    )

    run_parser = subparsers.add_parser("run", help="run experiment/campaign targets")
    run_parser.add_argument(
        "targets", nargs="+", metavar="TARGET", help="figure, table, or campaign name"
    )
    _add_runtime_flags(run_parser)
    run_parser.add_argument(
        "--quick", action="store_true", help="reduced workload sets for fast runs"
    )
    run_parser.add_argument(
        "--duration", type=float, default=1.0, metavar="S",
        help="workload trace duration in seconds (default 1.0)",
    )
    run_parser.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    run_parser.add_argument(
        "--tdp", type=float, default=config.SKYLAKE_DEFAULT_TDP, metavar="W",
        help="package TDP in watts",
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print full results as JSON"
    )
    run_parser.set_defaults(handler=_cmd_run)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="the synthesized scenario catalog (repro.scenarios)"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scen_list = scenarios_sub.add_parser("list", help="list the scenario catalog")
    scen_list.add_argument(
        "--json", action="store_true", help="print the catalog specs as JSON"
    )
    scen_list.set_defaults(handler=_cmd_scenarios_list)
    scen_describe = scenarios_sub.add_parser(
        "describe", help="show one scenario's spec, hash, and trace shape"
    )
    scen_describe.add_argument("name", metavar="NAME", help="catalog scenario name")
    scen_describe.add_argument(
        "--json", action="store_true", help="print the details as JSON"
    )
    scen_describe.set_defaults(handler=_cmd_scenarios_describe)
    scen_sweep = scenarios_sub.add_parser(
        "sweep", help="sweep scenarios x policies through the runtime"
    )
    _add_runtime_flags(scen_sweep)
    scen_sweep.add_argument(
        "--policies", nargs="+", metavar="POLICY",
        help="policy builders to sweep (default: baseline sysscale md_dvfs)",
    )
    scen_sweep.add_argument(
        "--quick", action="store_true",
        help="one scenario per generator family, headline policies only",
    )
    scen_sweep.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    scen_sweep.add_argument(
        "--json", action="store_true", help="print sweep rows as JSON"
    )
    scen_sweep.set_defaults(handler=_cmd_scenarios_sweep)

    cache_parser = subparsers.add_parser("cache", help="inspect or clear the cache")
    cache_parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every cache entry"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
