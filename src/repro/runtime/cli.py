"""The ``python -m repro`` command line.

Six subcommands:

* ``list`` -- every runnable target (the registered experiments plus the named
  sweep campaigns) and every registered building block: trace builders,
  policies, hardware platforms, DRAM devices, and the scenario catalog;
* ``run TARGET [TARGET ...]`` -- run targets through the runtime, with
  ``--jobs N`` (process parallelism), ``--cache-dir``/``--no-cache`` (the
  content-addressed result store), ``--quick`` (reduced workload sets),
  ``--duration``/``--max-time`` (trace/engine scaling for smoke runs),
  ``--platform NAME``/``--set key=value`` (the hardware description to
  simulate, from the ``repro.hw`` registry plus derivation deltas),
  ``--param key=value`` (per-experiment parameters, validated against each
  target's ``ExperimentSpec.params``), and ``--json``/``--csv``/``--out``
  (structured report export);
* ``hw`` -- the hardware catalog: ``list`` it, ``describe`` one platform, or
  print content ``hash``es;
* ``scenarios`` -- the synthesized-workload catalog: ``list`` it, ``describe``
  one spec, or ``sweep`` scenarios x policies through the runtime (also
  accepts ``--platform``/``--set``);
* ``cache`` -- inspect or clear the result store;
* ``bench`` -- the performance harness: engine ticks/sec (segment-stepping vs.
  the seed reference loop, with a bit-identity gate), runtime jobs/sec (cold
  vs. warm cache, serial vs. parallel), written to ``BENCH_5.json``.

The experiment dispatch, per-target help text, and ignored-flag warnings are
all generated from the :mod:`repro.experiments.api` registry -- there is no
hand-maintained target table.  Every experiment returns a structured
:class:`~repro.experiments.report.ExperimentReport`; ``--json`` emits the exact
``ExperimentReport.from_dict`` round-trip document on stdout (decorative output
moves to stderr, so ``python -m repro run fig7 --json | jq .`` works), and
``--csv`` emits the block-per-section CSV export.

Every ``run`` invocation ends with the runtime summary line, e.g.::

    runtime: 58 job(s) submitted, 58 unique, 0 simulated, 58 cache hit(s)

so a warm-cache rerun is verifiable at a glance (``0 simulated``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro import config
from repro.experiments import build_context
from repro.experiments.api import CONTEXT_FLAGS, ExperimentSpec, registry
from repro.experiments.report import (
    ExperimentReport,
    Metric,
    Table,
    render_csv,
    render_json,
    render_text,
)
from repro.experiments.runner import ExperimentContext, ExperimentRuntime
from repro.hw import DRAM_SPECS, HARDWARE, HardwareSpec, get_hardware
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.campaign import CAMPAIGNS, scenario_campaign
from repro.runtime.executor import ProgressUpdate, make_executor
from repro.runtime.jobs import (
    POLICY_BUILDERS,
    TRACE_BUILDERS,
    PolicySpec,
    SimSpec,
    SimulationJob,
)
from repro.sim.engine import SimulationConfig


def _available_targets() -> List[str]:
    return list(registry()) + list(CAMPAIGNS)


class _CliError(Exception):
    """A user-input error: print the message to stderr and exit 2."""


def _parse_assignments(pairs: Optional[List[str]], flag: str) -> Dict[str, Any]:
    """Parse repeated ``key=value`` flag values into a keyword dictionary.

    Values are decoded as JSON where possible (``tdp=5.5`` -> float,
    ``subset='["470.lbm"]'`` -> list) and fall back to plain strings
    (``dram=ddr4``), so one syntax covers numbers, flags, and names.
    """
    assignments: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise _CliError(f"{flag} expects key=value, got {pair!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        assignments[key] = value
    return assignments


def _hardware_from_args(args: argparse.Namespace) -> Optional[HardwareSpec]:
    """The ``--platform``/``--set`` hardware description, or ``None`` if unset."""
    platform = getattr(args, "platform", None)
    overrides = _parse_assignments(getattr(args, "set", None), "--set")
    if platform is None and not overrides:
        return None
    try:
        hardware = get_hardware(platform or "skylake")
        if overrides:
            hardware = hardware.derive(**overrides)
    except (KeyError, TypeError, ValueError) as error:
        raise _CliError(f"invalid hardware description: {error}") from error
    return hardware


class _ProgressPrinter:
    """Prints at most ~10 evenly spaced progress lines per batch."""

    def __init__(self, stream=None) -> None:
        self._last_decile = -1
        self._stream = stream

    def __call__(self, update: ProgressUpdate) -> None:
        if update.total <= 0:
            return
        decile = (10 * update.completed) // update.total
        if update.completed == update.total or decile > self._last_decile:
            self._last_decile = decile if update.completed < update.total else -1
            source = "cache" if update.from_cache else "simulated"
            print(
                f"    [{update.completed}/{update.total}] {update.label} ({source})",
                flush=True,
                file=self._stream or sys.stdout,
            )


def _exporting(args: argparse.Namespace) -> bool:
    """True when stdout carries a machine-readable document."""
    return bool(
        getattr(args, "json", False)
        or getattr(args, "csv", False)
        or getattr(args, "out", None)
    )


def _build_runtime(args: argparse.Namespace) -> ExperimentRuntime:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # Progress lines target the human; keep them off a machine-readable stdout.
    stream = sys.stderr if _exporting(args) else sys.stdout
    return ExperimentRuntime(
        executor=make_executor(args.jobs),
        cache=cache,
        progress=_ProgressPrinter(stream) if args.progress else None,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.scenarios.generators import GENERATORS
    from repro.scenarios.registry import SCENARIOS

    print("experiments:")
    for name, spec in registry().items():
        print(f"  {name:12s} {spec.title}")
        if spec.description:
            print(f"  {'':12s}   {spec.description}")
    print("campaigns:")
    for name, factory in CAMPAIGNS.items():
        campaign = factory(True)
        print(f"  {name:12s} {campaign.description} ({len(factory(False))} jobs full)")
    print("trace builders (TraceSpec.make(<builder>, ...)):")
    for name in sorted(TRACE_BUILDERS):
        print(f"  {name}")
    print("policies (PolicySpec.make(<builder>, ...)):")
    for name in sorted(POLICY_BUILDERS):
        print(f"  {name}")
    print("platforms (repro.hw registry; run --platform NAME --set key=value):")
    _print_hardware_catalog()
    print(f"  dram: {', '.join(sorted(DRAM_SPECS))}")
    print(
        f"  tdp: default {config.SKYLAKE_DEFAULT_TDP:g} W "
        f"(evaluated range {config.SKYLAKE_TDP_RANGE[0]:g}-"
        f"{config.SKYLAKE_TDP_RANGE[1]:g} W)"
    )
    print(
        f"scenarios: {len(SCENARIOS)} in catalog across {len(GENERATORS)} "
        "generators (python -m repro scenarios list)"
    )
    return 0


def _run_experiment(
    spec: ExperimentSpec,
    context: ExperimentContext,
    args: argparse.Namespace,
    params: Dict[str, Any],
) -> ExperimentReport:
    """One registry target, with ignored-flag warnings derived from the spec."""
    changed = {
        "--tdp": args.tdp is not None,
        "--duration": args.duration != 1.0,
    }
    ignored = [flag for flag in spec.ignored_flags if changed.get(flag)]
    if ignored:
        print(
            f"note: {'/'.join(ignored)} do(es) not apply to {spec.name!r}",
            file=sys.stderr,
        )
    accepted = {key: value for key, value in params.items() if key in spec.params}
    dropped = sorted(set(params) - set(accepted))
    if dropped:
        known = ", ".join(spec.params) if spec.params else "none"
        print(
            f"note: --param {'/'.join(dropped)} do(es) not apply to "
            f"{spec.name!r} (accepted: {known})",
            file=sys.stderr,
        )
    if not accepted:
        return spec.run(context, quick=args.quick)
    try:
        return spec.run(context, quick=args.quick, **accepted)
    except (KeyError, TypeError, ValueError) as error:
        # Only --param invocations reach here: a bad value (unknown hardware
        # name, too few variants, wrong shape) is user input, not a crash.
        raise _CliError(
            f"invalid --param value for {spec.name!r}: {error}"
        ) from error


def _run_campaign(
    target: str,
    runtime: ExperimentRuntime,
    args: argparse.Namespace,
    sim_config: Optional[SimulationConfig],
    hardware: Optional[HardwareSpec],
) -> ExperimentReport:
    """One named campaign, wrapped into the same report type as experiments."""
    # Campaign jobs carry their own platform and trace specs; of the context
    # flags only --max-time and --platform/--set are folded in, so say so
    # rather than silently presenting default-platform numbers.
    if args.tdp is not None or args.duration != 1.0:
        print(
            f"note: --tdp/--duration do not apply to campaign {target!r} "
            "(its jobs define their own platforms and trace durations; "
            "use --platform/--set for the hardware)",
            file=sys.stderr,
        )
    campaign = CAMPAIGNS[target](args.quick, hardware=hardware)
    if sim_config is not None:
        campaign = campaign.with_sim(SimSpec.from_config(sim_config))
    before = runtime.accounting()
    report = runtime.run_jobs(campaign.jobs)
    rows = []
    for outcome in report.outcomes:
        assert isinstance(outcome.job, SimulationJob)
        rows.append(outcome.result.as_dict())
    return ExperimentReport(
        experiment=target,
        title=campaign.description,
        params={"quick": args.quick, "max_time": args.max_time},
        blocks=(
            Metric("jobs", len(campaign.jobs)),
            Table.from_records(
                "rows",
                rows,
                units={
                    "time_s": "s",
                    "average_power_w": "W",
                    "energy_j": "J",
                    "edp_js": "J*s",
                    "low_point_residency": "fraction",
                    "average_cpu_frequency_ghz": "GHz",
                    "average_gfx_frequency_mhz": "MHz",
                    "average_dram_frequency_ghz": "GHz",
                },
            ),
        ),
        run=runtime.accounting().since(before),
    )


def _render_export(report: ExperimentReport, args: argparse.Namespace) -> str:
    return render_csv(report) if args.csv else render_json(report) + "\n"


def _write_report_file(
    name: str,
    report: ExperimentReport,
    args: argparse.Namespace,
    counts: Dict[str, int],
) -> None:
    """Write one report under ``--out`` as soon as its target completes, so a
    failure in a later target never discards finished work.

    ``counts`` tracks repeated targets: the second ``fig7`` in one invocation
    lands in ``fig7.2.json`` instead of clobbering the first.
    """
    extension = "csv" if args.csv else "json"
    out = args.out
    if len(args.targets) > 1 or os.path.isdir(out):
        os.makedirs(out, exist_ok=True)
        counts[name] = counts.get(name, 0) + 1
        suffix = f".{counts[name]}" if counts[name] > 1 else ""
        path = os.path.join(out, f"{name}{suffix}.{extension}")
    else:
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        path = out
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_render_export(report, args))
    print(f"wrote {path}", file=sys.stderr)


def _write_stdout_exports(
    reports: List[tuple], args: argparse.Namespace
) -> None:
    """Emit ``--json``/``--csv`` documents on stdout.

    ``reports`` is a list of ``(target, report)`` pairs in run order, so a
    target requested twice exports twice.  Several JSON targets batch into one
    array so stdout stays a single valid document.
    """
    if args.csv:
        sys.stdout.write("\n".join(render_csv(r) for _, r in reports))
    elif len(reports) == 1:
        sys.stdout.write(_render_export(reports[0][1], args))
    else:
        documents = [report.to_dict() for _, report in reports]
        sys.stdout.write(json.dumps(documents, indent=2) + "\n")


def _cmd_run(args: argparse.Namespace) -> int:
    specs = registry()
    unknown = [t for t in args.targets if t not in specs and t not in CAMPAIGNS]
    if unknown:
        print(
            f"unknown target(s): {', '.join(unknown)}; "
            f"known: {', '.join(_available_targets())}",
            file=sys.stderr,
        )
        return 2
    if args.json and args.csv:
        print("--json and --csv are mutually exclusive", file=sys.stderr)
        return 2
    hardware = _hardware_from_args(args)
    params = _parse_assignments(args.param, "--param")
    # A parameter no requested target accepts is a typo, not a no-op.
    accepted_anywhere = {
        name
        for target in args.targets
        if target in specs
        for name in specs[target].params
    }
    bogus = sorted(set(params) - accepted_anywhere)
    if bogus:
        known = ", ".join(sorted(accepted_anywhere)) or "none for these targets"
        print(
            f"unknown experiment parameter(s): {', '.join(bogus)}; "
            f"accepted: {known}",
            file=sys.stderr,
        )
        return 2
    for flag, value, minimum in (
        ("--jobs", args.jobs, 1),
        ("--duration", args.duration, None),
        ("--max-time", args.max_time, None),
        ("--tdp", args.tdp, None),
    ):
        if value is None:
            continue
        if (minimum is not None and value < minimum) or (minimum is None and value <= 0):
            bound = f"at least {minimum}" if minimum is not None else "positive"
            print(f"{flag} must be {bound}, got {value}", file=sys.stderr)
            return 2

    if (
        args.out is not None
        and len(args.targets) > 1
        and os.path.exists(args.out)
        and not os.path.isdir(args.out)
    ):
        print(
            f"--out {args.out!r} must be a directory when running several "
            "targets (one file per target is written into it)",
            file=sys.stderr,
        )
        return 2

    # With a machine-readable stdout, route decorative lines to stderr.
    exporting = _exporting(args)
    info = sys.stderr if exporting else sys.stdout

    runtime = _build_runtime(args)
    sim_config = (
        SimulationConfig(max_simulated_time=args.max_time) if args.max_time else None
    )
    context = build_context(
        tdp=args.tdp,
        workload_duration=args.duration,
        sim_config=sim_config,
        runtime=runtime,
        hardware=hardware,
    )

    reports: List[tuple] = []
    written: Dict[str, int] = {}
    try:
        for target in args.targets:
            print(f"== {target} ==", file=info)
            started = time.perf_counter()
            if target in specs:
                report = _run_experiment(specs[target], context, args, params)
            else:
                report = _run_campaign(target, runtime, args, sim_config, hardware)
            elapsed = time.perf_counter() - started
            reports.append((target, report))
            if args.out is not None:
                _write_report_file(target, report, args, written)
            elif not exporting:
                print(render_text(report))
            print(f"  elapsed: {elapsed:.2f}s", file=info)
    finally:
        # One pool serves every target; release its workers deterministically.
        runtime.close()

    if exporting and args.out is None:
        _write_stdout_exports(reports, args)

    print(f"runtime: {runtime.summary()}", file=info)
    if runtime.cache is not None:
        print(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)", file=info)
    return 0


def _print_hardware_catalog() -> None:
    """One line per registered platform (shared by ``list`` and ``hw list``)."""
    for name in sorted(HARDWARE):
        spec = HARDWARE[name]
        print(f"  {name:18s} {spec.label:24s} {spec.description}")


def _cmd_hw_list(args: argparse.Namespace) -> int:
    if args.json:
        print(
            json.dumps(
                {name: HARDWARE[name].to_dict() for name in sorted(HARDWARE)},
                indent=2,
            )
        )
        return 0
    _print_hardware_catalog()
    print(
        f"{len(HARDWARE)} platform(s); describe one with: hw describe NAME, "
        "derive variants with: run --platform NAME --set key=value"
    )
    return 0


def _cmd_hw_describe(args: argparse.Namespace) -> int:
    try:
        spec = get_hardware(args.name)
    except KeyError as error:
        print(str(error.args[0]), file=sys.stderr)
        return 2
    if args.set:
        try:
            spec = spec.derive(**_parse_assignments(args.set, "--set"))
        except (KeyError, TypeError, ValueError) as error:
            print(f"invalid hardware description: {error}", file=sys.stderr)
            return 2
    platform = spec.build()
    details = {
        "spec": spec.to_dict(),
        "description": spec.description,
        "content_hash": spec.content_hash,
        "platform": platform.describe(),
    }
    if args.json:
        print(json.dumps(details, indent=2))
        return 0
    print(f"hardware {spec.name!r}: {spec.description}")
    print(f"  label: {spec.label}")
    print(f"  content hash: {spec.content_hash}")
    for key, value in spec.describe().items():
        if key == "content_hash":
            continue
        formatted = f"{value:.4g}" if isinstance(value, float) else value
        print(f"  {key}: {formatted}")
    print(
        "  worst_case_io_memory_power_w: "
        f"{platform.describe()['worst_case_io_memory_power_w']:.4g}"
    )
    return 0


def _cmd_hw_hash(args: argparse.Namespace) -> int:
    names = args.names or sorted(HARDWARE)
    unknown = [name for name in names if name not in HARDWARE]
    if unknown:
        print(
            f"unknown hardware: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(HARDWARE))}",
            file=sys.stderr,
        )
        return 2
    for name in names:
        print(f"{HARDWARE[name].content_hash}  {name}")
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    if args.json:
        print(
            json.dumps(
                {name: SCENARIOS[name].to_dict() for name in sorted(SCENARIOS)},
                indent=2,
            )
        )
        return 0
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        print(f"  {name:26s} {spec.generator:22s} seed={spec.seed:<6d} {spec.description}")
    print(f"{len(SCENARIOS)} scenario(s); describe one with: scenarios describe NAME")
    return 0


def _cmd_scenarios_describe(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    spec = SCENARIOS.get(args.name)
    if spec is None:
        print(
            f"unknown scenario {args.name!r}; known: {', '.join(sorted(SCENARIOS))}",
            file=sys.stderr,
        )
        return 2
    trace = spec.build()
    details = {
        "spec": spec.to_dict(),
        "content_hash": spec.content_hash,
        "trace": {
            "name": trace.name,
            "workload_class": trace.workload_class.value,
            "metric": trace.metric.value,
            "phases": len(trace.phases),
            "total_duration_s": trace.total_duration,
            "average_bandwidth_gbps": trace.average_bandwidth_demand / config.gbps(1),
            "peak_bandwidth_gbps": trace.peak_bandwidth_demand / config.gbps(1),
            "memory_bound_fraction": trace.average_memory_bound_fraction,
        },
    }
    if args.json:
        print(json.dumps(details, indent=2))
        return 0
    print(f"scenario {spec.name!r}: {spec.description}")
    print(f"  generator: {spec.generator}  seed: {spec.seed}")
    if spec.params:
        rendered = ", ".join(f"{key}={value}" for key, value in spec.params)
        print(f"  params: {rendered}")
    print(f"  content hash: {spec.content_hash}")
    for key, value in details["trace"].items():
        formatted = f"{value:.4g}" if isinstance(value, float) else value
        print(f"  {key}: {formatted}")
    return 0


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    unknown = [p for p in (args.policies or []) if p not in POLICY_BUILDERS]
    if unknown:
        print(
            f"unknown polic(ies): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(POLICY_BUILDERS))}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be at least 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.max_time is not None and args.max_time <= 0:
        print(f"--max-time must be positive, got {args.max_time}", file=sys.stderr)
        return 2

    runtime = _build_runtime(args)
    policies = (
        tuple(PolicySpec.make(name) for name in args.policies)
        if args.policies
        else None
    )
    campaign = scenario_campaign(
        quick=args.quick, policies=policies, hardware=_hardware_from_args(args)
    )
    if args.max_time is not None:
        campaign = campaign.with_sim(SimSpec(max_simulated_time=args.max_time))

    started = time.perf_counter()
    try:
        report = runtime.run_jobs(campaign.jobs)
    finally:
        runtime.close()
    elapsed = time.perf_counter() - started

    # Regroup the flat outcome list scenario by scenario; the grid builder
    # emits trace-outer, policy-inner, but group by label to stay robust.
    per_scenario: Dict[str, Dict[str, Any]] = {}
    for outcome in report.outcomes:
        job = outcome.job
        assert isinstance(job, SimulationJob)
        per_scenario.setdefault(job.trace.label, {})[
            job.policy.builder
        ] = outcome.result

    rows: List[Dict[str, Any]] = []
    for scenario in sorted(per_scenario):
        for policy, result in sorted(per_scenario[scenario].items()):
            row = {
                "scenario": scenario,
                "policy": policy,
                "energy_j": result.energy.total,
                "time_s": result.execution_time,
            }
            baseline = per_scenario[scenario].get("baseline")
            if baseline is not None and policy != "baseline":
                row["energy_reduction"] = result.energy_reduction_vs(baseline)
                row["perf_impact"] = result.performance_improvement_over(baseline)
            rows.append(row)

    # Like `run --json`: keep stdout a single parseable document.
    info = sys.stderr if args.json else sys.stdout
    if args.json:
        print(json.dumps({"sweep": campaign.description, "rows": rows}, indent=2))
    else:
        print(
            f"sweep: {len(per_scenario)} scenario(s) x "
            f"{len({row['policy'] for row in rows})} polic(ies), "
            f"{len(campaign.jobs)} job(s)"
        )
        for row in rows:
            line = (
                f"  {row['scenario']:26s} {row['policy']:10s} "
                f"energy={row['energy_j']:.9g} J  time={row['time_s']:.9g} s"
            )
            if "energy_reduction" in row:
                line += (
                    f"  d_energy={row['energy_reduction'] * 100:.6g}%"
                    f"  d_perf={row['perf_impact'] * 100:.6g}%"
                )
            print(line)
        reductions = [
            row["energy_reduction"] for row in rows
            if row["policy"] == "sysscale" and "energy_reduction" in row
        ]
        if reductions:
            print(
                f"  sysscale average energy reduction: "
                f"{sum(reductions) / len(reductions) * 100:.6g}%"
            )
    print(f"  elapsed: {elapsed:.2f}s", file=info)
    print(f"runtime: {runtime.summary()}", file=info)
    if runtime.cache is not None:
        print(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)", file=info)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Deferred import: the harness pulls in the scenario catalog and platform
    # builders, which nothing else on the CLI's import path needs.
    from repro.runtime.bench import main as bench_main

    return bench_main(args)


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    entries = len(cache)
    print(f"cache: {cache.root}")
    print(f"  entries: {entries}")
    print(f"  size: {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def _add_hardware_flags(parser: argparse.ArgumentParser) -> None:
    """The hardware-description flags shared by ``run`` and ``scenarios sweep``."""
    parser.add_argument(
        "--platform", default=None, metavar="NAME",
        help=(
            "hardware description to simulate (see `hw list`; "
            "default: skylake)"
        ),
    )
    parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help=(
            "hardware derivation override (repeatable): a HardwareSpec field "
            "(tdp=5.5, dram=ddr4) or <field>_scale multiplier "
            "(uncore_leakage_coeff_scale=1.08)"
        ),
    )


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """The executor/cache flags shared by ``run`` and ``scenarios sweep``."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial in-process execution)",
    )
    parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-job progress lines"
    )


def _run_epilog() -> str:
    """Per-target help text, generated from the experiment registry."""
    lines = ["targets (from the experiment registry):"]
    for name, spec in registry().items():
        lines.append(f"  {name:12s} {spec.help_text}")
    lines.append("campaigns:")
    for name, factory in CAMPAIGNS.items():
        lines.append(f"  {name:12s} {factory(True).description}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SysScale reproduction runner: regenerate the paper's tables, "
            "figures, and sweep campaigns through the parallel, cached runtime."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list runnable targets").set_defaults(
        handler=_cmd_list
    )

    run_parser = subparsers.add_parser(
        "run",
        help="run experiment/campaign targets",
        epilog=_run_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_parser.add_argument(
        "targets", nargs="+", metavar="TARGET", help="figure, table, or campaign name"
    )
    _add_runtime_flags(run_parser)
    run_parser.add_argument(
        "--quick", action="store_true", help="reduced workload sets for fast runs"
    )
    run_parser.add_argument(
        "--duration", type=float, default=1.0, metavar="S",
        help="workload trace duration in seconds (default 1.0)",
    )
    run_parser.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    run_parser.add_argument(
        "--tdp", type=float, default=None, metavar="W",
        help=(
            "package TDP in watts (a derivation over the selected platform; "
            f"default {config.SKYLAKE_DEFAULT_TDP:g})"
        ),
    )
    _add_hardware_flags(run_parser)
    run_parser.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help=(
            "experiment parameter override (repeatable), validated against "
            "each target's registered params (see run --help epilog)"
        ),
    )
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit the ExperimentReport document(s) as JSON on stdout",
    )
    run_parser.add_argument(
        "--csv", action="store_true",
        help="emit the CSV export (one section per report block) on stdout",
    )
    run_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "write the export to PATH instead of stdout (a directory when "
            "running several targets); implies --json unless --csv is given"
        ),
    )
    run_parser.set_defaults(handler=_cmd_run)

    hw_parser = subparsers.add_parser(
        "hw", help="the hardware description catalog (repro.hw)"
    )
    hw_sub = hw_parser.add_subparsers(dest="hw_command", required=True)
    hw_list = hw_sub.add_parser("list", help="list the registered platforms")
    hw_list.add_argument(
        "--json", action="store_true", help="print the full specs as JSON"
    )
    hw_list.set_defaults(handler=_cmd_hw_list)
    hw_describe = hw_sub.add_parser(
        "describe", help="show one platform's spec, hash, and derived figures"
    )
    hw_describe.add_argument("name", metavar="NAME", help="registered platform name")
    hw_describe.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="apply derivation overrides before describing",
    )
    hw_describe.add_argument(
        "--json", action="store_true", help="print the details as JSON"
    )
    hw_describe.set_defaults(handler=_cmd_hw_describe)
    hw_hash = hw_sub.add_parser(
        "hash", help="print content hashes of registered platforms"
    )
    hw_hash.add_argument(
        "names", nargs="*", metavar="NAME", help="platform names (default: all)"
    )
    hw_hash.set_defaults(handler=_cmd_hw_hash)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="the synthesized scenario catalog (repro.scenarios)"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scen_list = scenarios_sub.add_parser("list", help="list the scenario catalog")
    scen_list.add_argument(
        "--json", action="store_true", help="print the catalog specs as JSON"
    )
    scen_list.set_defaults(handler=_cmd_scenarios_list)
    scen_describe = scenarios_sub.add_parser(
        "describe", help="show one scenario's spec, hash, and trace shape"
    )
    scen_describe.add_argument("name", metavar="NAME", help="catalog scenario name")
    scen_describe.add_argument(
        "--json", action="store_true", help="print the details as JSON"
    )
    scen_describe.set_defaults(handler=_cmd_scenarios_describe)
    scen_sweep = scenarios_sub.add_parser(
        "sweep", help="sweep scenarios x policies through the runtime"
    )
    _add_runtime_flags(scen_sweep)
    _add_hardware_flags(scen_sweep)
    scen_sweep.add_argument(
        "--policies", nargs="+", metavar="POLICY",
        help="policy builders to sweep (default: baseline sysscale md_dvfs)",
    )
    scen_sweep.add_argument(
        "--quick", action="store_true",
        help="one scenario per generator family, headline policies only",
    )
    scen_sweep.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    scen_sweep.add_argument(
        "--json", action="store_true", help="print sweep rows as JSON"
    )
    scen_sweep.set_defaults(handler=_cmd_scenarios_sweep)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the performance harness and write BENCH_5.json",
        description=(
            "Measure engine ticks/sec (segment-stepping vs. the seed "
            "reference loop) and runtime jobs/sec (cold vs. warm cache, "
            "serial vs. parallel), gate on bit-identity, and write one "
            "machine-readable JSON document."
        ),
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="reduced tick counts and job batch (the CI smoke configuration)",
    )
    bench_parser.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="worker processes for the parallel benchmark (default 2)",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "write the bench document to PATH "
            "(default BENCH_5.json in the working directory; "
            "'-' skips the file)"
        ),
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="print the bench document as JSON on stdout",
    )
    bench_parser.set_defaults(handler=_cmd_bench)

    cache_parser = subparsers.add_parser("cache", help="inspect or clear the cache")
    cache_parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every cache entry"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except _CliError as error:
        print(str(error), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
