"""The ``python -m repro`` command line.

Subcommands:

* ``list`` -- every runnable target (the registered experiments plus the named
  sweep campaigns) and every registered building block: trace builders,
  policies, hardware platforms, DRAM devices, and the scenario catalog;
* ``run TARGET [TARGET ...]`` -- run targets through the runtime, with
  ``--jobs N`` (process parallelism), ``--cache-dir``/``--no-cache`` (the
  content-addressed result store), ``--quick`` (reduced workload sets),
  ``--duration``/``--max-time`` (trace/engine scaling for smoke runs),
  ``--platform NAME``/``--set key=value`` (the hardware description to
  simulate, from the ``repro.hw`` registry plus derivation deltas),
  ``--param key=value`` (per-experiment parameters, validated against each
  target's ``ExperimentSpec.params``), and ``--json``/``--csv``/``--out``
  (structured report export);
* ``hw`` -- the hardware catalog: ``list`` it, ``describe`` one platform, or
  print content ``hash``es;
* ``scenarios`` -- the synthesized-workload catalog: ``list`` it, ``describe``
  one spec, or ``sweep`` scenarios x policies through the runtime (also
  accepts ``--platform``/``--set``);
* ``cache`` -- inspect or clear the result store;
* ``bench`` -- the performance harness: engine ticks/sec (segment-stepping vs.
  the seed reference loop, with a bit-identity gate), runtime jobs/sec (cold
  vs. warm cache, serial vs. parallel), telemetry overhead, written to
  ``BENCH_8.json``; ``bench compare BASELINE [CURRENT]`` gates a bench
  document against history with per-metric regression budgets derived from
  the recorded timing noise (:mod:`repro.obs.analysis.benchdiff`);
* ``serve`` / ``submit`` / ``fleet`` -- the sweep service
  (:mod:`repro.fleet`): ``submit CAMPAIGN`` enqueues a campaign's jobs into a
  durable fleet directory, ``serve`` runs the batched, autoscaling worker
  loop over it, and ``fleet status|verify|migrate`` inspect the directory,
  check fleet results bit-identical against a serial re-run, and absorb flat
  cache directories into the sharded store;
* ``trace`` -- inspect recorded telemetry: ``describe`` summarizes a JSONL
  trace file (event counts, span timings, engine segment statistics,
  operating-point and phase residencies), ``diff A B`` attributes simulated
  time per (workload, policy, phase, operating point) bucket and reports what
  moved between two traces, and ``export PATH --chrome OUT`` converts a trace
  to Chrome/Perfetto ``trace_event`` JSON for a real trace viewer.

``run``, ``scenarios sweep``, and ``bench`` share the telemetry flags:
``--log-level`` filters decorative output, ``--trace-out PATH`` records every
``repro.obs`` event (spans, logs, engine segments) to a JSON-lines file,
``--profile`` prints the metrics-registry summary when the command finishes,
and ``--sample-interval S`` polls the live metrics registry on a background
cadence, emitting ``timeseries.sample`` events (queue depth, in-flight jobs,
cache-hit ratio over time) into the trace stream.  Telemetry never changes
results: job hashes, cache entries, and simulation outputs are bit-identical
with or without it.

All user-facing text goes through :class:`repro.obs.logging.Console`, which
enforces the output discipline: the experiment dispatch, per-target help text,
and ignored-flag warnings are all generated from the
:mod:`repro.experiments.api` registry -- there is no hand-maintained target
table.  Every experiment returns a structured
:class:`~repro.experiments.report.ExperimentReport`; ``--json`` emits the exact
``ExperimentReport.from_dict`` round-trip document on stdout (decorative output
moves to stderr, so ``python -m repro run fig7 --json | jq .`` works), and
``--csv`` emits the block-per-section CSV export.

Every ``run`` invocation ends with the runtime summary line, e.g.::

    runtime: 58 job(s) submitted, 58 unique, 0 simulated, 58 cache hit(s)

so a warm-cache rerun is verifiable at a glance (``0 simulated``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro import config, obs
from repro.experiments import build_context
from repro.experiments.api import CONTEXT_FLAGS, ExperimentSpec, registry
from repro.experiments.report import (
    ExperimentReport,
    Metric,
    Table,
    render_csv,
    render_json,
    render_text,
)
from repro.experiments.runner import ExperimentContext, ExperimentRuntime
from repro.hw import DRAM_SPECS, HARDWARE, HardwareSpec, get_hardware
from repro.obs import Console, JsonlSink, read_jsonl, render_metrics_text, summarize_trace_events
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.campaign import CAMPAIGNS, scenario_campaign
from repro.runtime.executor import ProgressUpdate, make_executor
from repro.runtime.jobs import (
    POLICY_BUILDERS,
    TRACE_BUILDERS,
    PolicySpec,
    SimSpec,
    SimulationJob,
)
from repro.sim.engine import SimulationConfig


def _available_targets() -> List[str]:
    return list(registry()) + list(CAMPAIGNS)


class _CliError(Exception):
    """A user-input error: print the message to stderr and exit 2."""


def _parse_assignments(pairs: Optional[List[str]], flag: str) -> Dict[str, Any]:
    """Parse repeated ``key=value`` flag values into a keyword dictionary.

    Values are decoded as JSON where possible (``tdp=5.5`` -> float,
    ``subset='["470.lbm"]'`` -> list) and fall back to plain strings
    (``dram=ddr4``), so one syntax covers numbers, flags, and names.
    """
    assignments: Dict[str, Any] = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise _CliError(f"{flag} expects key=value, got {pair!r}")
        try:
            value: Any = json.loads(raw)
        except json.JSONDecodeError:
            value = raw
        assignments[key] = value
    return assignments


def _hardware_from_args(args: argparse.Namespace) -> Optional[HardwareSpec]:
    """The ``--platform``/``--set`` hardware description, or ``None`` if unset."""
    platform = getattr(args, "platform", None)
    overrides = _parse_assignments(getattr(args, "set", None), "--set")
    if platform is None and not overrides:
        return None
    try:
        hardware = get_hardware(platform or "skylake")
        if overrides:
            hardware = hardware.derive(**overrides)
    except (KeyError, TypeError, ValueError) as error:
        raise _CliError(f"invalid hardware description: {error}") from error
    return hardware


class _ProgressPrinter:
    """Prints at most ~10 evenly spaced progress lines per batch."""

    def __init__(self, console: Console) -> None:
        self._last_decile = -1
        self._console = console

    def __call__(self, update: ProgressUpdate) -> None:
        if update.total <= 0:
            return
        decile = (10 * update.completed) // update.total
        if update.completed == update.total or decile > self._last_decile:
            self._last_decile = decile if update.completed < update.total else -1
            source = "cache" if update.from_cache else "simulated"
            self._console.info(
                f"    [{update.completed}/{update.total}] {update.label} ({source})"
            )


def _exporting(args: argparse.Namespace) -> bool:
    """True when stdout carries a machine-readable document."""
    return bool(
        getattr(args, "json", False)
        or getattr(args, "csv", False)
        or getattr(args, "out", None)
    )


def _console_for(args: argparse.Namespace) -> Console:
    """A console whose decorations avoid a machine-readable stdout."""
    return Console(info_stream=sys.stderr if _exporting(args) else None)


class _ObsSession:
    """What ``_obs_setup`` opened and ``_obs_teardown`` must close."""

    def __init__(self) -> None:
        self.sink: Optional[JsonlSink] = None
        self.sampler: Optional[obs.MetricsSampler] = None


def _obs_setup(args: argparse.Namespace, ui: Console) -> _ObsSession:
    """Apply the telemetry flags to the ambient scope.

    ``--log-level``/``--trace-out``/``--profile`` behave as before;
    ``--sample-interval S`` additionally starts a :class:`MetricsSampler`
    polling the live registry into the event stream.  Returns the opened
    session so the caller can close it in ``_obs_teardown``.  Telemetry
    stays disabled unless tracing, profiling, or sampling was requested,
    keeping the default invocation on the no-op fast path.
    """
    obs.reset()
    session = _ObsSession()
    level = getattr(args, "log_level", None)
    if level:
        obs.set_level(level)
    trace_out = getattr(args, "trace_out", None)
    interval = getattr(args, "sample_interval", None)
    if interval is not None and interval <= 0:
        raise _CliError(f"--sample-interval must be positive, got {interval}")
    if trace_out or getattr(args, "profile", False) or interval is not None:
        obs.enable(trace_segments=bool(trace_out))
    if trace_out:
        session.sink = obs.add_sink(JsonlSink(trace_out))
    if interval is not None:
        if session.sink is None:
            ui.warning(
                "note: --sample-interval without --trace-out keeps the "
                "samples in memory only (pass --trace-out PATH to record "
                "the time series)"
            )
        session.sampler = obs.MetricsSampler(interval)
        session.sampler.start()
    return session


def _obs_teardown(
    args: argparse.Namespace, session: _ObsSession, ui: Console
) -> None:
    """Stop the sampler, render ``--profile``, close the sink, reset state."""
    # The sampler stops (emitting its final sample) before the sink closes,
    # so every sample lands in the recorded file.
    if session.sampler is not None:
        samples = session.sampler.stop()
        ui.info(
            f"timeseries: {samples} sample(s) at "
            f"{session.sampler.interval:g}s cadence"
        )
    if getattr(args, "profile", False):
        ui.info(render_metrics_text(obs.snapshot(), title="profile"))
    if session.sink is not None:
        obs.remove_sink(session.sink)
        session.sink.close()
        ui.info(f"trace: wrote {session.sink.path}")
    obs.reset()


def _build_runtime(args: argparse.Namespace, ui: Console) -> ExperimentRuntime:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    # Progress lines target the human; the console keeps them off a
    # machine-readable stdout.
    return ExperimentRuntime(
        executor=make_executor(args.jobs),
        cache=cache,
        progress=_ProgressPrinter(ui) if args.progress else None,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.scenarios.generators import GENERATORS
    from repro.scenarios.registry import SCENARIOS

    ui = Console()
    ui.out("experiments:")
    for name, spec in registry().items():
        ui.out(f"  {name:12s} {spec.title}")
        if spec.description:
            ui.out(f"  {'':12s}   {spec.description}")
    ui.out("campaigns:")
    for name, factory in CAMPAIGNS.items():
        campaign = factory(True)
        ui.out(f"  {name:12s} {campaign.description} ({len(factory(False))} jobs full)")
    ui.out("trace builders (TraceSpec.make(<builder>, ...)):")
    for name in sorted(TRACE_BUILDERS):
        ui.out(f"  {name}")
    ui.out("policies (PolicySpec.make(<builder>, ...)):")
    for name in sorted(POLICY_BUILDERS):
        ui.out(f"  {name}")
    ui.out("platforms (repro.hw registry; run --platform NAME --set key=value):")
    _print_hardware_catalog(ui)
    ui.out(f"  dram: {', '.join(sorted(DRAM_SPECS))}")
    ui.out(
        f"  tdp: default {config.SKYLAKE_DEFAULT_TDP:g} W "
        f"(evaluated range {config.SKYLAKE_TDP_RANGE[0]:g}-"
        f"{config.SKYLAKE_TDP_RANGE[1]:g} W)"
    )
    ui.out(
        f"scenarios: {len(SCENARIOS)} in catalog across {len(GENERATORS)} "
        "generators (python -m repro scenarios list)"
    )
    return 0


def _run_experiment(
    spec: ExperimentSpec,
    context: ExperimentContext,
    args: argparse.Namespace,
    params: Dict[str, Any],
    ui: Console,
) -> ExperimentReport:
    """One registry target, with ignored-flag warnings derived from the spec."""
    changed = {
        "--tdp": args.tdp is not None,
        "--duration": args.duration != 1.0,
    }
    ignored = [flag for flag in spec.ignored_flags if changed.get(flag)]
    if ignored:
        ui.warning(f"note: {'/'.join(ignored)} do(es) not apply to {spec.name!r}")
    accepted = {key: value for key, value in params.items() if key in spec.params}
    dropped = sorted(set(params) - set(accepted))
    if dropped:
        known = ", ".join(spec.params) if spec.params else "none"
        ui.warning(
            f"note: --param {'/'.join(dropped)} do(es) not apply to "
            f"{spec.name!r} (accepted: {known})"
        )
    if not accepted:
        return spec.run(context, quick=args.quick)
    try:
        return spec.run(context, quick=args.quick, **accepted)
    except (KeyError, TypeError, ValueError) as error:
        # Only --param invocations reach here: a bad value (unknown hardware
        # name, too few variants, wrong shape) is user input, not a crash.
        raise _CliError(
            f"invalid --param value for {spec.name!r}: {error}"
        ) from error


def _run_campaign(
    target: str,
    runtime: ExperimentRuntime,
    args: argparse.Namespace,
    sim_config: Optional[SimulationConfig],
    hardware: Optional[HardwareSpec],
    ui: Console,
) -> ExperimentReport:
    """One named campaign, wrapped into the same report type as experiments."""
    # Campaign jobs carry their own platform and trace specs; of the context
    # flags only --max-time and --platform/--set are folded in, so say so
    # rather than silently presenting default-platform numbers.
    if args.tdp is not None or args.duration != 1.0:
        ui.warning(
            f"note: --tdp/--duration do not apply to campaign {target!r} "
            "(its jobs define their own platforms and trace durations; "
            "use --platform/--set for the hardware)"
        )
    campaign = CAMPAIGNS[target](args.quick, hardware=hardware)
    if sim_config is not None:
        campaign = campaign.with_sim(SimSpec.from_config(sim_config))
    before = runtime.accounting()
    with obs.span("campaign.run", campaign=target, jobs=len(campaign.jobs)):
        report = runtime.run_jobs(campaign.jobs)
    rows = []
    for outcome in report.outcomes:
        assert isinstance(outcome.job, SimulationJob)
        rows.append(outcome.result.as_dict())
    return ExperimentReport(
        experiment=target,
        title=campaign.description,
        params={"quick": args.quick, "max_time": args.max_time},
        blocks=(
            Metric("jobs", len(campaign.jobs)),
            Table.from_records(
                "rows",
                rows,
                units={
                    "time_s": "s",
                    "average_power_w": "W",
                    "energy_j": "J",
                    "edp_js": "J*s",
                    "low_point_residency": "fraction",
                    "average_cpu_frequency_ghz": "GHz",
                    "average_gfx_frequency_mhz": "MHz",
                    "average_dram_frequency_ghz": "GHz",
                },
            ),
        ),
        run=runtime.accounting().since(before),
    )


def _render_export(report: ExperimentReport, args: argparse.Namespace) -> str:
    return render_csv(report) if args.csv else render_json(report) + "\n"


def _write_report_file(
    name: str,
    report: ExperimentReport,
    args: argparse.Namespace,
    counts: Dict[str, int],
    ui: Console,
) -> None:
    """Write one report under ``--out`` as soon as its target completes, so a
    failure in a later target never discards finished work.

    ``counts`` tracks repeated targets: the second ``fig7`` in one invocation
    lands in ``fig7.2.json`` instead of clobbering the first.
    """
    extension = "csv" if args.csv else "json"
    out = args.out
    if len(args.targets) > 1 or os.path.isdir(out):
        os.makedirs(out, exist_ok=True)
        counts[name] = counts.get(name, 0) + 1
        suffix = f".{counts[name]}" if counts[name] > 1 else ""
        path = os.path.join(out, f"{name}{suffix}.{extension}")
    else:
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        path = out
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_render_export(report, args))
    ui.info(f"wrote {path}")


def _write_stdout_exports(
    reports: List[tuple], args: argparse.Namespace, ui: Console
) -> None:
    """Emit ``--json``/``--csv`` documents on stdout.

    ``reports`` is a list of ``(target, report)`` pairs in run order, so a
    target requested twice exports twice.  Several JSON targets batch into one
    array so stdout stays a single valid document.
    """
    if args.csv:
        ui.write("\n".join(render_csv(r) for _, r in reports))
    elif len(reports) == 1:
        ui.write(_render_export(reports[0][1], args))
    else:
        documents = [report.to_dict() for _, report in reports]
        ui.write(json.dumps(documents, indent=2) + "\n")


def _cmd_run(args: argparse.Namespace) -> int:
    ui = _console_for(args)
    specs = registry()
    unknown = [t for t in args.targets if t not in specs and t not in CAMPAIGNS]
    if unknown:
        ui.error(
            f"unknown target(s): {', '.join(unknown)}; "
            f"known: {', '.join(_available_targets())}"
        )
        return 2
    if args.json and args.csv:
        ui.error("--json and --csv are mutually exclusive")
        return 2
    hardware = _hardware_from_args(args)
    params = _parse_assignments(args.param, "--param")
    # A parameter no requested target accepts is a typo, not a no-op.
    accepted_anywhere = {
        name
        for target in args.targets
        if target in specs
        for name in specs[target].params
    }
    bogus = sorted(set(params) - accepted_anywhere)
    if bogus:
        known = ", ".join(sorted(accepted_anywhere)) or "none for these targets"
        ui.error(
            f"unknown experiment parameter(s): {', '.join(bogus)}; "
            f"accepted: {known}"
        )
        return 2
    for flag, value, minimum in (
        ("--jobs", args.jobs, 1),
        ("--duration", args.duration, None),
        ("--max-time", args.max_time, None),
        ("--tdp", args.tdp, None),
    ):
        if value is None:
            continue
        if (minimum is not None and value < minimum) or (minimum is None and value <= 0):
            bound = f"at least {minimum}" if minimum is not None else "positive"
            ui.error(f"{flag} must be {bound}, got {value}")
            return 2

    if (
        args.out is not None
        and len(args.targets) > 1
        and os.path.exists(args.out)
        and not os.path.isdir(args.out)
    ):
        ui.error(
            f"--out {args.out!r} must be a directory when running several "
            "targets (one file per target is written into it)"
        )
        return 2

    exporting = _exporting(args)
    session = _obs_setup(args, ui)
    runtime = _build_runtime(args, ui)
    sim_config = (
        SimulationConfig(max_simulated_time=args.max_time) if args.max_time else None
    )
    context = build_context(
        tdp=args.tdp,
        workload_duration=args.duration,
        sim_config=sim_config,
        runtime=runtime,
        hardware=hardware,
    )

    reports: List[tuple] = []
    written: Dict[str, int] = {}
    try:
        with obs.span("cli.run", targets=len(args.targets)):
            for target in args.targets:
                ui.info(f"== {target} ==")
                started = time.perf_counter()
                if target in specs:
                    report = _run_experiment(specs[target], context, args, params, ui)
                else:
                    report = _run_campaign(
                        target, runtime, args, sim_config, hardware, ui
                    )
                elapsed = time.perf_counter() - started
                reports.append((target, report))
                if args.out is not None:
                    _write_report_file(target, report, args, written, ui)
                elif not exporting:
                    ui.out(render_text(report))
                ui.info(f"  elapsed: {elapsed:.2f}s")
    finally:
        # One pool serves every target; release its workers deterministically.
        runtime.close()

    if exporting and args.out is None:
        _write_stdout_exports(reports, args, ui)

    ui.info(f"runtime: {runtime.summary()}")
    if runtime.cache is not None:
        ui.info(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)")
    _obs_teardown(args, session, ui)
    return 0


def _print_hardware_catalog(ui: Console) -> None:
    """One line per registered platform (shared by ``list`` and ``hw list``)."""
    for name in sorted(HARDWARE):
        spec = HARDWARE[name]
        ui.out(f"  {name:18s} {spec.label:24s} {spec.description}")


def _cmd_hw_list(args: argparse.Namespace) -> int:
    ui = Console()
    if args.json:
        ui.out(
            json.dumps(
                {name: HARDWARE[name].to_dict() for name in sorted(HARDWARE)},
                indent=2,
            )
        )
        return 0
    _print_hardware_catalog(ui)
    ui.out(
        f"{len(HARDWARE)} platform(s); describe one with: hw describe NAME, "
        "derive variants with: run --platform NAME --set key=value"
    )
    return 0


def _cmd_hw_describe(args: argparse.Namespace) -> int:
    ui = Console()
    try:
        spec = get_hardware(args.name)
    except KeyError as error:
        ui.error(str(error.args[0]))
        return 2
    if args.set:
        try:
            spec = spec.derive(**_parse_assignments(args.set, "--set"))
        except (KeyError, TypeError, ValueError) as error:
            ui.error(f"invalid hardware description: {error}")
            return 2
    platform = spec.build()
    details = {
        "spec": spec.to_dict(),
        "description": spec.description,
        "content_hash": spec.content_hash,
        "platform": platform.describe(),
    }
    if args.json:
        ui.out(json.dumps(details, indent=2))
        return 0
    ui.out(f"hardware {spec.name!r}: {spec.description}")
    ui.out(f"  label: {spec.label}")
    ui.out(f"  content hash: {spec.content_hash}")
    for key, value in spec.describe().items():
        if key == "content_hash":
            continue
        formatted = f"{value:.4g}" if isinstance(value, float) else value
        ui.out(f"  {key}: {formatted}")
    ui.out(
        "  worst_case_io_memory_power_w: "
        f"{platform.describe()['worst_case_io_memory_power_w']:.4g}"
    )
    return 0


def _cmd_hw_hash(args: argparse.Namespace) -> int:
    ui = Console()
    names = args.names or sorted(HARDWARE)
    unknown = [name for name in names if name not in HARDWARE]
    if unknown:
        ui.error(
            f"unknown hardware: {', '.join(unknown)}; "
            f"known: {', '.join(sorted(HARDWARE))}"
        )
        return 2
    for name in names:
        ui.out(f"{HARDWARE[name].content_hash}  {name}")
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    ui = Console()
    if args.json:
        ui.out(
            json.dumps(
                {name: SCENARIOS[name].to_dict() for name in sorted(SCENARIOS)},
                indent=2,
            )
        )
        return 0
    for name in sorted(SCENARIOS):
        spec = SCENARIOS[name]
        ui.out(f"  {name:26s} {spec.generator:22s} seed={spec.seed:<6d} {spec.description}")
    ui.out(f"{len(SCENARIOS)} scenario(s); describe one with: scenarios describe NAME")
    return 0


def _cmd_scenarios_describe(args: argparse.Namespace) -> int:
    from repro.scenarios.registry import SCENARIOS

    ui = Console()
    spec = SCENARIOS.get(args.name)
    if spec is None:
        ui.error(
            f"unknown scenario {args.name!r}; known: {', '.join(sorted(SCENARIOS))}"
        )
        return 2
    trace = spec.build()
    details = {
        "spec": spec.to_dict(),
        "content_hash": spec.content_hash,
        "trace": {
            "name": trace.name,
            "workload_class": trace.workload_class.value,
            "metric": trace.metric.value,
            "phases": len(trace.phases),
            "total_duration_s": trace.total_duration,
            "average_bandwidth_gbps": trace.average_bandwidth_demand / config.gbps(1),
            "peak_bandwidth_gbps": trace.peak_bandwidth_demand / config.gbps(1),
            "memory_bound_fraction": trace.average_memory_bound_fraction,
        },
    }
    if args.json:
        ui.out(json.dumps(details, indent=2))
        return 0
    ui.out(f"scenario {spec.name!r}: {spec.description}")
    ui.out(f"  generator: {spec.generator}  seed: {spec.seed}")
    if spec.params:
        rendered = ", ".join(f"{key}={value}" for key, value in spec.params)
        ui.out(f"  params: {rendered}")
    ui.out(f"  content hash: {spec.content_hash}")
    for key, value in details["trace"].items():
        formatted = f"{value:.4g}" if isinstance(value, float) else value
        ui.out(f"  {key}: {formatted}")
    return 0


def _cmd_scenarios_sweep(args: argparse.Namespace) -> int:
    ui = _console_for(args)
    unknown = [p for p in (args.policies or []) if p not in POLICY_BUILDERS]
    if unknown:
        ui.error(
            f"unknown polic(ies): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(POLICY_BUILDERS))}"
        )
        return 2
    if args.jobs < 1:
        ui.error(f"--jobs must be at least 1, got {args.jobs}")
        return 2
    if args.max_time is not None and args.max_time <= 0:
        ui.error(f"--max-time must be positive, got {args.max_time}")
        return 2

    session = _obs_setup(args, ui)
    runtime = _build_runtime(args, ui)
    policies = (
        tuple(PolicySpec.make(name) for name in args.policies)
        if args.policies
        else None
    )
    campaign = scenario_campaign(
        quick=args.quick, policies=policies, hardware=_hardware_from_args(args)
    )
    if args.max_time is not None:
        campaign = campaign.with_sim(SimSpec(max_simulated_time=args.max_time))

    started = time.perf_counter()
    try:
        with obs.span("cli.scenarios_sweep", jobs=len(campaign.jobs)):
            report = runtime.run_jobs(campaign.jobs)
    finally:
        runtime.close()
    elapsed = time.perf_counter() - started

    # Regroup the flat outcome list scenario by scenario; the grid builder
    # emits trace-outer, policy-inner, but group by label to stay robust.
    per_scenario: Dict[str, Dict[str, Any]] = {}
    for outcome in report.outcomes:
        job = outcome.job
        assert isinstance(job, SimulationJob)
        per_scenario.setdefault(job.trace.label, {})[
            job.policy.builder
        ] = outcome.result

    rows: List[Dict[str, Any]] = []
    for scenario in sorted(per_scenario):
        for policy, result in sorted(per_scenario[scenario].items()):
            row = {
                "scenario": scenario,
                "policy": policy,
                "energy_j": result.energy.total,
                "time_s": result.execution_time,
            }
            baseline = per_scenario[scenario].get("baseline")
            if baseline is not None and policy != "baseline":
                row["energy_reduction"] = result.energy_reduction_vs(baseline)
                row["perf_impact"] = result.performance_improvement_over(baseline)
            rows.append(row)

    # Like `run --json`: keep stdout a single parseable document.
    if args.json:
        ui.out(json.dumps({"sweep": campaign.description, "rows": rows}, indent=2))
    else:
        ui.out(
            f"sweep: {len(per_scenario)} scenario(s) x "
            f"{len({row['policy'] for row in rows})} polic(ies), "
            f"{len(campaign.jobs)} job(s)"
        )
        for row in rows:
            line = (
                f"  {row['scenario']:26s} {row['policy']:10s} "
                f"energy={row['energy_j']:.9g} J  time={row['time_s']:.9g} s"
            )
            if "energy_reduction" in row:
                line += (
                    f"  d_energy={row['energy_reduction'] * 100:.6g}%"
                    f"  d_perf={row['perf_impact'] * 100:.6g}%"
                )
            ui.out(line)
        reductions = [
            row["energy_reduction"] for row in rows
            if row["policy"] == "sysscale" and "energy_reduction" in row
        ]
        if reductions:
            ui.out(
                f"  sysscale average energy reduction: "
                f"{sum(reductions) / len(reductions) * 100:.6g}%"
            )
    ui.info(f"  elapsed: {elapsed:.2f}s")
    ui.info(f"runtime: {runtime.summary()}")
    if runtime.cache is not None:
        ui.info(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)")
    _obs_teardown(args, session, ui)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    # Deferred import: the harness pulls in the scenario catalog and platform
    # builders, which nothing else on the CLI's import path needs.
    from repro.runtime.bench import main as bench_main

    ui = _console_for(args)
    session = _obs_setup(args, ui)
    try:
        return bench_main(args)
    finally:
        _obs_teardown(args, session, ui)


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    # Deferred import, same reason as _cmd_bench.
    from repro.runtime.bench import compare_main

    return compare_main(args)


def _cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the linter is pure stdlib-ast tooling nothing else on
    # the CLI's import path needs.
    from repro.analysis.lint.cli import run_lint

    return run_lint(
        args.paths,
        as_json=args.json,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        explain=args.explain,
        list_rules=args.list_rules,
        rules=args.rules or None,
    )


def _cmd_trace_describe(args: argparse.Namespace) -> int:
    ui = Console()
    try:
        events = read_jsonl(args.path)
    except OSError as error:
        ui.error(f"cannot read trace {args.path!r}: {error}")
        return 2
    except ValueError as error:
        ui.error(f"trace {args.path!r} is not valid JSONL: {error}")
        return 2
    summary = summarize_trace_events(events)
    if args.json:
        ui.out(json.dumps(summary, indent=2))
        return 0
    ui.out(f"trace: {args.path}")
    ui.out(f"  events: {summary['events']}")
    for event_type, count in summary["by_type"].items():
        ui.out(f"    {event_type}: {count}")
    engine = summary["engine"]
    if engine["segments"]:
        ui.out("engine:")
        ui.out(
            f"  {engine['runs']} run(s), {engine['segments']} segment(s), "
            f"{engine['ticks']} tick(s), {engine['transitions']} transition(s)"
        )
        ui.out(
            f"  memo hit rate: {engine['memo_hit_rate'] * 100:.1f}%  "
            f"simulated: {engine['simulated_s']:.4g}s"
        )
        energy = summary["energy_j"]
        ui.out(
            "  energy: "
            + "  ".join(f"{domain}={joules:.4g}J" for domain, joules in energy.items())
        )
        ui.out("  dram residency:")
        for point, seconds in summary["dram_residency_s"].items():
            ui.out(f"    {point}: {seconds:.4g}s")
        ui.out("  phase residency:")
        for phase, seconds in summary["phase_residency_s"].items():
            ui.out(f"    {phase}: {seconds:.4g}s")
    if "spans" in summary:
        ui.out("spans:")
        for name, entry in summary["spans"].items():
            ui.out(
                f"  {name:24s} count={entry['count']:<5d} "
                f"total={entry['total_s']:.4g}s max={entry['max_s']:.4g}s"
            )
    if "logs" in summary:
        rendered = ", ".join(
            f"{level}={count}" for level, count in summary["logs"].items()
        )
        ui.out(f"logs: {rendered}")
    if "timeseries" in summary:
        series = summary["timeseries"]
        ui.out(
            f"timeseries: {series['samples']} sample(s) over "
            f"{series['span_s']:.4g}s"
        )
        for name, stats in series["metrics"].items():
            ui.out(
                f"  {name:24s} min={stats['min']:.4g} mean={stats['mean']:.4g} "
                f"max={stats['max']:.4g} last={stats['last']:.4g}"
            )
    return 0


def _load_trace_model(path: str, ui: Console):
    """Parse one trace file into a :class:`TraceModel`, or raise ``_CliError``."""
    # Deferred import: only the trace subcommands need the analysis package.
    from repro.obs.analysis import TraceModel

    try:
        return TraceModel.load(path)
    except OSError as error:
        raise _CliError(f"cannot read trace {path!r}: {error}") from error
    except ValueError as error:
        raise _CliError(f"trace {path!r} is not valid JSONL: {error}") from error


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.analysis import diff_traces, render_diff_text

    ui = Console(info_stream=sys.stderr if args.json else None)
    model_a = _load_trace_model(args.trace_a, ui)
    model_b = _load_trace_model(args.trace_b, ui)
    diff = diff_traces(model_a, model_b)
    if args.json:
        ui.out(json.dumps(diff.to_dict(), indent=2))
    else:
        ui.out(f"trace diff: {args.trace_a} vs {args.trace_b}")
        ui.out(render_diff_text(diff, limit=args.limit))
    # Drift is reported, not gated: two traces of the same run exit 0.
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    from repro.obs.analysis import export_chrome_trace

    ui = Console()
    model = _load_trace_model(args.path, ui)
    document = export_chrome_trace(model, args.chrome)
    described = model.describe()
    ui.out(
        f"wrote {args.chrome}: {len(document['traceEvents'])} trace event(s) "
        f"from {described['engine_runs']} engine run(s), "
        f"{described['segments']} segment(s), {described['spans']} span(s)"
    )
    ui.info("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    ui = Console()
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        ui.out(f"removed {removed} entries from {cache.root}")
        return 0
    entries = len(cache)
    ui.out(f"cache: {cache.root}")
    ui.out(f"  entries: {entries}")
    ui.out(f"  size: {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def _fleet_campaign(args: argparse.Namespace):
    """Resolve the ``CAMPAIGN`` argument of submit/verify, with smoke caps."""
    # Deferred import: the fleet pulls in the campaign catalog and scenario
    # registry, which the rest of the CLI's import path does not need.
    from repro.fleet import resolve_campaign

    if args.max_time is not None and args.max_time <= 0:
        raise _CliError(f"--max-time must be positive, got {args.max_time}")
    try:
        return resolve_campaign(
            args.campaign, quick=args.quick, max_time=args.max_time
        )
    except KeyError as error:
        raise _CliError(str(error.args[0])) from error


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet import AutoscalerConfig, FaultPlan, FleetConfig, FleetService

    ui = _console_for(args)
    if args.workers < 1:
        raise _CliError(f"--workers must be at least 1, got {args.workers}")
    if args.batch_size is not None and args.batch_size < 1:
        raise _CliError(f"--batch-size must be at least 1, got {args.batch_size}")
    faults = None
    if args.faults:
        try:
            faults = FaultPlan.parse(args.faults)
        except ValueError as error:
            raise _CliError(f"invalid --faults spec: {error}") from error
    try:
        autoscaler = AutoscalerConfig(
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            scale_up_depth=args.scale_up_depth,
            scale_down_depth=args.scale_down_depth,
            sustained_readings=args.sustained_readings,
            scale_up_cooldown=args.scale_up_cooldown,
            scale_down_cooldown=args.scale_down_cooldown,
        )
    except ValueError as error:
        raise _CliError(f"invalid autoscaler configuration: {error}") from error
    session = _obs_setup(args, ui)
    config = FleetConfig(
        root=args.fleet_dir,
        workers=args.workers,
        batch_size=args.batch_size,
        poll_interval=args.poll_interval,
        lease_timeout=args.lease_timeout,
        lease_limit=args.lease_limit,
        max_attempts=args.max_attempts,
        autoscale=not args.no_autoscale,
        autoscaler=autoscaler,
        drain=args.drain,
        drain_grace=args.drain_grace,
        idle_timeout=args.idle_timeout,
        faults=faults,
    )
    service = FleetService(config)
    ui.info(
        f"serving fleet at {config.root} "
        f"({config.workers} worker(s), autoscale "
        f"{'on' if config.autoscale else 'off'}"
        f"{', drain mode' if config.drain else ''})"
    )
    if faults is not None:
        ui.info(f"chaos faults active: {faults.describe()}")
    try:
        with obs.span("cli.serve", root=str(config.root)):
            summary = service.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        ui.info("interrupted; shutting the pool down")
        service.executor.close()
        summary = {"rounds": service.rounds, "jobs_run": service.jobs_run}
    if args.json:
        ui.out(json.dumps(summary, indent=2))
    else:
        ui.out(
            f"serve: {summary.get('jobs_run', 0)} job(s) in "
            f"{summary.get('rounds', 0)} round(s), "
            f"{summary.get('reports_finalized', 0)} report(s) finalized, "
            f"{summary.get('scaling_events', 0)} scaling event(s)"
        )
    _obs_teardown(args, session, ui)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.fleet import submit_campaign

    ui = _console_for(args)
    campaign = _fleet_campaign(args)
    summary = submit_campaign(
        args.fleet_dir, campaign, priority=args.priority
    )
    if args.json:
        ui.out(json.dumps(summary, indent=2))
    else:
        if summary["warm_start"]:
            ui.out(
                f"submit: {summary['campaign']} already reported "
                f"(spec {summary['spec_hash'][:12]}); nothing enqueued"
            )
        else:
            ui.out(
                f"submit: {summary['campaign']} -> {summary['enqueued']} "
                f"enqueued, {summary['deduped_store']} served from store, "
                f"{summary['deduped_queue']} already queued "
                f"(spec {summary['spec_hash'][:12]})"
            )
    return 0


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    from repro.fleet import fleet_status

    ui = _console_for(args)
    status = fleet_status(args.fleet_dir)
    if args.json:
        ui.out(json.dumps(status, indent=2))
        return 0
    queue = status["queue"]
    ui.out(f"fleet: {status['root']}")
    corrupt_suffix = (
        f", {queue['corrupt']} CORRUPT" if queue.get("corrupt") else ""
    )
    ui.out(
        f"  queue: {queue['queued']} queued, {queue['leased']} leased, "
        f"{queue['done']} done, {queue['failed']} failed{corrupt_suffix}"
    )
    store = status["store"]
    ui.out(
        f"  store: {store['jobs']} job(s), {store['reports']} report(s), "
        f"{store['bytes'] / 1024:.1f} KiB"
    )
    quarantine = status.get("quarantine", {})
    if quarantine.get("jobs") or quarantine.get("corrupt"):
        ui.out(
            f"  quarantine: {quarantine.get('jobs', 0)} job(s), "
            f"{quarantine.get('corrupt', 0)} corrupt file(s)"
        )
    for entry in status["campaigns"]:
        state = "reported" if entry["reported"] else (
            f"{entry['landed']}/{entry['jobs']} landed"
        )
        ui.out(f"  campaign {entry['campaign']}: {state}")
    service = status.get("service")
    if service is not None and "health" in service:
        health = service["health"]
        if health["stale"]:
            reason = (
                "pid not running" if not health["alive"]
                else f"heartbeat {health['age_seconds']:.0f}s old"
            )
            ui.out(f"  service: STALE ({reason}, pid {service.get('pid')})")
        else:
            ui.out(
                f"  service: alive (pid {service.get('pid')}, "
                f"{service.get('workers')} worker(s))"
            )
    ui.out(f"  drained: {'yes' if status['drained'] else 'no'}")
    return 0


def _cmd_fleet_verify(args: argparse.Namespace) -> int:
    from repro.fleet import verify_campaign

    ui = _console_for(args)
    campaign = _fleet_campaign(args)
    verdict = verify_campaign(args.fleet_dir, campaign)
    if args.json:
        ui.out(json.dumps(verdict, indent=2))
    else:
        ui.out(
            f"verify {verdict['campaign']}: "
            f"{'bit-identical to serial' if verdict['ok'] else 'MISMATCH'} "
            f"({verdict['jobs']} job(s), {len(verdict['missing'])} missing, "
            f"{len(verdict['mismatched'])} mismatched, report "
            f"{'ok' if verdict['report_ok'] else 'missing/stale'})"
        )
    return 0 if verdict["ok"] else 1


def _cmd_fleet_migrate(args: argparse.Namespace) -> int:
    from repro.fleet import ShardedResultStore
    from repro.fleet.service import FleetPaths

    ui = _console_for(args)
    store = ShardedResultStore(FleetPaths(args.fleet_dir).store_dir)
    moved = store.migrate_flat(source=args.source)
    ui.out(f"migrate: {moved} entr(ies) moved into {store.jobs_root}")
    return 0


def _cmd_fleet_doctor(args: argparse.Namespace) -> int:
    from repro.fleet import run_doctor

    ui = _console_for(args)
    report = run_doctor(args.fleet_dir, fix=args.fix)
    if args.json:
        ui.out(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    ui.out(f"doctor: {report.root}")
    if not report.findings:
        ui.out("  no findings; directory is consistent")
    for finding in report.findings:
        tag = finding.severity.upper()
        fixed = " [fixed]" if finding.fixed else ""
        ui.out(f"  {tag} {finding.code} {finding.subject}: "
               f"{finding.message}{fixed}")
    verdict = "healthy" if report.ok else "UNHEALTHY"
    ui.out(
        f"  verdict: {verdict} ({len(report.findings)} finding(s), "
        f"{report.fixed_count} fixed)"
    )
    return 0 if report.ok else 1


def _cmd_fleet_gc(args: argparse.Namespace) -> int:
    from repro.fleet import JobQueue
    from repro.fleet.service import FleetPaths

    ui = _console_for(args)
    if args.ttl < 0:
        raise _CliError(f"--ttl must be non-negative, got {args.ttl}")
    queue = JobQueue(FleetPaths(args.fleet_dir).queue_dir)
    summary = queue.gc(ttl=args.ttl, dry_run=args.dry_run)
    if args.json:
        ui.out(json.dumps(summary, indent=2))
    else:
        verb = "would remove" if args.dry_run else "removed"
        ui.out(
            f"gc: {verb} {summary['removed_done']} done, "
            f"{summary['removed_failed']} failed, "
            f"{summary['removed_tmp']} stray tmp "
            f"({summary['kept']} kept of {summary['scanned']} scanned, "
            f"ttl {args.ttl:g}s)"
        )
    return 0


def _add_hardware_flags(parser: argparse.ArgumentParser) -> None:
    """The hardware-description flags shared by ``run`` and ``scenarios sweep``."""
    parser.add_argument(
        "--platform", default=None, metavar="NAME",
        help=(
            "hardware description to simulate (see `hw list`; "
            "default: skylake)"
        ),
    )
    parser.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help=(
            "hardware derivation override (repeatable): a HardwareSpec field "
            "(tdp=5.5, dram=ddr4) or <field>_scale multiplier "
            "(uncore_leakage_coeff_scale=1.08)"
        ),
    )


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    """The executor/cache flags shared by ``run`` and ``scenarios sweep``."""
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial in-process execution)",
    )
    parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    parser.add_argument(
        "--progress", action="store_true", help="print per-job progress lines"
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The telemetry flags shared by ``run``, ``scenarios sweep``, and ``bench``."""
    parser.add_argument(
        "--log-level", choices=sorted(obs.LEVELS, key=obs.LEVELS.get),
        default=None, metavar="LEVEL",
        help="minimum level for decorative output (debug/info/warning/error)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help=(
            "record telemetry events (spans, logs, engine segment timelines) "
            "to a JSON-lines file; summarize it with `trace describe PATH`"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="enable metrics collection and print the registry summary at exit",
    )
    parser.add_argument(
        "--sample-interval", type=float, default=None, metavar="S",
        help=(
            "poll the metrics registry every S seconds, emitting "
            "timeseries.sample events (queue depth, in-flight jobs, "
            "cache-hit ratio) into the trace stream; combine with "
            "--trace-out to record them"
        ),
    )


def _run_epilog() -> str:
    """Per-target help text, generated from the experiment registry."""
    lines = ["targets (from the experiment registry):"]
    for name, spec in registry().items():
        lines.append(f"  {name:12s} {spec.help_text}")
    lines.append("campaigns:")
    for name, factory in CAMPAIGNS.items():
        lines.append(f"  {name:12s} {factory(True).description}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SysScale reproduction runner: regenerate the paper's tables, "
            "figures, and sweep campaigns through the parallel, cached runtime."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list runnable targets").set_defaults(
        handler=_cmd_list
    )

    run_parser = subparsers.add_parser(
        "run",
        help="run experiment/campaign targets",
        epilog=_run_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    run_parser.add_argument(
        "targets", nargs="+", metavar="TARGET", help="figure, table, or campaign name"
    )
    _add_runtime_flags(run_parser)
    _add_obs_flags(run_parser)
    run_parser.add_argument(
        "--quick", action="store_true", help="reduced workload sets for fast runs"
    )
    run_parser.add_argument(
        "--duration", type=float, default=1.0, metavar="S",
        help="workload trace duration in seconds (default 1.0)",
    )
    run_parser.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    run_parser.add_argument(
        "--tdp", type=float, default=None, metavar="W",
        help=(
            "package TDP in watts (a derivation over the selected platform; "
            f"default {config.SKYLAKE_DEFAULT_TDP:g})"
        ),
    )
    _add_hardware_flags(run_parser)
    run_parser.add_argument(
        "--param", action="append", default=None, metavar="KEY=VALUE",
        help=(
            "experiment parameter override (repeatable), validated against "
            "each target's registered params (see run --help epilog)"
        ),
    )
    run_parser.add_argument(
        "--json", action="store_true",
        help="emit the ExperimentReport document(s) as JSON on stdout",
    )
    run_parser.add_argument(
        "--csv", action="store_true",
        help="emit the CSV export (one section per report block) on stdout",
    )
    run_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "write the export to PATH instead of stdout (a directory when "
            "running several targets); implies --json unless --csv is given"
        ),
    )
    run_parser.set_defaults(handler=_cmd_run)

    hw_parser = subparsers.add_parser(
        "hw", help="the hardware description catalog (repro.hw)"
    )
    hw_sub = hw_parser.add_subparsers(dest="hw_command", required=True)
    hw_list = hw_sub.add_parser("list", help="list the registered platforms")
    hw_list.add_argument(
        "--json", action="store_true", help="print the full specs as JSON"
    )
    hw_list.set_defaults(handler=_cmd_hw_list)
    hw_describe = hw_sub.add_parser(
        "describe", help="show one platform's spec, hash, and derived figures"
    )
    hw_describe.add_argument("name", metavar="NAME", help="registered platform name")
    hw_describe.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="apply derivation overrides before describing",
    )
    hw_describe.add_argument(
        "--json", action="store_true", help="print the details as JSON"
    )
    hw_describe.set_defaults(handler=_cmd_hw_describe)
    hw_hash = hw_sub.add_parser(
        "hash", help="print content hashes of registered platforms"
    )
    hw_hash.add_argument(
        "names", nargs="*", metavar="NAME", help="platform names (default: all)"
    )
    hw_hash.set_defaults(handler=_cmd_hw_hash)

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="the synthesized scenario catalog (repro.scenarios)"
    )
    scenarios_sub = scenarios_parser.add_subparsers(
        dest="scenarios_command", required=True
    )
    scen_list = scenarios_sub.add_parser("list", help="list the scenario catalog")
    scen_list.add_argument(
        "--json", action="store_true", help="print the catalog specs as JSON"
    )
    scen_list.set_defaults(handler=_cmd_scenarios_list)
    scen_describe = scenarios_sub.add_parser(
        "describe", help="show one scenario's spec, hash, and trace shape"
    )
    scen_describe.add_argument("name", metavar="NAME", help="catalog scenario name")
    scen_describe.add_argument(
        "--json", action="store_true", help="print the details as JSON"
    )
    scen_describe.set_defaults(handler=_cmd_scenarios_describe)
    scen_sweep = scenarios_sub.add_parser(
        "sweep", help="sweep scenarios x policies through the runtime"
    )
    _add_runtime_flags(scen_sweep)
    _add_obs_flags(scen_sweep)
    _add_hardware_flags(scen_sweep)
    scen_sweep.add_argument(
        "--policies", nargs="+", metavar="POLICY",
        help="policy builders to sweep (default: baseline sysscale md_dvfs)",
    )
    scen_sweep.add_argument(
        "--quick", action="store_true",
        help="one scenario per generator family, headline policies only",
    )
    scen_sweep.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    scen_sweep.add_argument(
        "--json", action="store_true", help="print sweep rows as JSON"
    )
    scen_sweep.set_defaults(handler=_cmd_scenarios_sweep)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the performance harness and write BENCH_8.json",
        description=(
            "Measure engine ticks/sec (segment-stepping vs. the seed "
            "reference loop) and runtime jobs/sec (cold vs. warm cache, "
            "serial vs. parallel), gate on bit-identity and telemetry "
            "overhead, and write one machine-readable JSON document.  "
            "`bench compare BASELINE [CURRENT]` gates a document against "
            "history with noise-derived per-metric regression budgets."
        ),
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="reduced tick counts and job batch (the CI smoke configuration)",
    )
    bench_parser.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="worker processes for the parallel benchmark (default 2)",
    )
    bench_parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=(
            "write the bench document to PATH "
            "(default BENCH_8.json in the working directory; "
            "'-' skips the file)"
        ),
    )
    bench_parser.add_argument(
        "--json", action="store_true",
        help="print the bench document as JSON on stdout",
    )
    _add_obs_flags(bench_parser)
    bench_parser.set_defaults(handler=_cmd_bench)
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=False)
    bench_compare = bench_sub.add_parser(
        "compare",
        help="gate a bench document against a baseline BENCH_*.json",
        description=(
            "Compare two bench documents with per-metric regression budgets: "
            "timing metrics get noise-derived budgets (from the recorded "
            "per-repetition samples), bit-identity flags get strict equality, "
            "and the engine speedup keeps its absolute floor.  Exits 1 on "
            "any regression.  Without CURRENT, a fresh bench runs in-process "
            "(honouring --quick/--jobs) and is compared against BASELINE."
        ),
    )
    bench_compare.add_argument(
        "baseline", metavar="BASELINE", help="baseline BENCH_*.json document"
    )
    bench_compare.add_argument(
        "current", nargs="?", default=None, metavar="CURRENT",
        help="bench document to gate (default: run a fresh bench now)",
    )
    bench_compare.add_argument(
        "--json", action="store_true",
        help="print the comparison verdicts as JSON on stdout",
    )
    bench_compare.add_argument(
        "--quick", action="store_true",
        help="when running a fresh bench, use the quick configuration",
    )
    bench_compare.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="when running a fresh bench, worker processes (default 2)",
    )
    bench_compare.set_defaults(handler=_cmd_bench_compare)

    trace_parser = subparsers.add_parser(
        "trace", help="inspect recorded telemetry traces (repro.obs)"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_describe = trace_sub.add_parser(
        "describe",
        help="summarize a JSON-lines trace recorded with --trace-out",
    )
    trace_describe.add_argument(
        "path", metavar="PATH", help="trace file written by --trace-out"
    )
    trace_describe.add_argument(
        "--json", action="store_true", help="print the summary as JSON"
    )
    trace_describe.set_defaults(handler=_cmd_trace_describe)
    trace_diff = trace_sub.add_parser(
        "diff",
        help="attribute simulated time between two traces and report drift",
        description=(
            "Fold each trace's engine segments into (workload, policy, phase, "
            "operating point) attribution buckets and diff them: buckets key "
            "on what the engine memo keys on, so two runs align even when "
            "their jobs executed in different orders.  Two traces of the "
            "same run report zero drift."
        ),
    )
    trace_diff.add_argument(
        "trace_a", metavar="A", help="baseline trace (JSONL from --trace-out)"
    )
    trace_diff.add_argument(
        "trace_b", metavar="B", help="comparison trace (JSONL from --trace-out)"
    )
    trace_diff.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show at most N changed buckets (default 20)",
    )
    trace_diff.add_argument(
        "--json", action="store_true", help="print the full diff as JSON"
    )
    trace_diff.set_defaults(handler=_cmd_trace_diff)
    trace_export = trace_sub.add_parser(
        "export",
        help="convert a trace to Chrome/Perfetto trace_event JSON",
        description=(
            "Convert a --trace-out JSONL file to the Trace Event Format "
            "(chrome://tracing, https://ui.perfetto.dev): the span waterfall "
            "on one process row, engine segment/transition timelines (one "
            "thread per run, simulated time) on another."
        ),
    )
    trace_export.add_argument(
        "path", metavar="PATH", help="trace file written by --trace-out"
    )
    trace_export.add_argument(
        "--chrome", required=True, metavar="OUT",
        help="write the trace_event JSON document to OUT",
    )
    trace_export.set_defaults(handler=_cmd_trace_export)

    lint_parser = subparsers.add_parser(
        "lint",
        help="statically check the repo's determinism/hash/layering contracts",
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro tests tools examples)",
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON on stdout"
    )
    lint_parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of tolerated findings "
        "(default: .reprolint-baseline.json when present)",
    )
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to absorb all current findings",
    )
    lint_parser.add_argument(
        "--rule", dest="rules", action="append", metavar="RULE",
        help="restrict to one rule (repeatable)",
    )
    lint_parser.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print a rule's rationale with a bad/good example, then exit",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true", help="list rules with severities"
    )
    lint_parser.set_defaults(handler=_cmd_lint)

    cache_parser = subparsers.add_parser("cache", help="inspect or clear the cache")
    cache_parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every cache entry"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    def add_fleet_dir(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "--fleet-dir",
            default=os.environ.get("REPRO_FLEET_DIR", ".repro-fleet"),
            metavar="DIR",
            help=(
                "fleet directory holding the queue, store, and campaign "
                "manifests (default .repro-fleet, or $REPRO_FLEET_DIR)"
            ),
        )

    def add_campaign_args(target: argparse.ArgumentParser) -> None:
        target.add_argument(
            "campaign", metavar="CAMPAIGN",
            help=f"campaign name ({', '.join(sorted(CAMPAIGNS))})",
        )
        target.add_argument(
            "--quick", action="store_true",
            help="reduced workload set for fast runs",
        )
        target.add_argument(
            "--max-time", type=float, default=None, metavar="S",
            help="cap simulated seconds per job (smoke-test scaling)",
        )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the sweep service over a fleet directory",
        description=(
            "Poll the fleet queue, execute leased jobs through a batched "
            "process pool into the sharded store, finalize sweep reports, "
            "and autoscale the pool from observed queue depth."
        ),
    )
    add_fleet_dir(serve_parser)
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="initial worker processes (default 2)",
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help=(
            "jobs packed per pool submission (default: auto-sized from the "
            "batch and worker count)"
        ),
    )
    serve_parser.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="S",
        help="seconds between queue polls when idle (default 0.2)",
    )
    serve_parser.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="S",
        help="seconds before an unfinished lease is reclaimed (default 60)",
    )
    serve_parser.add_argument(
        "--lease-limit", type=int, default=64, metavar="N",
        help="jobs leased per poll (default 64)",
    )
    serve_parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts before a job is marked failed (default 3)",
    )
    serve_parser.add_argument(
        "--no-autoscale", action="store_true",
        help="pin the pool at --workers instead of autoscaling",
    )
    serve_parser.add_argument(
        "--min-workers", type=int, default=1, metavar="N",
        help="autoscaler lower bound (default 1)",
    )
    serve_parser.add_argument(
        "--max-workers", type=int, default=4, metavar="N",
        help="autoscaler upper bound (default 4)",
    )
    serve_parser.add_argument(
        "--scale-up-depth", type=float, default=8.0, metavar="D",
        help="queue depth that counts toward scaling up (default 8)",
    )
    serve_parser.add_argument(
        "--scale-down-depth", type=float, default=1.0, metavar="D",
        help="queue depth that counts toward scaling down (default 1)",
    )
    serve_parser.add_argument(
        "--sustained-readings", type=int, default=2, metavar="N",
        help="consecutive qualifying samples before a move (default 2)",
    )
    serve_parser.add_argument(
        "--scale-up-cooldown", type=float, default=2.0, metavar="S",
        help="seconds to hold after a scaling event before growing (default 2)",
    )
    serve_parser.add_argument(
        "--scale-down-cooldown", type=float, default=10.0, metavar="S",
        help="seconds to hold after a scaling event before shrinking (default 10)",
    )
    serve_parser.add_argument(
        "--drain", action="store_true",
        help="exit once the queue is empty and all sweep reports are stored",
    )
    serve_parser.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="S",
        help="with --drain: seconds to wait for work to first appear (default 10)",
    )
    serve_parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="without --drain: exit after S idle seconds (default: run forever)",
    )
    serve_parser.add_argument(
        "--faults",
        default=os.environ.get("REPRO_FLEET_FAULTS"),
        metavar="SPEC",
        help=(
            "seeded chaos plan for fault-injection runs, e.g. "
            "'seed=42;torn@queue.write=0.1;crash@job=0.2;hang@job=0.1:0.05' "
            "(default: $REPRO_FLEET_FAULTS; unset = no faults)"
        ),
    )
    serve_parser.add_argument(
        "--json", action="store_true", help="emit the exit summary as JSON"
    )
    _add_obs_flags(serve_parser)
    serve_parser.set_defaults(handler=_cmd_serve)

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit a campaign's jobs to the fleet queue",
        description=(
            "Resolve a named campaign, write its sweep manifest, and enqueue "
            "its jobs -- deduplicated against the queue and the result store. "
            "An already-reported sweep is a warm start: nothing is enqueued."
        ),
    )
    add_fleet_dir(submit_parser)
    add_campaign_args(submit_parser)
    submit_parser.add_argument(
        "--priority", type=int, default=0, metavar="P",
        help="queue priority (higher dispatches sooner; default 0)",
    )
    submit_parser.add_argument(
        "--json", action="store_true", help="emit the submission summary as JSON"
    )
    submit_parser.set_defaults(handler=_cmd_submit)

    fleet_parser = subparsers.add_parser(
        "fleet", help="inspect or verify a fleet directory"
    )
    fleet_sub = fleet_parser.add_subparsers(dest="fleet_command", required=True)
    fleet_status_parser = fleet_sub.add_parser(
        "status", help="queue counts, store stats, and campaign completion"
    )
    add_fleet_dir(fleet_status_parser)
    fleet_status_parser.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )
    fleet_status_parser.set_defaults(handler=_cmd_fleet_status)
    fleet_verify_parser = fleet_sub.add_parser(
        "verify",
        help="check fleet results for a campaign against a serial re-run",
    )
    add_fleet_dir(fleet_verify_parser)
    add_campaign_args(fleet_verify_parser)
    fleet_verify_parser.add_argument(
        "--json", action="store_true", help="emit the verdict as JSON"
    )
    fleet_verify_parser.set_defaults(handler=_cmd_fleet_verify)
    fleet_migrate_parser = fleet_sub.add_parser(
        "migrate",
        help="absorb a flat cache directory into the store's sharded layout",
    )
    add_fleet_dir(fleet_migrate_parser)
    fleet_migrate_parser.add_argument(
        "--source", default=None, metavar="DIR",
        help=(
            "cache directory to pull entries from (default: shard the "
            "store's own job namespace in place)"
        ),
    )
    fleet_migrate_parser.set_defaults(handler=_cmd_fleet_migrate)
    fleet_doctor_parser = fleet_sub.add_parser(
        "doctor",
        help="audit queue/store/heartbeat consistency (exit 1 when unhealthy)",
        description=(
            "Cross-check the fleet directory for corrupt queue entries, "
            "queue/store state skew, expired leases, stale heartbeats, stray "
            "temp files, and lost manifest jobs.  --fix applies every repair "
            "that cannot lose information (restore or quarantine corrupt "
            "entries, requeue lost results, complete already-stored leases, "
            "sweep temp files)."
        ),
    )
    add_fleet_dir(fleet_doctor_parser)
    fleet_doctor_parser.add_argument(
        "--fix", action="store_true", help="apply safe repairs while auditing"
    )
    fleet_doctor_parser.add_argument(
        "--json", action="store_true", help="emit the findings as JSON"
    )
    fleet_doctor_parser.set_defaults(handler=_cmd_fleet_doctor)
    fleet_gc_parser = fleet_sub.add_parser(
        "gc",
        help="compact done/failed queue entries older than a TTL",
        description=(
            "Remove terminal (done/failed) queue-entry files whose last "
            "state change is older than --ttl, plus stray temp files of the "
            "same age.  Queued and leased entries are never touched."
        ),
    )
    add_fleet_dir(fleet_gc_parser)
    fleet_gc_parser.add_argument(
        "--ttl", type=float, default=3600.0, metavar="S",
        help="age in seconds before a terminal entry is collected (default 3600)",
    )
    fleet_gc_parser.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )
    fleet_gc_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    fleet_gc_parser.set_defaults(handler=_cmd_fleet_gc)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except _CliError as error:
        Console().error(str(error))
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
