"""The ``python -m repro`` command line.

Three subcommands:

* ``list`` -- every runnable target: the paper's tables and figures plus the
  named sweep campaigns;
* ``run TARGET [TARGET ...]`` -- run targets through the runtime, with
  ``--jobs N`` (process parallelism), ``--cache-dir``/``--no-cache`` (the
  content-addressed result store), ``--quick`` (reduced workload sets), and
  ``--duration``/``--max-time`` (trace/engine scaling for smoke runs);
* ``cache`` -- inspect or clear the result store.

Every ``run`` invocation ends with the runtime summary line, e.g.::

    runtime: 58 job(s) submitted, 58 unique, 0 simulated, 58 cache hit(s)

so a warm-cache rerun is verifiable at a glance (``0 simulated``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro import config
from repro.experiments import (
    build_context,
    run_dram_frequency_sensitivity,
    run_fig2_motivation,
    run_fig3_bandwidth_demand,
    run_fig4_mrc_impact,
    run_fig5_transition_flow,
    run_fig6_prediction,
    run_fig7_spec,
    run_fig8_graphics,
    run_fig9_battery_life,
    run_fig10_tdp_sensitivity,
    run_table1,
    run_table2,
)
from repro.experiments.runner import ExperimentContext, ExperimentRuntime
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.campaign import CAMPAIGNS, QUICK_SPEC_SUBSET
from repro.runtime.executor import ProgressUpdate, make_executor
from repro.runtime.jobs import SimSpec
from repro.sim.engine import SimulationConfig
from repro.workloads.trace import WorkloadClass

#: ``--quick`` corpus sizes for the Fig. 6 predictor evaluation.
QUICK_FIG6_CORPUS = {
    WorkloadClass.CPU_SINGLE_THREAD: 60,
    WorkloadClass.CPU_MULTI_THREAD: 30,
    WorkloadClass.GRAPHICS: 20,
}

Target = Callable[[ExperimentContext, bool], Dict[str, Any]]

#: Experiment targets: name -> (description, runner(context, quick)).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (
        "Table 1: static MD-DVFS operating-point settings",
        lambda context, quick: run_table1(context),
    ),
    "table2": (
        "Table 2: evaluated system parameters",
        lambda context, quick: run_table2(context),
    ),
    "fig2": (
        "Fig. 2: MD-DVFS motivation (power vs. performance impact)",
        lambda context, quick: run_fig2_motivation(context),
    ),
    "fig3": (
        "Fig. 3: memory bandwidth demand of workloads and displays",
        lambda context, quick: run_fig3_bandwidth_demand(context),
    ),
    "fig4": (
        "Fig. 4: impact of unoptimized MRC register values",
        lambda context, quick: run_fig4_mrc_impact(context),
    ),
    "fig5": (
        "Fig. 5: SysScale transition-flow latency breakdown",
        lambda context, quick: run_fig5_transition_flow(context),
    ),
    "fig6": (
        "Fig. 6: demand-predictor accuracy over the synthetic corpus",
        lambda context, quick: run_fig6_prediction(
            context, workloads_per_class=QUICK_FIG6_CORPUS if quick else None
        ),
    ),
    "fig7": (
        "Fig. 7: SPEC CPU2006 performance improvement",
        lambda context, quick: run_fig7_spec(
            context, subset=QUICK_SPEC_SUBSET if quick else None
        ),
    ),
    "fig8": (
        "Fig. 8: 3DMark performance improvement",
        lambda context, quick: run_fig8_graphics(context),
    ),
    "fig9": (
        "Fig. 9: battery-life workload power reduction",
        lambda context, quick: run_fig9_battery_life(context),
    ),
    "fig10": (
        "Fig. 10: SysScale benefit vs. SoC TDP",
        lambda context, quick: run_fig10_tdp_sensitivity(
            subset=QUICK_SPEC_SUBSET if quick else None,
            workload_duration=context.workload_duration,
            runtime=context.runtime,
            sim_config=context.engine.config,
        ),
    ),
    "sensitivity": (
        "Sec. 7.4: DRAM device and operating-point sensitivity",
        lambda context, quick: run_dram_frequency_sensitivity(
            context, corpus_size=20 if quick else 80
        ),
    ),
}


#: Context flags some experiment targets do not honor: fig10 sweeps its own
#: TDP grid; fig6/sensitivity corpora and the fig8/fig9 suites use fixed trace
#: durations.  Used to warn instead of silently presenting default-parameter
#: numbers as if the flag applied.
FLAGS_IGNORED_BY_TARGET: Dict[str, tuple] = {
    "fig10": ("--tdp",),
    "fig6": ("--duration",),
    "fig8": ("--duration",),
    "fig9": ("--duration",),
    "sensitivity": ("--duration",),
    "table1": ("--duration",),
    "table2": ("--duration",),
    "fig4": ("--duration",),
    "fig5": ("--duration",),
}


def _available_targets() -> List[str]:
    return list(EXPERIMENTS) + list(CAMPAIGNS)


def _print_scalar_summary(result: Dict[str, Any]) -> None:
    """Print the scalar entries (and row counts) of an experiment result."""
    for key, value in result.items():
        if isinstance(value, bool) or isinstance(value, (int, str)):
            print(f"  {key}: {value}")
        elif isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        elif isinstance(value, dict) and all(
            isinstance(v, (int, float)) for v in value.values()
        ):
            rendered = ", ".join(f"{k}={v:.4g}" for k, v in value.items())
            print(f"  {key}: {rendered}")
        elif isinstance(value, list):
            print(f"  {key}: {len(value)} row(s)")


def _json_default(value: Any) -> Any:
    """Encode numpy scalars (and anything float-like) for ``--json`` output."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


class _ProgressPrinter:
    """Prints at most ~10 evenly spaced progress lines per batch."""

    def __init__(self) -> None:
        self._last_decile = -1

    def __call__(self, update: ProgressUpdate) -> None:
        if update.total <= 0:
            return
        decile = (10 * update.completed) // update.total
        if update.completed == update.total or decile > self._last_decile:
            self._last_decile = decile if update.completed < update.total else -1
            source = "cache" if update.from_cache else "simulated"
            print(
                f"    [{update.completed}/{update.total}] {update.label} ({source})",
                flush=True,
            )


def _build_runtime(args: argparse.Namespace) -> ExperimentRuntime:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return ExperimentRuntime(
        executor=make_executor(args.jobs),
        cache=cache,
        progress=_ProgressPrinter() if args.progress else None,
    )


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name:12s} {description}")
    print("campaigns:")
    for name, factory in CAMPAIGNS.items():
        campaign = factory(True)
        print(f"  {name:12s} {campaign.description} ({len(factory(False))} jobs full)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    unknown = [t for t in args.targets if t not in EXPERIMENTS and t not in CAMPAIGNS]
    if unknown:
        print(
            f"unknown target(s): {', '.join(unknown)}; "
            f"known: {', '.join(_available_targets())}",
            file=sys.stderr,
        )
        return 2
    for flag, value, minimum in (
        ("--jobs", args.jobs, 1),
        ("--duration", args.duration, None),
        ("--max-time", args.max_time, None),
        ("--tdp", args.tdp, None),
    ):
        if value is None:
            continue
        if (minimum is not None and value < minimum) or (minimum is None and value <= 0):
            bound = f"at least {minimum}" if minimum is not None else "positive"
            print(f"{flag} must be {bound}, got {value}", file=sys.stderr)
            return 2

    runtime = _build_runtime(args)
    sim_config = (
        SimulationConfig(max_simulated_time=args.max_time) if args.max_time else None
    )
    context = build_context(
        tdp=args.tdp,
        workload_duration=args.duration,
        sim_config=sim_config,
        runtime=runtime,
    )

    collected: Dict[str, Any] = {}
    for target in args.targets:
        print(f"== {target} ==")
        started = time.perf_counter()
        if target in EXPERIMENTS:
            changed = {
                "--tdp": args.tdp != config.SKYLAKE_DEFAULT_TDP,
                "--duration": args.duration != 1.0,
            }
            ignored = [
                flag
                for flag in FLAGS_IGNORED_BY_TARGET.get(target, ())
                if changed.get(flag)
            ]
            if ignored:
                print(
                    f"note: {'/'.join(ignored)} do(es) not apply to {target!r}",
                    file=sys.stderr,
                )
            _, entry = EXPERIMENTS[target]
            result = entry(context, args.quick)
        else:
            # Campaign jobs carry their own platform and trace specs; of the
            # context flags only --max-time is folded in, so say so rather
            # than silently presenting default-platform numbers.
            if args.tdp != config.SKYLAKE_DEFAULT_TDP or args.duration != 1.0:
                print(
                    f"note: --tdp/--duration do not apply to campaign {target!r} "
                    "(its jobs define their own platforms and trace durations)",
                    file=sys.stderr,
                )
            campaign = CAMPAIGNS[target](args.quick)
            if sim_config is not None:
                campaign = campaign.with_sim(SimSpec.from_config(sim_config))
            report = runtime.run_jobs(campaign.jobs)
            result = {
                "campaign": campaign.name,
                "description": campaign.description,
                "jobs": len(campaign.jobs),
                "rows": [outcome.result.as_dict() for outcome in report.outcomes],
            }
        elapsed = time.perf_counter() - started
        collected[target] = result
        if args.json:
            print(json.dumps(result, indent=2, default=_json_default))
        else:
            _print_scalar_summary(result)
        print(f"  elapsed: {elapsed:.2f}s")

    print(f"runtime: {runtime.summary()}")
    if runtime.cache is not None:
        print(f"cache: {runtime.cache.root} ({len(runtime.cache)} entries)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
        return 0
    entries = len(cache)
    print(f"cache: {cache.root}")
    print(f"  entries: {entries}")
    print(f"  size: {cache.size_bytes() / 1024:.1f} KiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "SysScale reproduction runner: regenerate the paper's tables, "
            "figures, and sweep campaigns through the parallel, cached runtime."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list runnable targets").set_defaults(
        handler=_cmd_list
    )

    run_parser = subparsers.add_parser("run", help="run experiment/campaign targets")
    run_parser.add_argument(
        "targets", nargs="+", metavar="TARGET", help="figure, table, or campaign name"
    )
    run_parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1: serial in-process execution)",
    )
    run_parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache entirely"
    )
    run_parser.add_argument(
        "--quick", action="store_true", help="reduced workload sets for fast runs"
    )
    run_parser.add_argument(
        "--duration", type=float, default=1.0, metavar="S",
        help="workload trace duration in seconds (default 1.0)",
    )
    run_parser.add_argument(
        "--max-time", type=float, default=None, metavar="S",
        help="cap simulated time per run (engine max_simulated_time)",
    )
    run_parser.add_argument(
        "--tdp", type=float, default=config.SKYLAKE_DEFAULT_TDP, metavar="W",
        help="package TDP in watts",
    )
    run_parser.add_argument(
        "--progress", action="store_true", help="print per-job progress lines"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print full results as JSON"
    )
    run_parser.set_defaults(handler=_cmd_run)

    cache_parser = subparsers.add_parser("cache", help="inspect or clear the cache")
    cache_parser.add_argument(
        "--cache-dir", default=default_cache_dir(), metavar="DIR",
        help="result cache directory (default .repro-cache, or $REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--clear", action="store_true", help="delete every cache entry"
    )
    cache_parser.set_defaults(handler=_cmd_cache)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also the ``repro`` console script)."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
