"""Parallel experiment executor with content-addressed result caching.

The runtime turns the reproduction's simulation sweeps into declarative jobs:

* :mod:`repro.runtime.jobs` -- frozen job specs (trace x policy x platform x
  engine config) with deterministic content hashes;
* :mod:`repro.runtime.cache` -- an on-disk JSON result store keyed by job hash;
* :mod:`repro.runtime.executor` -- a serial executor and a process-pool
  executor that rebuild platforms per worker and report per-job progress;
* :mod:`repro.runtime.campaign` -- declarative sweep grids (workload x policy
  x TDP x DRAM device, or x explicit hardware variants), deduplicated before
  submission;
* :mod:`repro.runtime.bench` -- the ``python -m repro bench`` performance
  harness (ticks/sec, jobs/sec, fast-vs-reference parity gates);
* :mod:`repro.runtime.cli` -- the ``python -m repro`` command line.
"""

from repro.hw import DramSpec, HardwareSpec
from repro.runtime.cache import CacheStats, ResultCache, default_cache_dir
from repro.runtime.campaign import (
    CAMPAIGNS,
    Campaign,
    build_grid_campaign,
    build_hardware_grid_campaign,
    dedupe_jobs,
)
from repro.runtime.executor import (
    ExecutionReport,
    Executor,
    JobOutcome,
    ParallelExecutor,
    ProgressUpdate,
    SerialExecutor,
    make_executor,
)
from repro.runtime.jobs import (
    DegradationJob,
    DegradationMeasurement,
    Job,
    PlatformSpec,
    PointSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
    clear_memos,
    decode_result,
    execute_job,
    job_from_dict,
)

__all__ = [
    "CAMPAIGNS",
    "CacheStats",
    "Campaign",
    "DegradationJob",
    "DegradationMeasurement",
    "DramSpec",
    "ExecutionReport",
    "HardwareSpec",
    "Executor",
    "Job",
    "JobOutcome",
    "ParallelExecutor",
    "PlatformSpec",
    "PointSpec",
    "PolicySpec",
    "ProgressUpdate",
    "ResultCache",
    "SerialExecutor",
    "SimSpec",
    "SimulationJob",
    "TraceSpec",
    "build_grid_campaign",
    "build_hardware_grid_campaign",
    "clear_memos",
    "decode_result",
    "dedupe_jobs",
    "default_cache_dir",
    "execute_job",
    "job_from_dict",
    "make_executor",
]
