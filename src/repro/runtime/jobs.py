"""Declarative simulation jobs with deterministic content hashes.

The runtime never ships live objects (platforms, traces, policies) between
processes: a job is a *specification* -- which trace builder to call, which
policy to construct, which platform knobs to set, which engine parameters to
use -- expressed entirely in JSON-scalar parameters.  That buys three things:

* a **deterministic content hash** (the cache key): two jobs that would run the
  exact same simulation hash identically, no matter where or when they were
  built;
* **process isolation**: every worker rebuilds its own :class:`Platform` from
  the spec, so live MRC register state is never shared across concurrent runs
  (the engine mutates the register file while simulating);
* **replayability**: a job file read back from the cache fully describes the
  run that produced the result next to it.

Two job kinds exist:

* :class:`SimulationJob` -- one ``SimulationEngine.run`` (trace x policy x
  platform x engine config), producing a serialized
  :class:`~repro.sim.result.SimulationResult`;
* :class:`DegradationJob` -- one calibrator measurement (slowdown of a trace
  between two IO/memory operating points plus its high-point counters), the
  unit of work of the Fig. 6 predictor evaluation and the Sec. 7.4 sensitivity
  sweep.

``execute_job`` is the single entry point both executors use; worker-local
memoization (platforms, synthetic corpora) lives here so serial and parallel
execution share one code path and produce bit-identical results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Callable, ClassVar, Dict, List, Optional, Tuple, Union

from repro import config
from repro.obs import state as obs_state
from repro.obs.spans import span as _span
# Re-exported for compatibility: these helpers historically lived here and
# callers still import them from this module.
from repro.hashing import canonical_json, content_hash
from repro.params import (
    ParamValue,
    Params,
    normalize_params as _normalize_params,
    params_to_jsonable as _params_to_jsonable,
)
from repro.hw import DRAM_SPECS, HardwareSpec
from repro.core.operating_points import (
    OperatingPoint,
    OperatingPointTable,
    build_ddr4_operating_points,
    build_default_operating_points,
)
from repro.core.sysscale import SysScaleController, default_thresholds
from repro.core.thresholds import ThresholdCalibrator
from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.perf.counters import CounterName, CounterSample
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import Platform
from repro.sim.policy import Policy
from repro.sim.result import EngineRunStats, SimulationResult
from repro.workloads.batterylife import battery_life_workload
from repro.workloads.corpus import CorpusGenerator
from repro.workloads.graphics import graphics_workload
from repro.workloads.io_devices import STANDARD_CONFIGURATIONS
from repro.workloads.spec2006 import spec_workload
from repro.workloads.trace import WorkloadClass, WorkloadTrace

#: Bump when the job schema changes incompatibly; part of every content hash,
#: so stale cache entries from older schemas can never be returned.
SCHEMA_VERSION = 1

def _cached_job_hash(job) -> str:
    """Compute a job's content hash once and memoize it on the instance.

    Executors, caches, and campaign dedup all key on the hash, so one job's
    hash is consulted many times per run; the spec is frozen, so the digest can
    never change after construction.
    """
    cached = job.__dict__.get("_content_hash")
    if cached is None:
        cached = content_hash({"schema": SCHEMA_VERSION, **job.to_dict()})
        object.__setattr__(job, "_content_hash", cached)
    return cached


# ---------------------------------------------------------------------------
# Trace specifications
# ---------------------------------------------------------------------------

TraceBuilder = Callable[..., WorkloadTrace]


@lru_cache(maxsize=32)
def _corpus_traces(
    seed: int, duration: float, calls: Tuple[str, ...]
) -> Tuple[Tuple[WorkloadTrace, ...], ...]:
    """Replay a ``CorpusGenerator`` call sequence and memoize the traces.

    ``generate_class`` draws from the generator's own RNG once per call, so a
    corpus workload is only reproducible given the *whole sequence* of calls
    made on one generator.  ``calls`` encodes that sequence as
    ``"<workload_class>:<count>"`` strings; replaying it verbatim yields the
    exact corpora the experiment built in the parent process.
    """
    generator = CorpusGenerator(seed=seed, duration=duration)
    populations: List[Tuple[WorkloadTrace, ...]] = []
    for call in calls:
        class_name, _, count = call.rpartition(":")
        corpus = generator.generate_class(WorkloadClass(class_name), int(count))
        populations.append(tuple(workload.trace for workload in corpus))
    return tuple(populations)


def _build_corpus_trace(
    seed: int,
    calls: Tuple[str, ...],
    call: int,
    index: int,
    duration: float = 1.0,
) -> WorkloadTrace:
    """One synthetic corpus workload, addressed by (call sequence, call, index)."""
    populations = _corpus_traces(seed, duration, calls)
    return populations[call][index]


def _build_scenario_trace(**params: Any) -> WorkloadTrace:
    """Synthesize a ``repro.scenarios`` trace (generator + params + seed).

    The import is deferred so that any process able to import this module --
    including a spawn-started worker that unpickles a ``TraceSpec`` -- can
    execute scenario jobs without the parent having imported the scenarios
    package first.
    """
    from repro.scenarios.registry import build_scenario_trace

    return build_scenario_trace(**params)


TRACE_BUILDERS: Dict[str, TraceBuilder] = {
    "spec": spec_workload,
    "graphics": graphics_workload,
    "battery_life": battery_life_workload,
    "corpus": _build_corpus_trace,
    "scenario": _build_scenario_trace,
}


@dataclass(frozen=True)
class TraceSpec:
    """A workload trace, by builder name and JSON-scalar parameters."""

    builder: str
    params: Params = ()

    def __post_init__(self) -> None:
        if self.builder not in TRACE_BUILDERS:
            raise KeyError(
                f"unknown trace builder {self.builder!r}; known: {sorted(TRACE_BUILDERS)}"
            )

    @classmethod
    def make(cls, builder: str, **params: Any) -> "TraceSpec":
        """Build a spec from keyword parameters (order-insensitive)."""
        return cls(builder=builder, params=_normalize_params(params))

    def build(self) -> WorkloadTrace:
        """Materialize the trace."""
        kwargs = {key: value for key, value in self.params}
        return TRACE_BUILDERS[self.builder](**kwargs)

    @property
    def label(self) -> str:
        """Short human-readable identifier for progress reporting."""
        params = dict(self.params)
        if "name" in params:
            return str(params["name"])
        if self.builder == "corpus":
            return f"corpus[{params.get('call', 0)}][{params.get('index', 0)}]"
        return self.builder

    def to_dict(self) -> Dict[str, Any]:
        return {"builder": self.builder, "params": _params_to_jsonable(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSpec":
        return cls.make(data["builder"], **data["params"])


# ---------------------------------------------------------------------------
# Policy specifications
# ---------------------------------------------------------------------------


#: Process-local memo of (operating points, thresholds) per platform, keyed by
#: platform identity (platforms themselves are memoized per spec, so identity
#: is stable).  Threshold calibration is the paper's *offline* procedure: it
#: depends only on the platform and point table, so recalibrating per job
#: would dominate short smoke simulations.  The stored platform reference
#: guards against id() reuse after garbage collection.  Bounded like
#: :data:`_PLATFORM_MEMO` (it grows with the same sweep axes).
_SYSSCALE_MEMO: "OrderedDict[Tuple[int, str], Tuple[Platform, Any, Any]]" = OrderedDict()

#: Entries kept per worker-local memo.  Long platform sweeps (many TDPs x DRAM
#: devices) would otherwise grow the memos without bound; a platform is a few
#: MB of model state, so a handful covers every real campaign's working set.
MEMO_MAX_ENTRIES = 8


def _build_sysscale(platform: Platform, operating_points: str = "default") -> Policy:
    """SysScale with thresholds calibrated (once per platform) for it.

    ``"default"`` means *matched to the platform*: a DDR4 device gets the
    Sec. 7.4 DDR4 table, everything else the LPDDR3 table of Table 1 --
    scaling a DDR4 interface through LPDDR3 frequency points would simulate
    operating points the device does not have.
    """
    key = (id(platform), operating_points)
    memoized = _SYSSCALE_MEMO.get(key)
    if memoized is None or memoized[0] is not platform:
        if operating_points == "default":
            if platform.dram.technology.value == "ddr4":
                points = build_ddr4_operating_points()
            else:
                points = build_default_operating_points(platform)
        elif operating_points == "ddr4":
            points = build_ddr4_operating_points()
        else:
            raise KeyError(f"unknown operating-point table {operating_points!r}")
        memoized = (platform, points, default_thresholds(platform, points))
        _SYSSCALE_MEMO[key] = memoized
        while len(_SYSSCALE_MEMO) > MEMO_MAX_ENTRIES:
            _SYSSCALE_MEMO.popitem(last=False)
    else:
        _SYSSCALE_MEMO.move_to_end(key)
    _, points, thresholds = memoized
    return SysScaleController(
        platform=platform, operating_points=points, thresholds=thresholds
    )


POLICY_BUILDERS: Dict[str, Callable[..., Policy]] = {
    "baseline": lambda platform, **params: FixedBaselinePolicy(**params),
    "sysscale": _build_sysscale,
    "md_dvfs": lambda platform, **params: StaticMdDvfsPolicy(**params),
}


@dataclass(frozen=True)
class PolicySpec:
    """A DVFS policy, by builder name and JSON-scalar parameters."""

    builder: str
    params: Params = ()

    def __post_init__(self) -> None:
        if self.builder not in POLICY_BUILDERS:
            raise KeyError(
                f"unknown policy builder {self.builder!r}; known: {sorted(POLICY_BUILDERS)}"
            )

    @classmethod
    def make(cls, builder: str, **params: Any) -> "PolicySpec":
        return cls(builder=builder, params=_normalize_params(params))

    def build(self, platform: Platform) -> Policy:
        """Materialize the policy against ``platform``."""
        kwargs = {key: value for key, value in self.params}
        return POLICY_BUILDERS[self.builder](platform, **kwargs)

    @property
    def label(self) -> str:
        return self.builder

    def to_dict(self) -> Dict[str, Any]:
        return {"builder": self.builder, "params": _params_to_jsonable(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PolicySpec":
        return cls.make(data["builder"], **data["params"])


# ---------------------------------------------------------------------------
# Platform and engine specifications
# ---------------------------------------------------------------------------

#: The platform dimension of a job IS the full hardware description: jobs hash
#: (and cache, and parallelize) over every field of the
#: :class:`~repro.hw.spec.HardwareSpec`, so arbitrary hardware variants behave
#: like any other job dimension.  The historical three-knob constructor
#: (``PlatformSpec(tdp=..., dram="lpddr3", platform_fixed_power=...)``) still
#: works: the remaining fields default to the Skylake description those knobs
#: used to imply, and ``from_dict`` accepts the legacy compact payload.
PlatformSpec = HardwareSpec


#: Process-local platform memo.  Within one worker, jobs sharing a platform
#: spec reuse the same platform object -- safe because jobs run serially inside
#: a worker and ``SimulationEngine.run`` restores boot MRC state on entry.
#: LRU-bounded to :data:`MEMO_MAX_ENTRIES`: a sweep over arbitrarily many
#: distinct platform specs (TDP grids, fuzzed campaigns) keeps only the most
#: recently used platforms alive instead of growing without limit.
_PLATFORM_MEMO: "OrderedDict[PlatformSpec, Platform]" = OrderedDict()


def platform_for(spec: PlatformSpec) -> Platform:
    """The memoized platform for ``spec`` in this process (LRU-bounded)."""
    platform = _PLATFORM_MEMO.get(spec)
    if platform is None:
        platform = spec.build()
        _PLATFORM_MEMO[spec] = platform
        while len(_PLATFORM_MEMO) > MEMO_MAX_ENTRIES:
            evicted_spec, evicted = _PLATFORM_MEMO.popitem(last=False)
            # Drop the evicted platform's calibration entries too: they are
            # keyed by platform identity and would otherwise pin its memory
            # (the identity guard makes stale entries harmless, not free).
            for key in [k for k in _SYSSCALE_MEMO if _SYSSCALE_MEMO[k][0] is evicted]:
                del _SYSSCALE_MEMO[key]
    else:
        _PLATFORM_MEMO.move_to_end(spec)
    return platform


def clear_memos() -> None:
    """Explicitly empty the worker-local platform/calibration memos."""
    _PLATFORM_MEMO.clear()
    _SYSSCALE_MEMO.clear()


@dataclass(frozen=True)
class SimSpec:
    """The :class:`SimulationConfig` fields, as a hashable value object.

    ``reference_loop`` selects the seed per-tick engine loop (the parity
    arbiter) instead of segment stepping.  Both loops are bit-identical, but
    the flag is still part of the content hash when set -- a reference-loop
    benchmark job must never be answered from a fast-loop cache entry, or the
    measured baseline would be a cache read.  It is omitted from the
    serialization when ``False`` so every pre-existing job hash (and cache
    entry) stays valid.
    """

    tick: float = config.COUNTER_SAMPLING_INTERVAL
    evaluation_interval: float = config.EVALUATION_INTERVAL
    max_simulated_time: float = 120.0
    record_bandwidth_samples: bool = False
    reference_loop: bool = False

    def to_config(self) -> SimulationConfig:
        return SimulationConfig(
            tick=self.tick,
            evaluation_interval=self.evaluation_interval,
            max_simulated_time=self.max_simulated_time,
            record_bandwidth_samples=self.record_bandwidth_samples,
            reference_loop=self.reference_loop,
        )

    @classmethod
    def from_config(cls, sim_config: SimulationConfig) -> "SimSpec":
        return cls(
            tick=sim_config.tick,
            evaluation_interval=sim_config.evaluation_interval,
            max_simulated_time=sim_config.max_simulated_time,
            record_bandwidth_samples=sim_config.record_bandwidth_samples,
            reference_loop=sim_config.reference_loop,
        )

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "tick": self.tick,
            "evaluation_interval": self.evaluation_interval,
            "max_simulated_time": self.max_simulated_time,
            "record_bandwidth_samples": self.record_bandwidth_samples,
        }
        if self.reference_loop:
            data["reference_loop"] = True
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimSpec":
        return cls(**data)


@dataclass(frozen=True)
class PointSpec:
    """An IO/memory operating point, by value (name-free, so hashes are pure)."""

    dram_frequency: float
    interconnect_frequency: float
    v_sa_scale: float = 1.0
    v_io_scale: float = 1.0
    mrc_optimized: bool = True

    @classmethod
    def from_point(cls, point: OperatingPoint) -> "PointSpec":
        return cls(
            dram_frequency=point.dram_frequency,
            interconnect_frequency=point.interconnect_frequency,
            v_sa_scale=point.v_sa_scale,
            v_io_scale=point.v_io_scale,
            mrc_optimized=point.mrc_optimized,
        )

    def to_point(self, name: Optional[str] = None) -> OperatingPoint:
        return OperatingPoint(
            name=name or f"{self.dram_frequency / config.GHZ:.2f}GHz",
            dram_frequency=self.dram_frequency,
            interconnect_frequency=self.interconnect_frequency,
            v_sa_scale=self.v_sa_scale,
            v_io_scale=self.v_io_scale,
            mrc_optimized=self.mrc_optimized,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dram_frequency": self.dram_frequency,
            "interconnect_frequency": self.interconnect_frequency,
            "v_sa_scale": self.v_sa_scale,
            "v_io_scale": self.v_io_scale,
            "mrc_optimized": self.mrc_optimized,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PointSpec":
        return cls(**data)


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimulationJob:
    """One ``SimulationEngine.run``: trace x policy x platform x engine config."""

    kind: ClassVar[str] = "simulate"

    trace: TraceSpec
    policy: PolicySpec
    platform: PlatformSpec = PlatformSpec()
    sim: SimSpec = SimSpec()
    peripherals: Optional[str] = None

    def __post_init__(self) -> None:
        if self.peripherals is not None and self.peripherals not in STANDARD_CONFIGURATIONS:
            raise KeyError(
                f"unknown peripheral configuration {self.peripherals!r}; "
                f"known: {sorted(STANDARD_CONFIGURATIONS)}"
            )

    @property
    def label(self) -> str:
        return f"{self.trace.label}/{self.policy.label}@{self.platform.label}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "trace": self.trace.to_dict(),
            "policy": self.policy.to_dict(),
            "platform": self.platform.to_dict(),
            "sim": self.sim.to_dict(),
            "peripherals": self.peripherals,
        }

    @property
    def content_hash(self) -> str:
        return _cached_job_hash(self)


@dataclass(frozen=True)
class DegradationJob:
    """One calibrator measurement: slowdown between two operating points.

    The unit of work of the Fig. 6 predictor evaluation and the Sec. 7.4
    sensitivity study: the fractional slowdown of ``trace`` at ``low`` vs.
    ``high``, plus the trace's duration-weighted counters at ``high``.
    """

    kind: ClassVar[str] = "degradation"

    trace: TraceSpec
    high: PointSpec
    low: PointSpec
    platform: PlatformSpec = PlatformSpec()

    @property
    def label(self) -> str:
        pair = (
            f"{self.high.dram_frequency / config.GHZ:.2f}"
            f"->{self.low.dram_frequency / config.GHZ:.2f}GHz"
        )
        return f"{self.trace.label}/{pair}@{self.platform.label}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "trace": self.trace.to_dict(),
            "high": self.high.to_dict(),
            "low": self.low.to_dict(),
            "platform": self.platform.to_dict(),
        }

    @property
    def content_hash(self) -> str:
        return _cached_job_hash(self)


Job = Union[SimulationJob, DegradationJob]

JOB_KINDS: Dict[str, type] = {
    SimulationJob.kind: SimulationJob,
    DegradationJob.kind: DegradationJob,
}


def job_from_dict(data: Dict[str, Any]) -> Job:
    """Rebuild a job serialized with ``to_dict`` (dispatches on ``kind``)."""
    kind = data.get("kind")
    if kind == SimulationJob.kind:
        return SimulationJob(
            trace=TraceSpec.from_dict(data["trace"]),
            policy=PolicySpec.from_dict(data["policy"]),
            platform=PlatformSpec.from_dict(data["platform"]),
            sim=SimSpec.from_dict(data["sim"]),
            peripherals=data.get("peripherals"),
        )
    if kind == DegradationJob.kind:
        return DegradationJob(
            trace=TraceSpec.from_dict(data["trace"]),
            high=PointSpec.from_dict(data["high"]),
            low=PointSpec.from_dict(data["low"]),
            platform=PlatformSpec.from_dict(data["platform"]),
        )
    raise KeyError(f"unknown job kind {kind!r}; known: {sorted(JOB_KINDS)}")


# ---------------------------------------------------------------------------
# Execution and result decoding
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DegradationMeasurement:
    """Decoded result of a :class:`DegradationJob`."""

    degradation: float
    counters: CounterSample

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "DegradationMeasurement":
        values = {CounterName(name): value for name, value in payload["counters"].items()}
        return cls(degradation=payload["degradation"], counters=CounterSample(values=values))


def execute_job_with_stats(
    job: Job,
) -> Tuple[Dict[str, Any], Optional[EngineRunStats]]:
    """Run one job and return ``(payload, engine_stats)``.

    This is the single execution path shared by :class:`SerialExecutor` and the
    worker processes of :class:`ParallelExecutor`, which is what makes their
    results bit-identical.

    The engine's per-run loop statistics (``last_run_stats``) travel *next to*
    the payload, never inside it: cached payloads stay byte-identical whether
    or not anyone was watching.  Degradation jobs run the calibrator rather
    than one engine pass, so their stats slot is ``None``.  When ambient
    telemetry is enabled, the run is wrapped in an ``execute_job`` span,
    engine counters accumulate into the active registry, and any recorded
    segment trace is emitted to the active sinks.
    """
    platform = platform_for(job.platform)
    if isinstance(job, SimulationJob):
        sim_config = job.sim.to_config()
        if obs_state.trace_enabled() and not sim_config.trace_segments:
            # Ambient tracing flips the engine's own flag (the engine never
            # consults obs state) -- the spec, and thus the job hash, is
            # untouched because tracing is not part of job identity.
            sim_config = replace(sim_config, trace_segments=True)
        engine = SimulationEngine(platform, sim_config)
        peripherals = (
            STANDARD_CONFIGURATIONS[job.peripherals] if job.peripherals else None
        )
        with _span("execute_job", kind=job.kind, job=job.label):
            result = engine.run(
                job.trace.build(), job.policy.build(platform), peripherals
            )
        stats = engine.last_run_stats
        if obs_state.enabled():
            if stats is not None:
                obs_state.counter("engine.runs").inc()
                obs_state.counter("engine.ticks").inc(stats.ticks)
                obs_state.counter("engine.segments").inc(stats.segments)
                obs_state.counter("engine.model_evaluations").inc(
                    stats.model_evaluations
                )
                obs_state.counter("engine.memo_hits").inc(stats.memo_hits)
                obs_state.counter("engine.transitions").inc(stats.transitions)
            trace = engine.last_run_trace
            if trace is not None:
                for event in trace.events(job_hash=job.content_hash):
                    obs_state.emit(event)
        return result.to_dict(), stats
    if isinstance(job, DegradationJob):
        high = job.high.to_point("high")
        low = job.low.to_point("low")
        calibrator = ThresholdCalibrator(
            platform=platform,
            operating_points=OperatingPointTable(points=[high, low]),
        )
        trace = job.trace.build()
        with _span("execute_job", kind=job.kind, job=job.label):
            counters = calibrator.measure_counters(trace)
            payload = {
                "degradation": calibrator.measure_degradation(trace, high, low),
                "counters": {name.value: counters[name] for name in CounterName},
            }
        return payload, None
    raise TypeError(f"cannot execute {type(job).__name__}")


def execute_job(job: Job) -> Dict[str, Any]:
    """Run one job in this process and return its JSON-serializable payload."""
    return execute_job_with_stats(job)[0]


def decode_result(job: Job, payload: Dict[str, Any]):
    """Turn a job's raw payload back into its natural result object."""
    if isinstance(job, SimulationJob):
        return SimulationResult.from_dict(payload)
    if isinstance(job, DegradationJob):
        return DegradationMeasurement.from_payload(payload)
    raise TypeError(f"cannot decode results of {type(job).__name__}")
