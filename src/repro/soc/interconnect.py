"""IO interconnect model with block-and-drain support.

The SysScale transition flow (Fig. 5, steps 3 and 9) requires the IO interconnect
to support *block and drain*: new requests are blocked, outstanding requests are
allowed to complete, and only then may the clocks be re-locked.  This module models
that protocol and the time it takes (bounded to < 1 us in Sec. 5), together with a
simple occupancy model used to estimate drain time from outstanding traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro import config


class InterconnectStateError(RuntimeError):
    """Raised when block/drain/release operations are invoked out of order."""


class InterconnectPhase(str, enum.Enum):
    """Lifecycle of the interconnect during a DVFS transition."""

    RUNNING = "running"
    BLOCKED = "blocked"
    DRAINED = "drained"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class BlockDrainInterconnect:
    """An IO interconnect whose traffic can be blocked and drained for DVFS.

    Parameters
    ----------
    frequency:
        Current interconnect clock (Hz).
    queue_depth:
        Maximum number of outstanding requests the request buffers can hold.
    service_cycles_per_request:
        Cycles needed to retire one outstanding request during a drain.
    """

    frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY
    queue_depth: int = 64
    service_cycles_per_request: int = 16
    phase: InterconnectPhase = InterconnectPhase.RUNNING
    outstanding_requests: int = 0
    _drain_log: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("interconnect frequency must be positive")
        if self.queue_depth <= 0 or self.service_cycles_per_request <= 0:
            raise ValueError("queue depth and service cycles must be positive")
        if not 0 <= self.outstanding_requests <= self.queue_depth:
            raise ValueError("outstanding requests must fit in the queue")

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------
    def submit(self, count: int = 1) -> None:
        """Enqueue ``count`` new requests; rejected while the interconnect is blocked."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.phase is not InterconnectPhase.RUNNING:
            raise InterconnectStateError(
                "new requests are not allowed to use the interconnect while it is "
                "blocked for a DVFS transition (Sec. 4.1)"
            )
        self.outstanding_requests = min(self.queue_depth, self.outstanding_requests + count)

    def retire(self, count: int = 1) -> None:
        """Retire up to ``count`` outstanding requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self.outstanding_requests = max(0, self.outstanding_requests - count)

    # ------------------------------------------------------------------
    # Block / drain / release protocol (Fig. 5 steps 3 and 9)
    # ------------------------------------------------------------------
    def block(self) -> None:
        """Stop admitting new requests.  Outstanding requests keep draining."""
        if self.phase is not InterconnectPhase.RUNNING:
            raise InterconnectStateError("interconnect is already blocked")
        self.phase = InterconnectPhase.BLOCKED

    def drain(self) -> float:
        """Complete all outstanding requests; returns the drain time in seconds.

        The drain time is ``outstanding * service_cycles / frequency``, capped at the
        1 us budget of Sec. 5 (a full 64-entry queue at 0.8 GHz drains well inside
        the budget, so the cap only guards against mis-parameterised models).
        """
        if self.phase is not InterconnectPhase.BLOCKED:
            raise InterconnectStateError("interconnect must be blocked before draining")
        cycles = self.outstanding_requests * self.service_cycles_per_request
        duration = cycles / self.frequency
        duration = min(duration, config.TRANSITION_DRAIN_LATENCY)
        self.outstanding_requests = 0
        self.phase = InterconnectPhase.DRAINED
        self._drain_log.append(duration)
        return duration

    def release(self, new_frequency: float | None = None) -> None:
        """Re-open the interconnect, optionally at a new clock frequency."""
        if self.phase is not InterconnectPhase.DRAINED:
            raise InterconnectStateError("interconnect must be drained before release")
        if new_frequency is not None:
            if new_frequency <= 0:
                raise ValueError("new frequency must be positive")
            self.frequency = new_frequency
        self.phase = InterconnectPhase.RUNNING

    def reset(self, frequency: float | None = None) -> None:
        """Return to the boot state: running, empty queue, high clock, no history."""
        if frequency is not None:
            if frequency <= 0:
                raise ValueError("frequency must be positive")
            self.frequency = frequency
        self.phase = InterconnectPhase.RUNNING
        self.outstanding_requests = 0
        self._drain_log.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_quiescent(self) -> bool:
        """True when no requests are outstanding."""
        return self.outstanding_requests == 0

    @property
    def drain_history(self) -> List[float]:
        """Drain durations (seconds) of every drain performed so far."""
        return list(self._drain_log)

    def estimated_drain_time(self) -> float:
        """Drain time that a block+drain would take right now, without doing it."""
        cycles = self.outstanding_requests * self.service_cycles_per_request
        return min(cycles / self.frequency, config.TRANSITION_DRAIN_LATENCY)
