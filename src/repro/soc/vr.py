"""Voltage regulators and the shared-rail structure of the SoC.

Fig. 1 of the paper highlights the voltage regulators (VRs) that couple the IO and
memory domains:

* ``V_SA`` feeds the IO engines/controllers, the IO interconnect, and the memory
  controller (the "system agent");
* ``V_IO`` feeds the digital part of the DRAM interface (DDRIO-digital) and the
  IO PHYs (display IO, ISP IO);
* ``VDDQ`` feeds the DRAM devices and DDRIO-analog and cannot be scaled on
  commercial DRAM (Sec. 2.4);
* the compute domain has its own rails for the cores+LLC and the graphics engines.

The regulator model tracks the rail voltage and exposes the transition-time
calculation the flow-latency model of Sec. 5 uses (slew rate of 50 mV/us).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro import config


class RailName(str, enum.Enum):
    """Canonical names of the SoC voltage rails (Fig. 1)."""

    V_SA = "V_SA"
    V_IO = "V_IO"
    VDDQ = "VDDQ"
    V_CORE = "V_CORE"
    V_GFX = "V_GFX"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class VoltageRegulatorError(ValueError):
    """Raised for invalid voltage-regulator operations."""


@dataclass
class VoltageRegulator:
    """A single voltage regulator with a nominal voltage and a slew-rate model.

    Parameters
    ----------
    rail:
        Which rail this regulator drives.
    nominal_voltage:
        The voltage at the high operating point (volts).
    min_voltage:
        The minimum functional voltage of the rail; requests below it raise.
    slew_rate:
        Voltage slew rate in volts/second (default 50 mV/us, Sec. 5).
    scalable:
        Whether DVFS may change this rail.  ``VDDQ`` is not scalable on
        commercially available DRAM (Sec. 2.4).
    """

    rail: RailName
    nominal_voltage: float
    min_voltage: float
    slew_rate: float = config.VR_SLEW_RATE
    scalable: bool = True
    current_voltage: float = field(init=False)

    def __post_init__(self) -> None:
        if self.nominal_voltage <= 0:
            raise VoltageRegulatorError("nominal voltage must be positive")
        if not 0 < self.min_voltage <= self.nominal_voltage:
            raise VoltageRegulatorError(
                "minimum voltage must be positive and not exceed the nominal voltage"
            )
        if self.slew_rate <= 0:
            raise VoltageRegulatorError("slew rate must be positive")
        self.current_voltage = self.nominal_voltage

    @property
    def scale(self) -> float:
        """Current voltage as a fraction of nominal (1.0 at the high point)."""
        return self.current_voltage / self.nominal_voltage

    def transition_time(self, target_voltage: float) -> float:
        """Seconds needed to slew from the current voltage to ``target_voltage``."""
        self._validate_target(target_voltage)
        return abs(target_voltage - self.current_voltage) / self.slew_rate

    def set_voltage(self, target_voltage: float) -> float:
        """Move the rail to ``target_voltage`` and return the slew time in seconds."""
        self._validate_target(target_voltage)
        duration = self.transition_time(target_voltage)
        self.current_voltage = target_voltage
        return duration

    def set_scale(self, scale: float) -> float:
        """Move the rail to ``scale`` x nominal voltage; returns the slew time."""
        return self.set_voltage(self.nominal_voltage * scale)

    def reset(self) -> None:
        """Return the rail to its nominal (high operating point) voltage."""
        self.current_voltage = self.nominal_voltage

    def _validate_target(self, target_voltage: float) -> None:
        if not self.scalable and abs(target_voltage - self.nominal_voltage) > 1e-12:
            raise VoltageRegulatorError(
                f"rail {self.rail} is not scalable (Sec. 2.4: VDDQ cannot be scaled "
                "on commercial DRAM devices)"
            )
        if target_voltage < self.min_voltage - 1e-12:
            raise VoltageRegulatorError(
                f"target voltage {target_voltage:.3f} V is below the minimum "
                f"functional voltage {self.min_voltage:.3f} V of rail {self.rail}"
            )
        if target_voltage > self.nominal_voltage * 1.2:
            raise VoltageRegulatorError(
                f"target voltage {target_voltage:.3f} V exceeds the safe range of "
                f"rail {self.rail}"
            )


@dataclass
class RailSet:
    """The collection of voltage regulators present on the SoC package."""

    regulators: Dict[RailName, VoltageRegulator] = field(default_factory=dict)

    def add(self, regulator: VoltageRegulator) -> None:
        """Register a regulator; a rail may only be registered once."""
        if regulator.rail in self.regulators:
            raise VoltageRegulatorError(f"rail {regulator.rail} already registered")
        self.regulators[regulator.rail] = regulator

    def __getitem__(self, rail: RailName) -> VoltageRegulator:
        return self.regulators[rail]

    def __contains__(self, rail: RailName) -> bool:
        return rail in self.regulators

    def rails(self) -> List[RailName]:
        """All registered rails."""
        return list(self.regulators)

    def voltage(self, rail: RailName) -> float:
        """Current voltage on ``rail``."""
        return self.regulators[rail].current_voltage

    def scale(self, rail: RailName) -> float:
        """Current voltage scale (fraction of nominal) on ``rail``."""
        return self.regulators[rail].scale

    def reset(self) -> None:
        """Return every rail to its nominal voltage."""
        for regulator in self.regulators.values():
            regulator.reset()

    def max_transition_time(self, targets: Dict[RailName, float]) -> float:
        """Slew time of the slowest rail when moving all ``targets`` in parallel.

        SysScale performs the voltage transitions of V_SA and V_IO simultaneously
        (Sec. 4: "performing DVFS simultaneously in all domains to overlap the DVFS
        latencies"), so the flow pays only the slowest rail's slew time.
        """
        if not targets:
            return 0.0
        return max(
            self.regulators[rail].transition_time(voltage)
            for rail, voltage in targets.items()
        )

    def apply(self, targets: Dict[RailName, float]) -> float:
        """Apply all target voltages in parallel; returns the overlapped slew time."""
        duration = self.max_transition_time(targets)
        for rail, voltage in targets.items():
            self.regulators[rail].set_voltage(voltage)
        return duration


def build_default_rails(
    v_sa_nominal: float = 0.55,
    v_io_nominal: float = 0.70,
    vddq_nominal: float = 1.2,
    v_core_nominal: float = 1.0,
    v_gfx_nominal: float = 1.0,
    v_sa_min_scale: float = config.V_SA_LOW_SCALE,
    v_io_min_scale: float = config.V_IO_LOW_SCALE,
) -> RailSet:
    """Construct the five-rail structure of Fig. 1 with typical mobile voltages.

    ``VDDQ`` is marked non-scalable per Sec. 2.4.  Minimum voltages reflect the
    observation (Sec. 7.4) that V_SA reaches its minimum functional voltage at the
    1.06 GHz DRAM operating point (i.e. at a 0.8x scale of nominal); hardware
    variants may override the scales through ``v_sa_min_scale``/``v_io_min_scale``.
    The nominal V_SA / V_IO levels are chosen so that a SysScale transition swings
    each rail by roughly 100 mV, the figure Sec. 5 uses for its 2 us slew-time
    budget.
    """
    rails = RailSet()
    rails.add(
        VoltageRegulator(
            rail=RailName.V_SA,
            nominal_voltage=v_sa_nominal,
            min_voltage=v_sa_nominal * v_sa_min_scale,
        )
    )
    rails.add(
        VoltageRegulator(
            rail=RailName.V_IO,
            nominal_voltage=v_io_nominal,
            min_voltage=v_io_nominal * v_io_min_scale,
        )
    )
    rails.add(
        VoltageRegulator(
            rail=RailName.VDDQ,
            nominal_voltage=vddq_nominal,
            min_voltage=vddq_nominal,
            scalable=False,
        )
    )
    rails.add(
        VoltageRegulator(
            rail=RailName.V_CORE,
            nominal_voltage=v_core_nominal,
            min_voltage=0.55,
        )
    )
    rails.add(
        VoltageRegulator(
            rail=RailName.V_GFX,
            nominal_voltage=v_gfx_nominal,
            min_voltage=0.55,
        )
    )
    return rails
