"""Voltage/frequency curves and P-state tables.

Every clocked component in the SoC has a voltage/frequency (V/F) curve: the minimum
functional voltage at which it can run at a given frequency.  The paper relies on
these curves in two places:

* the MD-DVFS setup of Sec. 3 reduces V_SA and V_IO "proportionally to the minimum
  functional voltage corresponding to the new frequencies";
* the compute-domain power-budget manager (Sec. 4.4) picks the highest P-state that
  fits the allocated power budget, where each P-state pairs a frequency with the
  voltage the curve dictates.

The curve is modelled as a piecewise-linear interpolation over (frequency, voltage)
points with a flat floor at the minimum functional voltage ``vmin``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


class VFCurveError(ValueError):
    """Raised when a V/F curve is constructed from invalid points."""


@dataclass(frozen=True)
class VFCurve:
    """Piecewise-linear minimum-voltage curve for a clocked component.

    Parameters
    ----------
    points:
        Sequence of ``(frequency_hz, voltage_v)`` pairs sorted by frequency.
        The lowest-frequency point defines the minimum functional voltage
        (``vmin``); the highest-frequency point defines ``fmax``.
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise VFCurveError("a V/F curve needs at least two points")
        freqs = [f for f, _ in self.points]
        volts = [v for _, v in self.points]
        if any(f <= 0 for f in freqs):
            raise VFCurveError("frequencies must be positive")
        if any(v <= 0 for v in volts):
            raise VFCurveError("voltages must be positive")
        if sorted(freqs) != freqs or len(set(freqs)) != len(freqs):
            raise VFCurveError("points must be sorted by strictly increasing frequency")
        if sorted(volts) != volts:
            raise VFCurveError("voltage must be non-decreasing with frequency")

    @classmethod
    def from_points(cls, points: Iterable[Tuple[float, float]]) -> "VFCurve":
        """Build a curve from any iterable of ``(frequency, voltage)`` pairs."""
        ordered = tuple(sorted((float(f), float(v)) for f, v in points))
        return cls(points=ordered)

    @property
    def fmin(self) -> float:
        """Lowest frequency on the curve (Hz)."""
        return self.points[0][0]

    @property
    def fmax(self) -> float:
        """Highest frequency on the curve (Hz)."""
        return self.points[-1][0]

    @property
    def vmin(self) -> float:
        """Minimum functional voltage (volts)."""
        return self.points[0][1]

    @property
    def vmax(self) -> float:
        """Voltage required at the highest frequency (volts)."""
        return self.points[-1][1]

    def voltage_at(self, frequency: float) -> float:
        """Return the minimum functional voltage for ``frequency``.

        Frequencies below ``fmin`` return ``vmin`` (the voltage floor); frequencies
        above ``fmax`` raise, because the component cannot be clocked there.
        """
        if frequency <= 0:
            raise VFCurveError(f"frequency must be positive, got {frequency}")
        if frequency > self.fmax * (1 + 1e-9):
            raise VFCurveError(
                f"frequency {frequency:.3e} Hz exceeds curve maximum {self.fmax:.3e} Hz"
            )
        if frequency <= self.fmin:
            return self.vmin
        for (f_lo, v_lo), (f_hi, v_hi) in zip(self.points, self.points[1:]):
            if f_lo <= frequency <= f_hi:
                if f_hi == f_lo:
                    return v_hi
                frac = (frequency - f_lo) / (f_hi - f_lo)
                return v_lo + frac * (v_hi - v_lo)
        return self.vmax

    def max_frequency_at(self, voltage: float) -> float:
        """Return the highest frequency supported at ``voltage``.

        This is the inverse lookup used when a shared rail is dropped to a lower
        voltage and each component on the rail must be re-clocked to a frequency
        its curve allows at that voltage.
        """
        if voltage < self.vmin:
            raise VFCurveError(
                f"voltage {voltage:.3f} V is below the minimum functional voltage "
                f"{self.vmin:.3f} V"
            )
        if voltage >= self.vmax:
            return self.fmax
        for (f_lo, v_lo), (f_hi, v_hi) in zip(self.points, self.points[1:]):
            if v_lo <= voltage <= v_hi:
                if v_hi == v_lo:
                    return f_hi
                frac = (voltage - v_lo) / (v_hi - v_lo)
                return f_lo + frac * (f_hi - f_lo)
        return self.fmax

    def scaled(self, frequency_scale: float, voltage_scale: float) -> "VFCurve":
        """Return a copy of the curve with frequency and voltage axes scaled."""
        if frequency_scale <= 0 or voltage_scale <= 0:
            raise VFCurveError("scale factors must be positive")
        return VFCurve.from_points(
            (f * frequency_scale, v * voltage_scale) for f, v in self.points
        )


@dataclass(frozen=True)
class PState:
    """A single DVFS operating point of a compute-domain component (Sec. 4.4).

    ``name`` follows the conventional labelling where ``P0`` is the highest
    performance state and ``Pn`` is the most energy-efficient state (maximum
    frequency at the minimum functional voltage).
    """

    name: str
    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError("P-state frequency must be positive")
        if self.voltage <= 0:
            raise ValueError("P-state voltage must be positive")


@dataclass
class PStateTable:
    """An ordered table of P-states for a CPU-core cluster or graphics engine.

    States are kept sorted by ascending frequency.  The table exposes the lookups
    the power-budget manager needs: the state nearest a requested frequency, the
    most efficient state (``pn``), and the next state up or down.
    """

    states: List[PState] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.states:
            raise ValueError("a P-state table cannot be empty")
        self.states = sorted(self.states, key=lambda s: s.frequency)
        freqs = [s.frequency for s in self.states]
        if len(set(freqs)) != len(freqs):
            raise ValueError("P-state frequencies must be unique")

    @classmethod
    def from_curve(
        cls, curve: VFCurve, frequencies: Sequence[float], prefix: str = "P"
    ) -> "PStateTable":
        """Build a table by sampling a V/F curve at the given frequencies.

        States are named ``P0`` (highest frequency) down to ``P<n>`` (lowest),
        matching the convention of Sec. 4.4.
        """
        ordered = sorted(float(f) for f in frequencies)
        if not ordered:
            raise ValueError("at least one frequency is required")
        states = []
        total = len(ordered)
        for index, frequency in enumerate(ordered):
            name = f"{prefix}{total - 1 - index}"
            states.append(
                PState(name=name, frequency=frequency, voltage=curve.voltage_at(frequency))
            )
        return cls(states=states)

    def __len__(self) -> int:
        return len(self.states)

    def __iter__(self):
        return iter(self.states)

    @property
    def min_state(self) -> PState:
        """The lowest-frequency state."""
        return self.states[0]

    @property
    def max_state(self) -> PState:
        """The highest-frequency state."""
        return self.states[-1]

    @property
    def pn(self) -> PState:
        """The most energy-efficient state: max frequency at the minimum voltage.

        The paper (Sec. 7.2) notes that during graphics and battery-life workloads
        the CPU cores run at ``Pn``.
        """
        vmin = self.states[0].voltage
        candidates = [s for s in self.states if abs(s.voltage - vmin) < 1e-9]
        return candidates[-1] if candidates else self.states[0]

    def by_name(self, name: str) -> PState:
        """Look a state up by name; raises ``KeyError`` if absent."""
        for state in self.states:
            if state.name == name:
                return state
        raise KeyError(f"no P-state named {name!r}")

    def nearest(self, frequency: float) -> PState:
        """Return the state whose frequency is closest to ``frequency``."""
        return min(self.states, key=lambda s: abs(s.frequency - frequency))

    def floor(self, frequency: float) -> PState:
        """Return the highest state with frequency <= ``frequency`` (or the minimum)."""
        eligible = [s for s in self.states if s.frequency <= frequency * (1 + 1e-12)]
        return eligible[-1] if eligible else self.states[0]

    def ceiling(self, frequency: float) -> PState:
        """Return the lowest state with frequency >= ``frequency`` (or the maximum)."""
        eligible = [s for s in self.states if s.frequency >= frequency * (1 - 1e-12)]
        return eligible[0] if eligible else self.states[-1]

    def step_down(self, state: PState) -> PState:
        """Return the next lower-frequency state (or ``state`` if already lowest)."""
        index = self.states.index(state)
        return self.states[max(0, index - 1)]

    def step_up(self, state: PState) -> PState:
        """Return the next higher-frequency state (or ``state`` if already highest)."""
        index = self.states.index(state)
        return self.states[min(len(self.states) - 1, index + 1)]

    def frequencies(self) -> List[float]:
        """All frequencies in ascending order."""
        return [s.frequency for s in self.states]
