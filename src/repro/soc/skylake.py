"""Skylake M-6Y75 SoC description (Table 2).

``SkylakeSoC`` is the structural description of the evaluation platform: the three
domains and their components, the voltage-rail structure of Fig. 1, the attached
DRAM device, and the compute-domain P-state tables.  Power and performance models
are layered on top of this description by :mod:`repro.sim.platform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import config
from repro.memory.dram import DramDevice, lpddr3_device
# Submodule import (not the package __init__) to keep the soc <-> power import
# graph acyclic.
from repro.power.pstates import (
    build_cpu_pstates,
    build_cpu_vf_curve,
    build_gfx_pstates,
    build_gfx_vf_curve,
)
from repro.soc.components import (
    CpuCluster,
    DdrioInterface,
    DisplayEngine,
    GraphicsEngine,
    IoInterconnect,
    IspEngine,
    MemoryControllerComponent,
    Uncore,
)
from repro.soc.domains import Domain, DomainKind, SoCState
from repro.soc.interconnect import BlockDrainInterconnect
from repro.soc.vf_curves import PStateTable, VFCurve
from repro.soc.vr import RailName, RailSet, build_default_rails


@dataclass
class SkylakeSoC:
    """A Skylake-class mobile SoC: domains, components, rails, DRAM, P-states.

    Parameters mirror Table 2 of the paper; ``tdp`` is configurable across the
    3.5 W - 7 W cTDP range of the M-6Y75 (and beyond, for the Fig. 10 sweep).
    """

    name: str = "Intel Core M-6Y75 (Skylake)"
    tdp: float = config.SKYLAKE_DEFAULT_TDP
    cpu: CpuCluster = field(default_factory=lambda: _default_cpu())
    gfx: GraphicsEngine = field(default_factory=lambda: _default_gfx())
    uncore: Uncore = field(default_factory=lambda: _default_uncore())
    display: DisplayEngine = field(default_factory=lambda: _default_display())
    isp: IspEngine = field(default_factory=lambda: _default_isp())
    io_interconnect: IoInterconnect = field(default_factory=lambda: _default_interconnect())
    memory_controller: MemoryControllerComponent = field(default_factory=lambda: _default_mc())
    ddrio: DdrioInterface = field(default_factory=lambda: _default_ddrio())
    dram: DramDevice = field(default_factory=lpddr3_device)
    rails: RailSet = field(default_factory=build_default_rails)
    cpu_curve: VFCurve = field(default_factory=build_cpu_vf_curve)
    gfx_curve: VFCurve = field(default_factory=build_gfx_vf_curve)
    cpu_pstates: PStateTable = field(default_factory=build_cpu_pstates)
    gfx_pstates: PStateTable = field(default_factory=build_gfx_pstates)
    interconnect_fabric: BlockDrainInterconnect = field(
        default_factory=BlockDrainInterconnect
    )
    process_node_nm: int = 14

    def __post_init__(self) -> None:
        if self.tdp <= 0:
            raise ValueError("TDP must be positive")
        self._domains = self._build_domains()

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def _build_domains(self) -> Dict[DomainKind, Domain]:
        compute = Domain(kind=DomainKind.COMPUTE)
        compute.add(self.cpu)
        compute.add(self.gfx)
        compute.add(self.uncore)

        io = Domain(kind=DomainKind.IO)
        io.add(self.display)
        io.add(self.isp)
        io.add(self.io_interconnect)

        memory = Domain(kind=DomainKind.MEMORY)
        memory.add(self.memory_controller)
        memory.add(self.ddrio)
        return {DomainKind.COMPUTE: compute, DomainKind.IO: io, DomainKind.MEMORY: memory}

    def domain(self, kind: DomainKind) -> Domain:
        """The :class:`Domain` of the given kind."""
        return self._domains[kind]

    @property
    def domains(self) -> Dict[DomainKind, Domain]:
        """All three domains keyed by kind."""
        return dict(self._domains)

    # ------------------------------------------------------------------
    # Default state and derived properties
    # ------------------------------------------------------------------
    def default_state(self, tdp: Optional[float] = None) -> SoCState:
        """The high-operating-point state the SoC boots into.

        DRAM runs at its default (highest) bin, the interconnect at its high clock,
        both shared rails at nominal voltage, and the compute domain at its base
        frequencies (the PBM raises them as budget allows).
        """
        del tdp  # the state itself is TDP-independent; the PBM applies the TDP
        return SoCState(
            cpu_frequency=self.cpu.base_frequency,
            gfx_frequency=self.gfx.base_frequency,
            dram_frequency=self.dram.max_frequency,
            interconnect_frequency=self.io_interconnect.high_frequency,
            v_sa_scale=1.0,
            v_io_scale=1.0,
            v_core=self.cpu_curve.voltage_at(self.cpu.base_frequency),
            v_gfx=self.gfx_curve.voltage_at(self.gfx.base_frequency),
            mrc_optimized=True,
            dram_in_self_refresh=False,
            active_cores=self.cpu.core_count,
        )

    @property
    def peak_memory_bandwidth(self) -> float:
        """Peak theoretical memory bandwidth at the default DRAM bin (bytes/s)."""
        return self.dram.peak_bandwidth(self.dram.max_frequency)

    def with_tdp(self, tdp: float) -> "SkylakeSoC":
        """A copy of this SoC description at a different configurable TDP."""
        if tdp <= 0:
            raise ValueError("TDP must be positive")
        clone = build_skylake_soc(tdp=tdp, dram=self.dram)
        return clone

    def describe(self) -> dict:
        """Flat summary corresponding to Table 2."""
        return {
            "name": self.name,
            "tdp_w": self.tdp,
            "cpu_cores": self.cpu.core_count,
            "cpu_threads": self.cpu.core_count * self.cpu.threads_per_core,
            "cpu_base_frequency_ghz": self.cpu.base_frequency / config.GHZ,
            "gfx_base_frequency_mhz": self.gfx.base_frequency / config.MHZ,
            "llc_mib": self.uncore.llc_bytes / (1024 * 1024),
            "process_node_nm": self.process_node_nm,
            "dram": self.dram.describe(),
        }


# ----------------------------------------------------------------------
# Component factories (calibration constants from repro.config)
# ----------------------------------------------------------------------

def _default_cpu() -> CpuCluster:
    return CpuCluster(
        name="cpu_cluster",
        rail=RailName.V_CORE,
        ceff=config.CPU_CORE_CEFF,
        leakage_coeff=config.CPU_CORE_LEAKAGE_COEFF,
        core_count=config.SKYLAKE_CORE_COUNT,
        threads_per_core=config.SKYLAKE_THREADS_PER_CORE,
        base_frequency=config.SKYLAKE_CPU_BASE_FREQUENCY,
    )


def _default_gfx() -> GraphicsEngine:
    return GraphicsEngine(
        name="graphics_engine",
        rail=RailName.V_GFX,
        ceff=config.GFX_CEFF,
        leakage_coeff=config.GFX_LEAKAGE_COEFF,
        base_frequency=config.SKYLAKE_GFX_BASE_FREQUENCY,
    )


def _default_uncore() -> Uncore:
    return Uncore(
        name="uncore",
        rail=RailName.V_CORE,
        ceff=config.UNCORE_CEFF,
        leakage_coeff=config.UNCORE_LEAKAGE_COEFF,
        llc_bytes=config.SKYLAKE_LLC_BYTES,
    )


def _default_display() -> DisplayEngine:
    return DisplayEngine(name="display_engine", rail=RailName.V_SA)


def _default_isp() -> IspEngine:
    return IspEngine(name="isp_engine", rail=RailName.V_SA)


def _default_interconnect() -> IoInterconnect:
    return IoInterconnect(name="io_interconnect", rail=RailName.V_SA)


def _default_mc() -> MemoryControllerComponent:
    return MemoryControllerComponent(name="memory_controller", rail=RailName.V_SA)


def _default_ddrio() -> DdrioInterface:
    return DdrioInterface(name="ddrio", rail=RailName.V_IO)


def build_skylake_soc(
    tdp: float = config.SKYLAKE_DEFAULT_TDP,
    dram: Optional[DramDevice] = None,
) -> SkylakeSoC:
    """Construct the Skylake M-6Y75 evaluation platform of Table 2.

    Spec-driven: the knobs derive the registered ``skylake``
    :class:`~repro.hw.spec.HardwareSpec` and the SoC is materialized from the
    description, so this builder and ``repro.hw`` can never drift apart.  (The
    raw ``SkylakeSoC()`` dataclass defaults remain the independent ground
    truth the regression tests compare the spec path against.)

    Parameters
    ----------
    tdp:
        Configurable thermal design power (4.5 W default, 3.5-7 W cTDP range,
        up to 91 W for the Fig. 10 discussion of desktop parts).
    dram:
        DRAM device to attach (defaults to dual-channel LPDDR3-1600, 8 GB).
    """
    # Deferred import: repro.hw.build imports this module for SkylakeSoC.
    from repro.hw.build import soc_from_spec
    from repro.hw.registry import SKYLAKE

    spec = SKYLAKE.derive(tdp=tdp)
    if dram is not None:
        spec = spec.derive(dram=dram)
    return soc_from_spec(spec)
