"""SoC components and their power-relevant parameters.

Each component corresponds to a block in Fig. 1 of the paper.  Components carry the
parameters the power and performance models need (effective capacitance, leakage
coefficient, rail assignment, clock), but contain no policy: policies live in
``repro.core`` and ``repro.baselines``, power equations in ``repro.power`` and
``repro.memory.power``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.soc.vf_curves import VFCurve, PStateTable
from repro.soc.vr import RailName


@dataclass
class Component:
    """Base class for every clocked block on the SoC.

    Parameters
    ----------
    name:
        Human-readable block name (e.g. ``"cpu_cluster"``).
    rail:
        The voltage rail feeding the block (Fig. 1).
    ceff:
        Effective switching capacitance in farads, used for dynamic power
        ``P = ceff * V^2 * f * activity``.
    leakage_coeff:
        Leakage coefficient ``k`` in ``P_leak = k * V^2`` (watts at 1 V).
    vf_curve:
        Minimum-voltage curve of the block, if it is independently clocked.
    """

    name: str
    rail: RailName
    ceff: float = 0.0
    leakage_coeff: float = 0.0
    vf_curve: Optional[VFCurve] = None

    def __post_init__(self) -> None:
        if self.ceff < 0 or self.leakage_coeff < 0:
            raise ValueError("power coefficients must be non-negative")

    def dynamic_power(self, voltage: float, frequency: float, activity: float = 1.0) -> float:
        """Dynamic (switching) power in watts: ``ceff * V^2 * f * activity``."""
        if voltage < 0 or frequency < 0:
            raise ValueError("voltage and frequency must be non-negative")
        activity = min(max(activity, 0.0), 1.0)
        return self.ceff * voltage * voltage * frequency * activity

    def leakage_power(self, voltage: float) -> float:
        """Static (leakage) power in watts: ``k * V^2``."""
        if voltage < 0:
            raise ValueError("voltage must be non-negative")
        return self.leakage_coeff * voltage * voltage

    def total_power(self, voltage: float, frequency: float, activity: float = 1.0) -> float:
        """Dynamic plus leakage power in watts."""
        return self.dynamic_power(voltage, frequency, activity) + self.leakage_power(voltage)


@dataclass
class CpuCluster(Component):
    """The CPU cores of the compute domain (2 cores / 4 threads on the M-6Y75)."""

    core_count: int = config.SKYLAKE_CORE_COUNT
    threads_per_core: int = config.SKYLAKE_THREADS_PER_CORE
    base_frequency: float = config.SKYLAKE_CPU_BASE_FREQUENCY
    pstates: Optional[PStateTable] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.core_count <= 0 or self.threads_per_core <= 0:
            raise ValueError("core and thread counts must be positive")

    def cluster_power(
        self,
        voltage: float,
        frequency: float,
        active_cores: Optional[int] = None,
        activity: float = 1.0,
    ) -> float:
        """Power of the cluster with ``active_cores`` cores running at ``frequency``.

        Idle cores contribute only leakage (they are clock-gated).  ``ceff`` and
        ``leakage_coeff`` are per-core values.
        """
        if active_cores is None:
            active_cores = self.core_count
        active_cores = min(max(active_cores, 0), self.core_count)
        dynamic = active_cores * self.dynamic_power(voltage, frequency, activity)
        leakage = self.core_count * self.leakage_power(voltage)
        return dynamic + leakage


@dataclass
class GraphicsEngine(Component):
    """The integrated graphics engine slice of the compute domain."""

    base_frequency: float = config.SKYLAKE_GFX_BASE_FREQUENCY
    pstates: Optional[PStateTable] = None


@dataclass
class Uncore(Component):
    """The LLC and ring/mesh fabric shared by cores and graphics."""

    llc_bytes: int = config.SKYLAKE_LLC_BYTES

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.llc_bytes <= 0:
            raise ValueError("LLC capacity must be positive")


@dataclass
class DisplayEngine(Component):
    """The display controller of the IO domain.

    Its memory-bandwidth demand is *static*: it depends only on the number of
    attached panels and their resolution / refresh rate (Sec. 4.2), which the
    demand-prediction mechanism reads from configuration registers.
    """

    max_panels: int = 3


@dataclass
class IspEngine(Component):
    """The image-signal-processing (camera) engine of the IO domain."""

    max_cameras: int = 2


@dataclass
class IoInterconnect(Component):
    """The IO interconnect shared by the IO controllers (Fig. 1).

    The interconnect frequency is scaled together with the memory subsystem
    because it shares the V_SA rail with the memory controller (Sec. 3).
    """

    high_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY
    low_frequency: float = config.IO_INTERCONNECT_LOW_FREQUENCY


@dataclass
class MemoryControllerComponent(Component):
    """The memory controller, housed in the system agent (V_SA rail)."""

    mc_to_ddr_ratio: float = config.MC_TO_DDR_FREQUENCY_RATIO

    def frequency_for_ddr(self, ddr_frequency: float) -> float:
        """Memory-controller clock for a given DDR frequency (MC runs at DDR/2)."""
        if ddr_frequency <= 0:
            raise ValueError("DDR frequency must be positive")
        return ddr_frequency * self.mc_to_ddr_ratio


@dataclass
class DdrioInterface(Component):
    """The DRAM interface (DDRIO).

    The digital part sits on the V_IO rail and is scaled by SysScale together with
    the memory subsystem; the analog part shares VDDQ with the DRAM devices and is
    not voltage-scaled (Sec. 2.4).
    """

    analog_rail: RailName = RailName.VDDQ
