"""SoC substrate: domains, components, voltage regulators, and V/F curves.

This package models the structure of a Skylake-class mobile SoC as described in
Sec. 2.1 and Fig. 1 of the paper: a compute domain (CPU cores, graphics engines),
an IO domain (display controller, ISP engine, IO interconnect), and a memory
domain (memory controller, DDRIO, DRAM), together with the voltage rails that
couple them (V_SA, V_IO, VDDQ and the compute rails).
"""

from repro.soc.vf_curves import VFCurve, PState, PStateTable
from repro.soc.vr import VoltageRegulator, RailName
from repro.soc.components import (
    Component,
    CpuCluster,
    GraphicsEngine,
    Uncore,
    DisplayEngine,
    IspEngine,
    IoInterconnect,
    MemoryControllerComponent,
    DdrioInterface,
)
from repro.soc.domains import Domain, DomainKind, SoCState
from repro.soc.skylake import SkylakeSoC, build_skylake_soc
from repro.soc.broadwell import BroadwellSoC, build_broadwell_soc

__all__ = [
    "VFCurve",
    "PState",
    "PStateTable",
    "VoltageRegulator",
    "RailName",
    "Component",
    "CpuCluster",
    "GraphicsEngine",
    "Uncore",
    "DisplayEngine",
    "IspEngine",
    "IoInterconnect",
    "MemoryControllerComponent",
    "DdrioInterface",
    "Domain",
    "DomainKind",
    "SoCState",
    "SkylakeSoC",
    "build_skylake_soc",
    "BroadwellSoC",
    "build_broadwell_soc",
]
