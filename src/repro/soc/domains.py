"""SoC domains and the dynamic frequency/voltage state of the chip.

The paper partitions the SoC into three domains (Sec. 1, Fig. 1): compute, IO, and
memory.  ``Domain`` groups the components belonging to each; ``SoCState`` captures
the complete dynamic configuration of the chip at a point in time -- every clock and
every rail scale -- which is what the power and performance models consume.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro import config
from repro.soc.components import Component


class DomainKind(str, enum.Enum):
    """The three SoC domains of Fig. 1."""

    COMPUTE = "compute"
    IO = "io"
    MEMORY = "memory"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Domain:
    """A named group of components belonging to one SoC domain."""

    kind: DomainKind
    components: List[Component] = field(default_factory=list)

    def add(self, component: Component) -> None:
        """Attach a component to the domain."""
        if any(existing.name == component.name for existing in self.components):
            raise ValueError(f"component {component.name!r} already in domain {self.kind}")
        self.components.append(component)

    def component(self, name: str) -> Component:
        """Look a component up by name; raises ``KeyError`` if absent."""
        for candidate in self.components:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no component named {name!r} in domain {self.kind}")

    def names(self) -> List[str]:
        """Names of all components in the domain."""
        return [component.name for component in self.components]

    def __len__(self) -> int:
        return len(self.components)


@dataclass(frozen=True)
class SoCState:
    """The complete frequency/voltage configuration of the SoC at an instant.

    A state is immutable; policies derive new states with :meth:`with_updates`.
    Frequencies are in Hz, voltages are expressed as *scales* relative to the
    nominal rail voltage (1.0 at the high operating point), matching how the paper
    describes the MD-DVFS setup (Table 1: ``0.8 * V_SA``, ``0.85 * V_IO``).
    """

    cpu_frequency: float = config.SKYLAKE_CPU_BASE_FREQUENCY
    gfx_frequency: float = config.SKYLAKE_GFX_BASE_FREQUENCY
    dram_frequency: float = config.LPDDR3_FREQUENCY_BINS[0]
    interconnect_frequency: float = config.IO_INTERCONNECT_HIGH_FREQUENCY
    v_sa_scale: float = 1.0
    v_io_scale: float = 1.0
    v_core: float = 0.70
    v_gfx: float = 0.65
    mrc_optimized: bool = True
    dram_in_self_refresh: bool = False
    active_cores: int = config.SKYLAKE_CORE_COUNT

    def __post_init__(self) -> None:
        for name in ("cpu_frequency", "gfx_frequency", "dram_frequency", "interconnect_frequency"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("v_sa_scale", "v_io_scale", "v_core", "v_gfx"):
            if not 0 < getattr(self, name) <= 1.5:
                raise ValueError(f"{name} must be in (0, 1.5]")
        if not 0 <= self.active_cores <= 64:
            raise ValueError("active_cores out of range")

    @property
    def mc_frequency(self) -> float:
        """Memory controller clock: half the DDR frequency (Sec. 3)."""
        return self.dram_frequency * config.MC_TO_DDR_FREQUENCY_RATIO

    @property
    def ddrio_frequency(self) -> float:
        """DDRIO clock: locked to the DDR frequency."""
        return self.dram_frequency

    def with_updates(self, **changes) -> "SoCState":
        """Return a copy of the state with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> Dict[str, float]:
        """A flat dictionary view useful for logging and result tables."""
        return {
            "cpu_frequency_ghz": self.cpu_frequency / config.GHZ,
            "gfx_frequency_mhz": self.gfx_frequency / config.MHZ,
            "dram_frequency_ghz": self.dram_frequency / config.GHZ,
            "mc_frequency_ghz": self.mc_frequency / config.GHZ,
            "interconnect_frequency_ghz": self.interconnect_frequency / config.GHZ,
            "v_sa_scale": self.v_sa_scale,
            "v_io_scale": self.v_io_scale,
            "v_core": self.v_core,
            "v_gfx": self.v_gfx,
            "mrc_optimized": float(self.mrc_optimized),
            "dram_in_self_refresh": float(self.dram_in_self_refresh),
            "active_cores": float(self.active_cores),
        }
