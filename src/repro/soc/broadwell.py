"""Broadwell M-5Y71 SoC description (the motivation platform of Sec. 3).

The paper collects its motivational data (Fig. 2-4, Table 1) on the previous-
generation Broadwell part, on which a crude static version of SysScale's behaviour
-- the MD-DVFS setup of Table 1 -- is emulated through BIOS settings and the ITP
debugger.  The Broadwell description is structurally identical to Skylake at the
level of detail of this model; it differs in name, process characterisation, and
slightly higher uncore power (being one process generation older).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import config
from repro.memory.dram import DramDevice, lpddr3_device
from repro.soc.skylake import SkylakeSoC, build_skylake_soc


@dataclass
class BroadwellSoC(SkylakeSoC):
    """The Intel Core M-5Y71 (Broadwell) motivation platform."""

    name: str = "Intel Core M-5Y71 (Broadwell)"
    process_node_nm: int = 14


def build_broadwell_soc(
    tdp: float = config.SKYLAKE_DEFAULT_TDP,
    dram: Optional[DramDevice] = None,
) -> BroadwellSoC:
    """Construct the Broadwell M-5Y71 platform used for the Sec. 3 motivation data.

    The returned object carries a ~8 % higher uncore leakage coefficient than the
    Skylake description, reflecting the less mature 14 nm process of the earlier
    part; everything else matches Table 2 (both parts use LPDDR3-1600 and the same
    TDP class).
    """
    base = build_skylake_soc(tdp=tdp, dram=dram if dram is not None else lpddr3_device())
    soc = BroadwellSoC(tdp=base.tdp)
    soc.dram = base.dram
    soc.uncore.leakage_coeff = base.uncore.leakage_coeff * 1.08
    return soc
