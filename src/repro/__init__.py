"""SysScale reproduction: multi-domain DVFS for energy-efficient mobile SoCs.

This package is a trace-driven reproduction of *SysScale: Exploiting Multi-domain
Dynamic Voltage and Frequency Scaling for Energy Efficient Mobile Processors*
(Haj-Yahya et al., ISCA 2020).  It models a Skylake-class mobile SoC (compute, IO,
and memory domains, shared voltage rails, LPDDR3 memory subsystem, TDP-constrained
power-budget management), implements SysScale's three components (demand
prediction, holistic power-management algorithm, multi-domain DVFS flow) plus the
MemScale/CoScale comparison points, and regenerates every table and figure of the
paper's evaluation from the model.

Quick start::

    from repro import build_platform, SimulationEngine, SysScaleController
    from repro.baselines import FixedBaselinePolicy
    from repro.workloads import spec_workload

    platform = build_platform(tdp=4.5)
    engine = SimulationEngine(platform)
    trace = spec_workload("416.gamess")
    baseline = engine.run(trace, FixedBaselinePolicy())
    sysscale = engine.run(trace, SysScaleController(platform=platform))
    print(sysscale.performance_improvement_over(baseline))
"""

from repro.sim.platform import Platform, build_platform
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.result import SimulationResult
from repro.core.sysscale import SysScaleController, default_thresholds
from repro.core.operating_points import OperatingPoint, build_default_operating_points

__version__ = "1.4.0"

__all__ = [
    "Platform",
    "build_platform",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationResult",
    "SysScaleController",
    "default_thresholds",
    "OperatingPoint",
    "build_default_operating_points",
    "__version__",
]
