"""Fig. 2: motivation study -- static MD-DVFS on the three SPEC workloads.

(a) impact of the static MD-DVFS setup on average power, energy, performance and
    EDP, plus the effect of handing the saved power back to the CPU (the 1.2 ->
    1.3 GHz experiment);
(b) bottleneck decomposition of the three workloads;
(c) their memory-bandwidth demand.
"""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.experiments.runner import ExperimentContext, build_context
from repro.perf.bottleneck import analyze_bottlenecks
from repro.workloads.spec2006 import MOTIVATION_BENCHMARKS, spec_workload


def run_fig2_motivation(context: ExperimentContext | None = None) -> Dict[str, object]:
    """Reproduce Fig. 2(a)-(c) on the simulated Broadwell-class platform."""
    if context is None:
        context = build_context()
    engine = context.engine

    impact_rows: List[Dict[str, object]] = []
    bottleneck_rows: List[Dict[str, object]] = []
    bandwidth_rows: List[Dict[str, object]] = []

    for name in MOTIVATION_BENCHMARKS:
        trace = spec_workload(name, duration=context.workload_duration)
        baseline = engine.run(trace, FixedBaselinePolicy())
        md_dvfs = engine.run(trace, StaticMdDvfsPolicy())
        boosted = engine.run(
            trace, StaticMdDvfsPolicy(redistribute_to_compute=True)
        )

        impact_rows.append(
            {
                "workload": name,
                "power_reduction": md_dvfs.power_reduction_vs(baseline),
                "energy_reduction": md_dvfs.energy_reduction_vs(baseline),
                "performance_change": md_dvfs.performance_improvement_over(baseline),
                "edp_improvement": md_dvfs.edp_improvement_over(baseline),
                "performance_with_redistribution": boosted.performance_improvement_over(
                    baseline
                ),
            }
        )
        breakdown = analyze_bottlenecks(trace)
        bottleneck_rows.append(breakdown.as_dict())
        bandwidth_rows.append(
            {
                "workload": name,
                "average_bandwidth_gbps": trace.average_bandwidth_demand / config.GBPS,
                "peak_bandwidth_gbps": trace.peak_bandwidth_demand / config.GBPS,
            }
        )

    return {
        "experiment": "fig2",
        "impact": impact_rows,
        "bottlenecks": bottleneck_rows,
        "bandwidth_demand": bandwidth_rows,
    }
