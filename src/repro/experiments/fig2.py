"""Fig. 2: motivation study -- static MD-DVFS on the three SPEC workloads.

(a) impact of the static MD-DVFS setup on average power, energy, performance and
    EDP, plus the effect of handing the saved power back to the CPU (the 1.2 ->
    1.3 GHz experiment);
(b) bottleneck decomposition of the three workloads;
(c) their memory-bandwidth demand.
"""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.baselines.fixed import FixedBaselinePolicy
from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext, build_context
from repro.perf.bottleneck import analyze_bottlenecks
from repro.workloads.spec2006 import MOTIVATION_BENCHMARKS, spec_workload

TITLE = "Fig. 2: MD-DVFS motivation (power vs. performance impact)"


def run_fig2_motivation(context: ExperimentContext | None = None) -> ExperimentReport:
    """Reproduce Fig. 2(a)-(c) on the simulated Broadwell-class platform."""
    if context is None:
        context = build_context()
    engine = context.engine

    impact_rows: List[Dict[str, object]] = []
    bottleneck_rows: List[Dict[str, object]] = []
    bandwidth_rows: List[Dict[str, object]] = []

    for name in MOTIVATION_BENCHMARKS:
        trace = spec_workload(name, duration=context.workload_duration)
        baseline = engine.run(trace, FixedBaselinePolicy())
        md_dvfs = engine.run(trace, StaticMdDvfsPolicy())
        boosted = engine.run(
            trace, StaticMdDvfsPolicy(redistribute_to_compute=True)
        )

        impact_rows.append(
            {
                "workload": name,
                "power_reduction": md_dvfs.power_reduction_vs(baseline),
                "energy_reduction": md_dvfs.energy_reduction_vs(baseline),
                "performance_change": md_dvfs.performance_improvement_over(baseline),
                "edp_improvement": md_dvfs.edp_improvement_over(baseline),
                "performance_with_redistribution": boosted.performance_improvement_over(
                    baseline
                ),
            }
        )
        breakdown = analyze_bottlenecks(trace)
        bottleneck_rows.append(breakdown.as_dict())
        bandwidth_rows.append(
            {
                "workload": name,
                "average_bandwidth_gbps": trace.average_bandwidth_demand / config.GBPS,
                "peak_bandwidth_gbps": trace.peak_bandwidth_demand / config.GBPS,
            }
        )

    return ExperimentReport(
        experiment="fig2",
        title=TITLE,
        params={
            "tdp": context.platform.tdp,
            "duration": context.workload_duration,
        },
        blocks=(
            Table.from_records(
                "impact",
                impact_rows,
                units={
                    "power_reduction": "fraction",
                    "energy_reduction": "fraction",
                    "performance_change": "fraction",
                    "edp_improvement": "fraction",
                    "performance_with_redistribution": "fraction",
                },
            ),
            Table.from_records(
                "bottlenecks",
                bottleneck_rows,
                units={
                    "memory_latency_bound": "fraction",
                    "memory_bandwidth_bound": "fraction",
                    "non_memory_bound": "fraction",
                },
            ),
            Table.from_records(
                "bandwidth_demand",
                bandwidth_rows,
                units={
                    "average_bandwidth_gbps": "GB/s",
                    "peak_bandwidth_gbps": "GB/s",
                },
            ),
        ),
    )


@experiment("fig2", title=TITLE)
def _fig2(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """Static MD-DVFS impact, bottlenecks, and bandwidth of the motivation trio."""
    return run_fig2_motivation(context)
