"""Sec. 7.4 sensitivity studies: DRAM device type and additional operating points.

Two questions from the paper's sensitivity discussion are reproduced:

* how much less power is freed when scaling DDR4 from 1.86 to 1.33 GHz than when
  scaling LPDDR3 from 1.6 to 1.06 GHz (the paper reports roughly 7 % less);
* whether adding the 0.8 GHz LPDDR3 bin as a third operating point is worthwhile
  (the paper decides against it: V_SA is already at Vmin at 1.06 GHz and the
  performance degradation at 0.8 GHz is 2-3x larger).
"""

from __future__ import annotations

from repro import config
from repro.core.operating_points import (
    build_ddr4_operating_points,
    build_default_operating_points,
)
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric
from repro.experiments.runner import ExperimentContext, build_context
from repro.runtime.jobs import PointSpec, TraceSpec, platform_for
from repro.workloads.trace import WorkloadClass

TITLE = "Sec. 7.4: DRAM device and operating-point sensitivity"


def run_dram_frequency_sensitivity(
    context: ExperimentContext | None = None,
    corpus_size: int = 80,
    seed: int = config.DEFAULT_SEED + 11,
) -> ExperimentReport:
    """Reproduce the Sec. 7.4 DRAM-device and operating-point sensitivity results."""
    if context is None:
        context = build_context()
    before = context.runtime.accounting()

    # --- LPDDR3 1.6 -> 1.06 GHz: the power freed by the default low point -------
    lpddr3_platform = context.platform
    lpddr3_points = context.operating_points
    lpddr3_savings = (
        lpddr3_platform.worst_case_io_memory_power()
        - lpddr3_points.low.provisioned_io_memory_power(lpddr3_platform)
    )

    # --- DDR4 1.86 -> 1.33 GHz ---------------------------------------------------
    # The DDR4 platform is a declarative delta over this context's hardware
    # description, materialized through the same worker-local memo the runtime
    # jobs use -- no imperative build_platform(...) bypass.
    ddr4_platform = platform_for(context.platform_spec().derive(dram="ddr4"))
    ddr4_points = build_ddr4_operating_points()
    ddr4_savings = ddr4_platform.worst_case_io_memory_power(
        dram_frequency=ddr4_points.high.dram_frequency
    ) - ddr4_points.low.provisioned_io_memory_power(ddr4_platform)

    savings_deficit = 1.0 - ddr4_savings / lpddr3_savings if lpddr3_savings > 0 else 0.0

    # --- Adding the 0.8 GHz bin as a third operating point ----------------------
    three_points = build_default_operating_points(include_lowest_bin=True)
    extra_savings = (
        three_points.points[1].provisioned_io_memory_power(lpddr3_platform)
        - three_points.low.provisioned_io_memory_power(lpddr3_platform)
    )

    # Per-workload degradations are measured through the runtime: one
    # degradation job per (workload, frequency pair), deduplicated and cached
    # like any other sweep.  The trace specs encode the single
    # ``generate_class`` call that builds the corpus so workers replay it.
    calls = (f"{WorkloadClass.CPU_SINGLE_THREAD.value}:{corpus_size}",)
    pair_106 = (
        PointSpec.from_point(lpddr3_points.high),
        PointSpec.from_point(lpddr3_points.low),
    )
    pair_08 = (
        PointSpec.from_point(three_points.high),
        PointSpec.from_point(three_points.low),
    )
    jobs = []
    for index in range(corpus_size):
        trace_spec = TraceSpec.make(
            "corpus", seed=seed, duration=1.0, calls=calls, call=0, index=index
        )
        jobs.append(context.degradation_job(trace_spec, *pair_106))
        jobs.append(context.degradation_job(trace_spec, *pair_08))
    measurements = context.runtime.measure(jobs)
    degradation_106 = [m.degradation for m in measurements[0::2]]
    degradation_08 = [m.degradation for m in measurements[1::2]]
    mean_106 = sum(degradation_106) / len(degradation_106)
    mean_08 = sum(degradation_08) / len(degradation_08)

    return ExperimentReport(
        experiment="sensitivity",
        title=TITLE,
        params={"corpus_size": corpus_size, "seed": seed},
        blocks=(
            Metric("lpddr3_power_savings_w", lpddr3_savings, "W"),
            Metric("ddr4_power_savings_w", ddr4_savings, "W"),
            Metric("ddr4_savings_deficit", savings_deficit, "fraction"),
            Metric("extra_savings_from_0p8_bin_w", extra_savings, "W"),
            Metric("mean_degradation_1p06", mean_106, "fraction"),
            Metric("mean_degradation_0p8", mean_08, "fraction"),
            Metric(
                "degradation_ratio_0p8_vs_1p06",
                (mean_08 / mean_106) if mean_106 > 0 else 0.0,
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "sensitivity",
    title=TITLE,
    flags=("--tdp",),
    quick="20-workload corpus instead of 80",
    params=("corpus_size", "seed"),
)
def _sensitivity(
    context: ExperimentContext, quick: bool, **overrides: object
) -> ExperimentReport:
    """DRAM-device power savings and the 0.8 GHz third-operating-point question."""
    if quick:
        overrides.setdefault("corpus_size", 20)
    return run_dram_frequency_sensitivity(context, **overrides)
