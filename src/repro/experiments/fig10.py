"""Fig. 10: SysScale performance benefit vs. SoC thermal design power (TDP)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.fixed import FixedBaselinePolicy
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.workloads.spec2006 import spec_cpu2006_suite

#: TDP points of Fig. 10 (watts).
DEFAULT_TDP_POINTS: Tuple[float, ...] = (3.5, 4.5, 7.0, 15.0)


def run_fig10_tdp_sensitivity(
    tdp_points: Sequence[float] = DEFAULT_TDP_POINTS,
    subset: Optional[Tuple[str, ...]] = None,
    workload_duration: float = 1.0,
) -> Dict[str, object]:
    """Reproduce Fig. 10: distribution of SPEC improvements at each TDP.

    A fresh platform (and hence a fresh PBM and threshold calibration) is built
    per TDP, because every quantity derived from the power budget changes with it.
    """
    rows: List[Dict[str, object]] = []
    for tdp in tdp_points:
        context = build_context(tdp=tdp, workload_duration=workload_duration)
        engine = context.engine
        improvements: List[float] = []
        for trace in spec_cpu2006_suite(duration=workload_duration, subset=subset):
            baseline = engine.run(trace, FixedBaselinePolicy())
            sysscale = engine.run(trace, context.sysscale())
            improvements.append(sysscale.performance_improvement_over(baseline))
        ordered = sorted(improvements)
        rows.append(
            {
                "tdp_w": tdp,
                "average": mean(improvements),
                "median": ordered[len(ordered) // 2],
                "max": max(improvements),
                "min": min(improvements),
                "improvements": improvements,
            }
        )

    return {"experiment": "fig10", "rows": rows}
