"""Fig. 10: SysScale performance benefit vs. SoC thermal design power (TDP)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentRuntime, mean
from repro.runtime.jobs import PlatformSpec, PolicySpec, SimSpec, SimulationJob, TraceSpec
from repro.sim.engine import SimulationConfig
from repro.workloads.spec2006 import spec_cpu2006_suite

#: TDP points of Fig. 10 (watts).
DEFAULT_TDP_POINTS: Tuple[float, ...] = (3.5, 4.5, 7.0, 15.0)


def run_fig10_tdp_sensitivity(
    tdp_points: Sequence[float] = DEFAULT_TDP_POINTS,
    subset: Optional[Tuple[str, ...]] = None,
    workload_duration: float = 1.0,
    runtime: Optional[ExperimentRuntime] = None,
    sim_config: Optional[SimulationConfig] = None,
) -> Dict[str, object]:
    """Reproduce Fig. 10: distribution of SPEC improvements at each TDP.

    Every (TDP, benchmark, policy) combination is one job: workers rebuild the
    platform (and hence the PBM and threshold calibration) per TDP, because
    every quantity derived from the power budget changes with it.  Submitting
    the whole grid at once lets a parallel runtime spread the heaviest figure
    of the evaluation across all cores.
    """
    if runtime is None:
        runtime = ExperimentRuntime()
    sim = SimSpec.from_config(sim_config) if sim_config is not None else SimSpec()

    traces = spec_cpu2006_suite(duration=workload_duration, subset=subset)
    jobs: List[SimulationJob] = []
    for tdp in tdp_points:
        platform_spec = PlatformSpec(tdp=tdp)
        for trace in traces:
            trace_spec = TraceSpec.make(
                "spec", name=trace.name, duration=workload_duration
            )
            for policy in ("baseline", "sysscale"):
                jobs.append(
                    SimulationJob(
                        trace=trace_spec,
                        policy=PolicySpec.make(policy),
                        platform=platform_spec,
                        sim=sim,
                    )
                )
    results = runtime.simulate(jobs)

    rows: List[Dict[str, object]] = []
    cursor = 0
    for tdp in tdp_points:
        improvements: List[float] = []
        for _ in traces:
            baseline = results[cursor]
            sysscale = results[cursor + 1]
            cursor += 2
            improvements.append(sysscale.performance_improvement_over(baseline))
        ordered = sorted(improvements)
        rows.append(
            {
                "tdp_w": tdp,
                "average": mean(improvements),
                "median": ordered[len(ordered) // 2],
                "max": max(improvements),
                "min": min(improvements),
                "improvements": improvements,
            }
        )

    return {"experiment": "fig10", "rows": rows}
