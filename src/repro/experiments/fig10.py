"""Fig. 10: SysScale performance benefit vs. SoC thermal design power (TDP)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext, ExperimentRuntime, mean
from repro.runtime.jobs import PlatformSpec, PolicySpec, SimSpec, SimulationJob, TraceSpec
from repro.sim.engine import SimulationConfig
from repro.workloads.spec2006 import spec_cpu2006_suite

#: TDP points of Fig. 10 (watts).
DEFAULT_TDP_POINTS: Tuple[float, ...] = (3.5, 4.5, 7.0, 15.0)

TITLE = "Fig. 10: SysScale benefit vs. SoC TDP"


def run_fig10_tdp_sensitivity(
    tdp_points: Sequence[float] = DEFAULT_TDP_POINTS,
    subset: Optional[Tuple[str, ...]] = None,
    workload_duration: float = 1.0,
    runtime: Optional[ExperimentRuntime] = None,
    sim_config: Optional[SimulationConfig] = None,
) -> ExperimentReport:
    """Reproduce Fig. 10: distribution of SPEC improvements at each TDP.

    Every (TDP, benchmark, policy) combination is one job: workers rebuild the
    platform (and hence the PBM and threshold calibration) per TDP, because
    every quantity derived from the power budget changes with it.  Submitting
    the whole grid at once lets a parallel runtime spread the heaviest figure
    of the evaluation across all cores.
    """
    if runtime is None:
        runtime = ExperimentRuntime()
    before = runtime.accounting()
    sim = SimSpec.from_config(sim_config) if sim_config is not None else SimSpec()

    traces = spec_cpu2006_suite(duration=workload_duration, subset=subset)
    jobs: List[SimulationJob] = []
    for tdp in tdp_points:
        platform_spec = PlatformSpec(tdp=tdp)
        for trace in traces:
            trace_spec = TraceSpec.make(
                "spec", name=trace.name, duration=workload_duration
            )
            for policy in ("baseline", "sysscale"):
                jobs.append(
                    SimulationJob(
                        trace=trace_spec,
                        policy=PolicySpec.make(policy),
                        platform=platform_spec,
                        sim=sim,
                    )
                )
    results = runtime.simulate(jobs)

    rows: List[Dict[str, object]] = []
    cursor = 0
    for tdp in tdp_points:
        improvements: List[float] = []
        for _ in traces:
            baseline = results[cursor]
            sysscale = results[cursor + 1]
            cursor += 2
            improvements.append(sysscale.performance_improvement_over(baseline))
        ordered = sorted(improvements)
        rows.append(
            {
                "tdp_w": tdp,
                "average": mean(improvements),
                "median": ordered[len(ordered) // 2],
                "max": max(improvements),
                "min": min(improvements),
                "improvements": improvements,
            }
        )

    return ExperimentReport(
        experiment="fig10",
        title=TITLE,
        params={
            "tdp_points": tdp_points,
            "subset": subset,
            "duration": workload_duration,
        },
        blocks=(
            Table.from_records(
                "rows",
                rows,
                units={
                    "tdp_w": "W",
                    "average": "fraction",
                    "median": "fraction",
                    "max": "fraction",
                    "min": "fraction",
                    "improvements": "fraction",
                },
            ),
        ),
        run=runtime.accounting().since(before),
    )


@experiment(
    "fig10",
    title=TITLE,
    flags=("--duration",),
    quick="12-benchmark representative SPEC subset",
    params=("subset", "tdp_points"),
)
def _fig10(context: ExperimentContext, quick: bool, **overrides: object) -> ExperimentReport:
    """Distribution of SPEC improvements at each TDP point (sweeps its own TDPs)."""
    if quick:
        from repro.runtime.campaign import QUICK_SPEC_SUBSET

        overrides.setdefault("subset", QUICK_SPEC_SUBSET)
    return run_fig10_tdp_sensitivity(
        workload_duration=context.workload_duration,
        runtime=context.runtime,
        sim_config=context.engine.config,
        **overrides,
    )
