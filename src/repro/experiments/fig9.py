"""Fig. 9: battery-life workload average-power reduction."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.batterylife import battery_life_suite


def run_fig9_battery_life(
    context: ExperimentContext | None = None,
    peripheral_configuration: str = "single_hd",
) -> Dict[str, object]:
    """Reproduce Fig. 9: average-power reduction with a single HD panel active."""
    if context is None:
        context = build_context()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = battery_life_suite()
    pairs = context.simulate_policy_matrix(
        [TraceSpec.make("battery_life", name=trace.name) for trace in traces],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
        peripherals=peripheral_configuration,
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "baseline_power_w": baseline.average_power,
                "memscale_redist": memscale.project(
                    trace, baseline_average_power=baseline.average_power
                ).power_reduction,
                "coscale_redist": coscale.project(
                    trace, baseline_average_power=baseline.average_power
                ).power_reduction,
                "sysscale": sysscale.power_reduction_vs(baseline),
                "sysscale_low_residency": sysscale.low_point_residency,
            }
        )

    return {
        "experiment": "fig9",
        "rows": rows,
        "average": {
            "memscale_redist": mean(row["memscale_redist"] for row in rows),
            "coscale_redist": mean(row["coscale_redist"] for row in rows),
            "sysscale": mean(row["sysscale"] for row in rows),
        },
    }
