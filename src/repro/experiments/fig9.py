"""Fig. 9: battery-life workload average-power reduction."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.batterylife import battery_life_suite

TITLE = "Fig. 9: battery-life workload power reduction"


def run_fig9_battery_life(
    context: ExperimentContext | None = None,
    peripheral_configuration: str = "single_hd",
) -> ExperimentReport:
    """Reproduce Fig. 9: average-power reduction with a single HD panel active."""
    if context is None:
        context = build_context()
    before = context.runtime.accounting()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = battery_life_suite()
    pairs = context.simulate_policy_matrix(
        [TraceSpec.make("battery_life", name=trace.name) for trace in traces],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
        peripherals=peripheral_configuration,
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "baseline_power_w": baseline.average_power,
                "memscale_redist": memscale.project(
                    trace, baseline_average_power=baseline.average_power
                ).power_reduction,
                "coscale_redist": coscale.project(
                    trace, baseline_average_power=baseline.average_power
                ).power_reduction,
                "sysscale": sysscale.power_reduction_vs(baseline),
                "sysscale_low_residency": sysscale.low_point_residency,
            }
        )

    techniques = ("memscale_redist", "coscale_redist", "sysscale")
    return ExperimentReport(
        experiment="fig9",
        title=TITLE,
        params={
            "peripheral_configuration": peripheral_configuration,
            "tdp": context.platform.tdp,
        },
        blocks=(
            Table.from_records(
                "rows",
                rows,
                units={
                    **{technique: "fraction" for technique in techniques},
                    "baseline_power_w": "W",
                },
            ),
            *Metric.group(
                "average",
                {t: mean(row[t] for row in rows) for t in techniques},
                unit="fraction",
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "fig9",
    title=TITLE,
    flags=("--tdp",),
    params=("peripheral_configuration",),
)
def _fig9(context: ExperimentContext, quick: bool, **overrides: object) -> ExperimentReport:
    """Average-power reduction on the battery-life suite (single HD panel)."""
    return run_fig9_battery_life(context, **overrides)
