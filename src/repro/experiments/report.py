"""Structured experiment results: typed blocks, exact serialization, renderers.

Every experiment entry point returns an :class:`ExperimentReport` -- an ordered
collection of typed blocks instead of an ad-hoc dict:

* :class:`Metric` -- one labelled scalar (with an optional unit);
* :class:`Table` -- labelled columns x rows of scalar cells (per-column units);
* :class:`Series` -- one (x, y) sequence, e.g. a bandwidth timeline.

A block's ``key`` may contain ``/`` separators (``"average/sysscale"``); the
*legacy view* (:meth:`ExperimentReport.to_legacy`) folds those paths back into
the nested plain-dict shape the experiments returned before the report type
existed, and the report itself exposes read-only mapping access
(``report["rows"]``) over that view, so existing callers keep working.

Serialization is exact: ``ExperimentReport.from_dict(report.to_dict())``
reconstructs an equal report, including after a JSON round trip (all values are
canonicalized to plain JSON scalars at construction).  ``to_dict`` carries the
run metadata (parameters, spec hash, and the runtime's submitted / executed /
cache-hit accounting); :meth:`ExperimentReport.results_dict` is the same
document *without* the volatile accounting, so cold- and warm-cache runs of one
experiment export bit-identical numbers.

Three renderers cover every export surface (the CLI, examples, and files):
:func:`render_text` (the ASCII tables), :func:`render_json`, and
:func:`render_csv`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.runtime.jobs import canonical_json, content_hash

#: Bump when the report schema changes incompatibly.
REPORT_SCHEMA_VERSION = 1

Scalar = Union[str, int, float, bool, None]
#: A table cell: a scalar, or a sequence of scalars (e.g. a distribution).
CellValue = Union[Scalar, Tuple[Scalar, ...]]


def _canonical_scalar(value: Any) -> Scalar:
    """Coerce ``value`` to a plain JSON scalar (numpy scalars included)."""
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return _canonical_scalar(item())
    raise TypeError(f"value {value!r} is not a JSON scalar")


def _canonical_cell(value: Any) -> CellValue:
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_scalar(item) for item in value)
    return _canonical_scalar(value)


def _cell_to_jsonable(value: CellValue) -> Any:
    return list(value) if isinstance(value, tuple) else value


# ---------------------------------------------------------------------------
# Blocks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Metric:
    """One labelled scalar result (``key`` may nest with ``/``)."""

    key: str
    value: Scalar
    unit: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", _canonical_scalar(self.value))

    @staticmethod
    def group(
        prefix: str,
        values: Mapping[str, Scalar],
        unit: str = "",
    ) -> Tuple["Metric", ...]:
        """One metric per mapping entry, keyed ``prefix/<name>``."""
        return tuple(
            Metric(key=f"{prefix}/{name}", value=value, unit=unit)
            for name, value in values.items()
        )

    def legacy_value(self) -> Scalar:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "metric", "key": self.key, "value": self.value, "unit": self.unit}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Metric":
        return cls(key=data["key"], value=data["value"], unit=data.get("unit", ""))


@dataclass(frozen=True)
class Table:
    """Labelled columns x rows of scalar cells, with optional per-column units."""

    key: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[CellValue, ...], ...]
    units: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "columns", tuple(str(c) for c in self.columns))
        object.__setattr__(
            self,
            "rows",
            tuple(tuple(_canonical_cell(cell) for cell in row) for row in self.rows),
        )
        object.__setattr__(
            self, "units", tuple(sorted((str(c), str(u)) for c, u in self.units))
        )
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.key!r}: row width {len(row)} != "
                    f"{len(self.columns)} columns"
                )

    @classmethod
    def from_records(
        cls,
        key: str,
        records: Sequence[Mapping[str, Any]],
        columns: Optional[Sequence[str]] = None,
        units: Optional[Mapping[str, str]] = None,
    ) -> "Table":
        """Build from row dictionaries; columns default to first-seen key order."""
        if columns is None:
            seen: List[str] = []
            for record in records:
                for name in record:
                    if name not in seen:
                        seen.append(name)
            columns = seen
        rows = tuple(
            tuple(record.get(column) for column in columns) for record in records
        )
        unit_items = tuple(sorted((units or {}).items()))
        return cls(key=key, columns=tuple(columns), rows=rows, units=unit_items)

    def records(self) -> List[Dict[str, Any]]:
        """Row-dictionary view (tuple cells become lists)."""
        return [
            {
                column: _cell_to_jsonable(cell)
                for column, cell in zip(self.columns, row)
            }
            for row in self.rows
        ]

    def unit_of(self, column: str) -> str:
        return dict(self.units).get(column, "")

    def legacy_value(self) -> List[Dict[str, Any]]:
        return self.records()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "table",
            "key": self.key,
            "columns": list(self.columns),
            "rows": [[_cell_to_jsonable(cell) for cell in row] for row in self.rows],
            "units": {column: unit for column, unit in self.units},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table":
        return cls(
            key=data["key"],
            columns=tuple(data["columns"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            units=tuple(sorted(data.get("units", {}).items())),
        )


@dataclass(frozen=True)
class Series:
    """One labelled (x, y) sequence, e.g. a bandwidth-over-time timeline."""

    key: str
    x: Tuple[float, ...]
    y: Tuple[float, ...]
    x_label: str = "x"
    y_label: str = "y"
    unit: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", tuple(_canonical_scalar(v) for v in self.x))
        object.__setattr__(self, "y", tuple(_canonical_scalar(v) for v in self.y))
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.key!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )

    @classmethod
    def from_points(
        cls,
        key: str,
        points: Iterable[Tuple[float, float]],
        x_label: str = "x",
        y_label: str = "y",
        unit: str = "",
    ) -> "Series":
        xs, ys = [], []
        for x, y in points:
            xs.append(x)
            ys.append(y)
        return cls(key=key, x=tuple(xs), y=tuple(ys), x_label=x_label, y_label=y_label, unit=unit)

    def points(self) -> List[Dict[str, float]]:
        """Point-dictionary view: ``[{x_label: x, y_label: y}, ...]``."""
        return [
            {self.x_label: x, self.y_label: y} for x, y in zip(self.x, self.y)
        ]

    def legacy_value(self) -> List[Dict[str, float]]:
        return self.points()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "series",
            "key": self.key,
            "x": list(self.x),
            "y": list(self.y),
            "x_label": self.x_label,
            "y_label": self.y_label,
            "unit": self.unit,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Series":
        return cls(
            key=data["key"],
            x=tuple(data["x"]),
            y=tuple(data["y"]),
            x_label=data.get("x_label", "x"),
            y_label=data.get("y_label", "y"),
            unit=data.get("unit", ""),
        )


Block = Union[Metric, Table, Series]

_BLOCK_TYPES: Dict[str, type] = {
    "metric": Metric,
    "table": Table,
    "series": Series,
}


def block_from_dict(data: Dict[str, Any]) -> Block:
    """Rebuild a block serialized with ``to_dict`` (dispatches on ``type``)."""
    block_type = _BLOCK_TYPES.get(data.get("type"))
    if block_type is None:
        raise KeyError(
            f"unknown block type {data.get('type')!r}; known: {sorted(_BLOCK_TYPES)}"
        )
    return block_type.from_dict(data)


# ---------------------------------------------------------------------------
# Run accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunInfo:
    """Runtime accounting attributed to one report (deltas, not totals)."""

    submitted: int = 0
    unique: int = 0
    executed: int = 0
    cache_hits: int = 0

    def since(self, before: "RunInfo") -> "RunInfo":
        """The accounting delta between two snapshots of one runtime."""
        return RunInfo(
            submitted=self.submitted - before.submitted,
            unique=self.unique - before.unique,
            executed=self.executed - before.executed,
            cache_hits=self.cache_hits - before.cache_hits,
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "unique": self.unique,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunInfo":
        return cls(**data)


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


def _canonical_params(value: Any) -> Any:
    """Canonicalize parameter values to plain JSON types (tuples -> lists)."""
    if isinstance(value, dict):
        return {str(key): _canonical_params(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_params(item) for item in value]
    return _canonical_scalar(value)


def _assign_path(root: Dict[str, Any], key: str, value: Any) -> None:
    parts = key.split("/")
    node = root
    for part in parts[:-1]:
        node = node.setdefault(part, {})
    node[parts[-1]] = value


@dataclass(frozen=True)
class ExperimentReport:
    """A typed experiment result: labelled blocks plus run metadata.

    Supports read-only mapping access over the legacy dict view
    (``report["rows"]``, ``"average" in report``), so code written against the
    pre-report plain-dict results keeps working unchanged.
    """

    experiment: str
    title: str = ""
    params: Dict[str, Any] = field(default_factory=dict)
    blocks: Tuple[Block, ...] = ()
    run: RunInfo = field(default_factory=RunInfo)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _canonical_params(self.params))
        object.__setattr__(self, "blocks", tuple(self.blocks))
        keys = [block.key for block in self.blocks]
        if len(set(keys)) != len(keys):
            raise ValueError(f"report {self.experiment!r} has duplicate block keys")

    # -- block access -------------------------------------------------------
    def block(self, key: str) -> Block:
        for candidate in self.blocks:
            if candidate.key == key:
                return candidate
        raise KeyError(f"report {self.experiment!r} has no block {key!r}")

    @property
    def tables(self) -> Tuple[Table, ...]:
        return tuple(b for b in self.blocks if isinstance(b, Table))

    @property
    def metrics(self) -> Tuple[Metric, ...]:
        return tuple(b for b in self.blocks if isinstance(b, Metric))

    @property
    def series(self) -> Tuple[Series, ...]:
        return tuple(b for b in self.blocks if isinstance(b, Series))

    @property
    def spec_hash(self) -> str:
        """Content hash of what was asked for (experiment + parameters)."""
        return content_hash(
            {
                "schema": REPORT_SCHEMA_VERSION,
                "experiment": self.experiment,
                "params": self.params,
            }
        )

    # -- legacy mapping view ------------------------------------------------
    def to_legacy(self) -> Dict[str, Any]:
        """The nested plain-dict shape experiments returned before reports."""
        cached = self.__dict__.get("_legacy")
        if cached is None:
            cached = {"experiment": self.experiment}
            for block in self.blocks:
                _assign_path(cached, block.key, block.legacy_value())
            object.__setattr__(self, "_legacy", cached)
        return cached

    def __getitem__(self, key: str) -> Any:
        return self.to_legacy()[key]

    def __contains__(self, key: object) -> bool:
        return key in self.to_legacy()

    def __iter__(self) -> Iterator[str]:
        return iter(self.to_legacy())

    def __len__(self) -> int:
        return len(self.to_legacy())

    def get(self, key: str, default: Any = None) -> Any:
        return self.to_legacy().get(key, default)

    def keys(self):
        return self.to_legacy().keys()

    def values(self):
        return self.to_legacy().values()

    def items(self):
        return self.to_legacy().items()

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "experiment": self.experiment,
            "title": self.title,
            "params": self.params,
            "spec_hash": self.spec_hash,
            "run": self.run.to_dict(),
            "blocks": [block.to_dict() for block in self.blocks],
        }

    def results_dict(self) -> Dict[str, Any]:
        """``to_dict`` without the volatile run accounting: identical for a
        cold-cache and a warm-cache run of the same experiment."""
        data = self.to_dict()
        del data["run"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentReport":
        schema = data.get("schema")
        if schema != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported report schema {schema!r} "
                f"(expected {REPORT_SCHEMA_VERSION})"
            )
        return cls(
            experiment=data["experiment"],
            title=data.get("title", ""),
            params=data.get("params", {}),
            blocks=tuple(block_from_dict(block) for block in data.get("blocks", [])),
            run=RunInfo.from_dict(data.get("run", {})),
        )


# ---------------------------------------------------------------------------
# Renderers (text / JSON / CSV)
# ---------------------------------------------------------------------------


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if value is None:
            return ""
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        if isinstance(value, (list, tuple)):
            return ";".join(render(item) for item in value)
        return str(value)

    rendered = [[render(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def _format_metric_value(value: Scalar) -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(value)
    return f"{value:.6g}"


def render_text(report: ExperimentReport, tables: bool = True) -> str:
    """ASCII rendering of a report: title, tables, series summaries, metrics."""
    lines: List[str] = []
    heading = report.experiment
    if report.title:
        heading += f" -- {report.title}"
    lines.append(heading)
    if report.params:
        rendered = ", ".join(
            f"{key}={value}" for key, value in sorted(report.params.items())
        )
        lines.append(f"  params: {rendered}")
    for block in report.blocks:
        if isinstance(block, Table):
            lines.append(f"  {block.key}: {len(block.rows)} row(s)")
            if tables and block.rows:
                for line in format_table(block.records(), block.columns).splitlines():
                    lines.append(f"    {line}")
        elif isinstance(block, Series):
            lines.append(
                f"  {block.key}: {len(block.x)} point(s) "
                f"({block.x_label} -> {block.y_label})"
            )
    metrics = report.metrics
    if metrics:
        lines.append("  metrics:")
        for metric in metrics:
            suffix = f" {metric.unit}" if metric.unit else ""
            lines.append(f"    {metric.key}: {_format_metric_value(metric.value)}{suffix}")
    return "\n".join(lines)


def render_json(report: ExperimentReport, indent: Optional[int] = 2) -> str:
    """The full report document as JSON (exact ``from_dict`` round trip)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=False)


def render_csv(report: ExperimentReport) -> str:
    """CSV export: one section per table/series block plus a metrics section.

    Deliberately excludes the run accounting, so a warm-cache rerun exports a
    byte-identical document.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["experiment", report.experiment])
    for key in sorted(report.params):
        writer.writerow(["param", key, canonical_json(report.params[key])])
    for block in report.blocks:
        if isinstance(block, Table):
            writer.writerow([])
            writer.writerow(["table", block.key])
            writer.writerow(block.columns)
            for row in block.rows:
                writer.writerow(
                    [
                        ";".join(str(item) for item in cell)
                        if isinstance(cell, tuple)
                        else cell
                        for cell in row
                    ]
                )
        elif isinstance(block, Series):
            writer.writerow([])
            writer.writerow(["series", block.key])
            writer.writerow([block.x_label, block.y_label])
            for x, y in zip(block.x, block.y):
                writer.writerow([x, y])
    metrics = report.metrics
    if metrics:
        writer.writerow([])
        writer.writerow(["metrics"])
        writer.writerow(["key", "value", "unit"])
        for metric in metrics:
            writer.writerow([metric.key, metric.value, metric.unit])
    return buffer.getvalue()
