"""Hardware what-if sweep: SysScale's benefit across platform variants.

The ROADMAP's hardware-sensitivity question -- how much of SysScale's
energy/performance win survives on a different die? -- becomes answerable once
platforms are data: this experiment crosses a SPEC subset with {baseline,
SysScale} over a list of registered :mod:`repro.hw` variants (Skylake, the
Broadwell motivation part, a low-leakage bin, the 7 W cTDP point, the DDR4
device of Sec. 7.4 by default) and reports per-variant energy reduction,
performance impact, and low-point residency.  Every (variant, workload,
policy) triple is one runtime job whose content hash covers the *full*
hardware description, so sweeps cache, deduplicate, and parallelize like any
other campaign: a warm rerun simulates nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.hw import HardwareSpec, resolve_hardware
from repro.runtime.campaign import DEFAULT_HW_VARIANTS, QUICK_SPEC_SUBSET
from repro.runtime.jobs import PolicySpec, SimulationJob, TraceSpec

TITLE = "Hardware sweep: SysScale sensitivity across platform variants"

#: ``--quick``: the first three variants over half the SPEC subset.
QUICK_VARIANT_COUNT = 3
QUICK_WORKLOAD_COUNT = 6


def _sysscale_for(spec: HardwareSpec) -> PolicySpec:
    """SysScale with the operating-point table matched to the DRAM family."""
    if spec.dram.technology == "lpddr3":
        return PolicySpec.make("sysscale")
    return PolicySpec.make("sysscale", operating_points="ddr4")


def _variant_labels(specs: Sequence[HardwareSpec]) -> List[str]:
    """Report labels per variant; name collisions disambiguate by hash.

    Two swept specs may share a registry name (e.g. ``skylake`` and an ad-hoc
    ``--set`` derivation of it, whose name is still ``skylake``), and the name
    is presentation metadata that several physically distinct specs can carry
    -- rows must never aggregate across them.
    """
    counts: Dict[str, int] = {}
    for spec in specs:
        counts[spec.name] = counts.get(spec.name, 0) + 1
    return [
        spec.name if counts[spec.name] == 1 else f"{spec.name}@{spec.content_hash[:8]}"
        for spec in specs
    ]


def run_hwsweep(
    context: ExperimentContext | None = None,
    variants: Optional[Sequence[object]] = None,
    subset: Optional[Tuple[str, ...]] = None,
    quick: bool = False,
) -> ExperimentReport:
    """Sweep {baseline, SysScale} x SPEC subset over hardware variants.

    ``variants`` accepts registered platform names or
    :class:`~repro.hw.HardwareSpec` objects; ``subset`` names the SPEC
    workloads (default: the representative 12-benchmark subset).  With no
    explicit ``variants``, a context built for non-default hardware
    (``--platform``/``--set``, ``Session(platform=...)``) is swept *in
    addition to* the default axis rather than silently ignored.
    """
    if context is None:
        context = build_context()
    before = context.runtime.accounting()

    if isinstance(variants, str):
        variants = (variants,)
    if isinstance(subset, str):
        subset = (subset,)
    if variants is not None:
        specs = [resolve_hardware(entry) for entry in variants]
    else:
        defaults = (
            DEFAULT_HW_VARIANTS[:QUICK_VARIANT_COUNT] if quick else DEFAULT_HW_VARIANTS
        )
        specs = [resolve_hardware(name) for name in defaults]
        if context.hardware is not None and context.hardware not in specs:
            specs.insert(0, context.hardware)
    if len(specs) < 2:
        raise ValueError("a hardware sweep needs at least two variants")
    if subset is None:
        subset = (
            QUICK_SPEC_SUBSET[:QUICK_WORKLOAD_COUNT] if quick else QUICK_SPEC_SUBSET
        )
    names = tuple(subset)
    traces = [
        TraceSpec.make("spec", name=name, duration=context.workload_duration)
        for name in names
    ]
    sim = context.sim_spec()

    jobs: List[SimulationJob] = []
    for spec in specs:
        policies = (PolicySpec.make("baseline"), _sysscale_for(spec))
        for trace in traces:
            for policy in policies:
                jobs.append(
                    SimulationJob(trace=trace, policy=policy, platform=spec, sim=sim)
                )
    results = context.runtime.simulate(jobs)

    labels = _variant_labels(specs)
    detail: List[Dict[str, object]] = []
    per_variant: List[Dict[str, object]] = []
    cursor = iter(results)
    for spec, label in zip(specs, labels):
        rows: List[Dict[str, object]] = []
        for trace in traces:
            baseline = next(cursor)
            sysscale = next(cursor)
            rows.append(
                {
                    "variant": label,
                    "workload": trace.label,
                    "energy_reduction": sysscale.energy_reduction_vs(baseline),
                    "perf_impact": sysscale.performance_improvement_over(baseline),
                    "low_residency": sysscale.low_point_residency,
                    "baseline_power_w": baseline.average_power,
                }
            )
        detail.extend(rows)
        per_variant.append(
            {
                "variant": label,
                "tdp_w": spec.tdp,
                "dram": spec.dram.technology,
                "energy_reduction": mean(r["energy_reduction"] for r in rows),
                "perf_impact": mean(r["perf_impact"] for r in rows),
                "low_residency": mean(r["low_residency"] for r in rows),
                "baseline_power_w": mean(r["baseline_power_w"] for r in rows),
                "hardware_hash": spec.content_hash,
            }
        )

    ranked = sorted(per_variant, key=lambda row: row["energy_reduction"])
    return ExperimentReport(
        experiment="hwsweep",
        title=TITLE,
        params={
            "variants": labels,
            "subset": list(names),
            "duration": context.workload_duration,
        },
        blocks=(
            Table.from_records(
                "variants",
                per_variant,
                units={
                    "tdp_w": "W",
                    "energy_reduction": "fraction",
                    "perf_impact": "fraction",
                    "low_residency": "fraction",
                    "baseline_power_w": "W",
                },
            ),
            Table.from_records(
                "rows",
                detail,
                units={
                    "energy_reduction": "fraction",
                    "perf_impact": "fraction",
                    "low_residency": "fraction",
                    "baseline_power_w": "W",
                },
            ),
            Metric("best_variant", ranked[-1]["variant"]),
            Metric(
                "best_energy_reduction", ranked[-1]["energy_reduction"], "fraction"
            ),
            Metric("worst_variant", ranked[0]["variant"]),
            Metric(
                "worst_energy_reduction", ranked[0]["energy_reduction"], "fraction"
            ),
            Metric(
                "energy_reduction_spread",
                ranked[-1]["energy_reduction"] - ranked[0]["energy_reduction"],
                "fraction",
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "hwsweep",
    title=TITLE,
    flags=("--duration",),
    quick=(
        f"first {QUICK_VARIANT_COUNT} variants x "
        f"{QUICK_WORKLOAD_COUNT}-benchmark subset"
    ),
    params=("variants", "subset"),
)
def _hwsweep(
    context: ExperimentContext, quick: bool, **overrides: object
) -> ExperimentReport:
    """Energy/perf sensitivity of SysScale across registered hardware variants."""
    return run_hwsweep(context, quick=quick, **overrides)
