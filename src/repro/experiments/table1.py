"""Table 1: the two real experimental setups (baseline vs. MD-DVFS)."""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.baselines.md_dvfs import build_md_dvfs_action
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext, build_context

TITLE = "Table 1: static MD-DVFS operating-point settings"


def run_table1(context: ExperimentContext | None = None) -> ExperimentReport:
    """Reproduce Table 1: the component settings of the two setups.

    The baseline column is the default high operating point; the MD-DVFS column is
    the static reduced configuration (one DRAM bin down, interconnect halved,
    V_SA x 0.8, V_IO x 0.85, CPU cores unchanged).
    """
    if context is None:
        context = build_context()
    platform = context.platform
    md_action = build_md_dvfs_action(platform)
    baseline_state = platform.default_state()

    rows: List[Dict[str, object]] = [
        {
            "component": "DRAM frequency (GHz)",
            "baseline": baseline_state.dram_frequency / config.GHZ,
            "md_dvfs": md_action.dram_frequency / config.GHZ,
        },
        {
            "component": "IO interconnect (GHz)",
            "baseline": baseline_state.interconnect_frequency / config.GHZ,
            "md_dvfs": md_action.interconnect_frequency / config.GHZ,
        },
        {
            "component": "Shared voltage (x V_SA)",
            "baseline": 1.0,
            "md_dvfs": md_action.v_sa_scale,
        },
        {
            "component": "DDRIO digital (x V_IO)",
            "baseline": 1.0,
            "md_dvfs": md_action.v_io_scale,
        },
        {
            "component": "2 cores / 4 threads (GHz)",
            "baseline": baseline_state.cpu_frequency / config.GHZ,
            "md_dvfs": baseline_state.cpu_frequency / config.GHZ,
        },
    ]
    return ExperimentReport(
        experiment="table1",
        title=TITLE,
        params={"tdp": platform.tdp},
        blocks=(Table.from_records("rows", rows),),
    )


@experiment("table1", title=TITLE, flags=("--tdp",))
def _table1(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """The component settings of the baseline and static MD-DVFS setups."""
    return run_table1(context)
