"""Fig. 7: SPEC CPU2006 performance improvement of MemScale-R, CoScale-R, SysScale."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.spec2006 import spec_cpu2006_suite


def run_fig7_spec(
    context: ExperimentContext | None = None,
    subset: Optional[Tuple[str, ...]] = None,
) -> Dict[str, object]:
    """Reproduce Fig. 7: per-benchmark and average performance improvements.

    SysScale and the baseline are simulated (through the context's runtime, so
    the per-benchmark pairs parallelize and cache); MemScale-Redist and
    CoScale-Redist are projected with the Sec. 6 methodology, exactly as in the
    paper.
    """
    if context is None:
        context = build_context()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = spec_cpu2006_suite(duration=context.workload_duration, subset=subset)
    pairs = context.simulate_policy_matrix(
        [
            TraceSpec.make("spec", name=trace.name, duration=context.workload_duration)
            for trace in traces
        ],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "memscale_redist": memscale.project(trace).performance_improvement,
                "coscale_redist": coscale.project(trace).performance_improvement,
                "sysscale": sysscale.performance_improvement_over(baseline),
                "sysscale_low_residency": sysscale.low_point_residency,
                "cpu_scalability": trace.cpu_frequency_scalability,
            }
        )

    return {
        "experiment": "fig7",
        "rows": rows,
        "average": {
            "memscale_redist": mean(row["memscale_redist"] for row in rows),
            "coscale_redist": mean(row["coscale_redist"] for row in rows),
            "sysscale": mean(row["sysscale"] for row in rows),
        },
        "max": {
            "memscale_redist": max(row["memscale_redist"] for row in rows),
            "coscale_redist": max(row["coscale_redist"] for row in rows),
            "sysscale": max(row["sysscale"] for row in rows),
        },
    }
