"""Fig. 7: SPEC CPU2006 performance improvement of MemScale-R, CoScale-R, SysScale."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.spec2006 import spec_cpu2006_suite

TITLE = "Fig. 7: SPEC CPU2006 performance improvement"


def run_fig7_spec(
    context: ExperimentContext | None = None,
    subset: Optional[Tuple[str, ...]] = None,
) -> ExperimentReport:
    """Reproduce Fig. 7: per-benchmark and average performance improvements.

    SysScale and the baseline are simulated (through the context's runtime, so
    the per-benchmark pairs parallelize and cache); MemScale-Redist and
    CoScale-Redist are projected with the Sec. 6 methodology, exactly as in the
    paper.
    """
    if context is None:
        context = build_context()
    before = context.runtime.accounting()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = spec_cpu2006_suite(duration=context.workload_duration, subset=subset)
    pairs = context.simulate_policy_matrix(
        [
            TraceSpec.make("spec", name=trace.name, duration=context.workload_duration)
            for trace in traces
        ],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "memscale_redist": memscale.project(trace).performance_improvement,
                "coscale_redist": coscale.project(trace).performance_improvement,
                "sysscale": sysscale.performance_improvement_over(baseline),
                "sysscale_low_residency": sysscale.low_point_residency,
                "cpu_scalability": trace.cpu_frequency_scalability,
            }
        )

    techniques = ("memscale_redist", "coscale_redist", "sysscale")
    return ExperimentReport(
        experiment="fig7",
        title=TITLE,
        params={
            "subset": subset,
            "duration": context.workload_duration,
            "tdp": context.platform.tdp,
        },
        blocks=(
            Table.from_records(
                "rows",
                rows,
                units={technique: "fraction" for technique in techniques},
            ),
            *Metric.group(
                "average",
                {t: mean(row[t] for row in rows) for t in techniques},
                unit="fraction",
            ),
            *Metric.group(
                "max",
                {t: max(row[t] for row in rows) for t in techniques},
                unit="fraction",
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "fig7",
    title=TITLE,
    quick="12-benchmark representative SPEC subset",
    params=("subset",),
)
def _fig7(context: ExperimentContext, quick: bool, **overrides: object) -> ExperimentReport:
    """Per-benchmark and average SPEC improvements for the three techniques."""
    if quick:
        from repro.runtime.campaign import QUICK_SPEC_SUBSET

        overrides.setdefault("subset", QUICK_SPEC_SUBSET)
    return run_fig7_spec(context, **overrides)
