"""Fig. 6: actual vs. predicted performance impact of reducing the DRAM frequency.

The paper evaluates its demand predictor on more than 1600 workloads spanning
three classes (single-threaded CPU, multi-threaded CPU, graphics) and three DRAM
frequency pairs (1.6->0.8 GHz, 1.6->1.06 GHz, 2.13->1.06 GHz), reporting the
correlation between the actual and predicted performance impact (0.84-0.96) and
the prediction accuracy (94.2-98.8 %, with no false positives).

The reproduction evaluates the calibrated predictor on a disjoint synthetic
evaluation corpus: for every workload it records the *actual* normalised
performance at the lower frequency (from the performance model) and the
*predicted* performance (the degradation bound if the predictor says "low is
safe", the measured high-point performance otherwise -- i.e. the step-function
prediction the thresholds encode), then reports the per-panel correlation,
accuracy, and false-positive counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import config
from repro.core.demand import DemandPredictor, evaluate_prediction_quality
from repro.core.operating_points import OperatingPoint, OperatingPointTable
from repro.core.thresholds import ThresholdCalibrator
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context
from repro.runtime.jobs import DegradationMeasurement, PointSpec, TraceSpec
from repro.workloads.trace import WorkloadClass

TITLE = "Fig. 6: demand-predictor accuracy over the synthetic corpus"

#: ``--quick`` corpus sizes for the predictor evaluation.
QUICK_CORPUS: Dict[WorkloadClass, int] = {
    WorkloadClass.CPU_SINGLE_THREAD: 60,
    WorkloadClass.CPU_MULTI_THREAD: 30,
    WorkloadClass.GRAPHICS: 20,
}

#: The three DRAM frequency pairs of Fig. 6 (high, low), in Hz.
FREQUENCY_PAIRS: Tuple[Tuple[float, float], ...] = (
    (config.ghz(1.6), config.ghz(0.8)),
    (config.ghz(1.6), config.ghz(1.06)),
    (config.ghz(2.13), config.ghz(1.06)),
)

#: The three workload classes of Fig. 6 (rows of the 3x3 grid).
WORKLOAD_CLASSES: Tuple[WorkloadClass, ...] = (
    WorkloadClass.CPU_SINGLE_THREAD,
    WorkloadClass.CPU_MULTI_THREAD,
    WorkloadClass.GRAPHICS,
)


def _operating_points_for_pair(high: float, low: float) -> OperatingPointTable:
    """Build a two-point table for an arbitrary high/low DRAM frequency pair."""
    return OperatingPointTable(
        points=[
            OperatingPoint(
                name=f"high_{high / config.GHZ:.2f}",
                dram_frequency=high,
                interconnect_frequency=config.IO_INTERCONNECT_HIGH_FREQUENCY,
                v_sa_scale=1.0,
                v_io_scale=1.0,
            ),
            OperatingPoint(
                name=f"low_{low / config.GHZ:.2f}",
                dram_frequency=low,
                interconnect_frequency=config.IO_INTERCONNECT_LOW_FREQUENCY,
                v_sa_scale=config.V_SA_LOW_SCALE,
                v_io_scale=config.V_IO_LOW_SCALE,
            ),
        ]
    )


def _pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0 when either side is constant)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if len(x) < 2 or float(np.std(x)) == 0.0 or float(np.std(y)) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def _pair_point_specs(high: float, low: float) -> Tuple[PointSpec, PointSpec]:
    """The two :class:`PointSpec` values of one Fig. 6 frequency pair."""
    points = _operating_points_for_pair(high, low)
    return PointSpec.from_point(points.high), PointSpec.from_point(points.low)


def _evaluate_panel(
    context: ExperimentContext,
    measurements: Sequence[DegradationMeasurement],
    high: float,
    low: float,
) -> Dict[str, object]:
    """Evaluate one of the nine panels (one class, one frequency pair)."""
    platform = context.platform
    points = _operating_points_for_pair(high, low)
    calibrator = ThresholdCalibrator(platform=platform, operating_points=points)
    thresholds = calibrator.calibrate_boundary()
    predictor = DemandPredictor(thresholds=thresholds)
    bound = thresholds.degradation_bound

    actual_perf: List[float] = []
    predicted_perf: List[float] = []
    predictions: List[bool] = []
    ground_truth: List[bool] = []
    for measurement in measurements:
        degradation = measurement.degradation
        actual = 1.0 / (1.0 + degradation)
        prediction = predictor.predict(measurement.counters)
        predicted = 1.0 / (1.0 + bound) if prediction.low_point_safe else 1.0 / (1.0 + degradation)
        actual_perf.append(actual)
        predicted_perf.append(predicted)
        predictions.append(prediction.low_point_safe)
        ground_truth.append(degradation <= bound)

    quality = evaluate_prediction_quality(predictions, ground_truth)
    return {
        "high_ghz": high / config.GHZ,
        "low_ghz": low / config.GHZ,
        "workloads": len(measurements),
        "correlation": _pearson(actual_perf, predicted_perf),
        "accuracy": quality.accuracy,
        "false_positives": quality.false_positives,
        "false_negatives": quality.false_negatives,
        "mean_actual_normalized_perf": float(np.mean(actual_perf)),
        "mean_degradation": float(np.mean([1.0 / p - 1.0 for p in actual_perf])),
    }


def run_fig6_prediction(
    context: ExperimentContext | None = None,
    workloads_per_class: Optional[Dict[WorkloadClass, int]] = None,
    seed: int = config.DEFAULT_SEED + 7,
) -> ExperimentReport:
    """Reproduce the nine panels of Fig. 6 on a synthetic evaluation corpus.

    The per-workload measurements (slowdown at the low point plus high-point
    counters) are submitted as one batch of degradation jobs through the
    context's runtime, so the ~1600-point evaluation parallelizes and caches;
    the per-panel threshold calibration and prediction scoring stay local.

    The corpus a job references is addressed by the *sequence* of
    ``generate_class`` calls made on one generator (the generator's RNG
    advances per call), which the trace specs encode in their ``calls``
    parameter so workers replay the exact corpora built here.
    """
    if context is None:
        context = build_context()
    before = context.runtime.accounting()
    if workloads_per_class is None:
        workloads_per_class = {
            WorkloadClass.CPU_SINGLE_THREAD: 300,
            WorkloadClass.CPU_MULTI_THREAD: 140,
            WorkloadClass.GRAPHICS: 110,
        }

    calls = tuple(
        f"{workload_class.value}:{workloads_per_class[workload_class]}"
        for workload_class in WORKLOAD_CLASSES
    )
    jobs = []
    for call_index, workload_class in enumerate(WORKLOAD_CLASSES):
        count = workloads_per_class[workload_class]
        for high, low in FREQUENCY_PAIRS:
            high_spec, low_spec = _pair_point_specs(high, low)
            for index in range(count):
                trace_spec = TraceSpec.make(
                    "corpus",
                    seed=seed,
                    duration=1.0,
                    calls=calls,
                    call=call_index,
                    index=index,
                )
                jobs.append(context.degradation_job(trace_spec, high_spec, low_spec))
    measurements = context.runtime.measure(jobs)

    panels: List[Dict[str, object]] = []
    total_workloads = 0
    cursor = 0
    for workload_class in WORKLOAD_CLASSES:
        count = workloads_per_class[workload_class]
        for high, low in FREQUENCY_PAIRS:
            panel_measurements = measurements[cursor : cursor + count]
            cursor += count
            panel = _evaluate_panel(context, panel_measurements, high, low)
            panel["workload_class"] = workload_class.value
            panels.append(panel)
            total_workloads += count

    accuracies = [panel["accuracy"] for panel in panels]
    return ExperimentReport(
        experiment="fig6",
        title=TITLE,
        params={
            "seed": seed,
            "workloads_per_class": {
                workload_class.value: count
                for workload_class, count in workloads_per_class.items()
            },
        },
        blocks=(
            Table.from_records(
                "panels",
                panels,
                units={"high_ghz": "GHz", "low_ghz": "GHz", "accuracy": "fraction"},
            ),
            Metric("total_evaluation_points", total_workloads),
            Metric("minimum_accuracy", min(accuracies), "fraction"),
            Metric("mean_accuracy", sum(accuracies) / len(accuracies), "fraction"),
            Metric(
                "total_false_positives",
                sum(panel["false_positives"] for panel in panels),
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "fig6",
    title=TITLE,
    flags=("--tdp",),
    quick="reduced evaluation corpus (110 instead of 550 workloads)",
    params=("workloads_per_class", "seed"),
)
def _fig6(context: ExperimentContext, quick: bool, **overrides: object) -> ExperimentReport:
    """Predictor correlation/accuracy across the nine (class x pair) panels."""
    if quick:
        overrides.setdefault("workloads_per_class", QUICK_CORPUS)
    return run_fig6_prediction(context, **overrides)
