"""Fig. 8: 3DMark performance improvement of MemScale-R, CoScale-R, SysScale."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.graphics import graphics_suite


def run_fig8_graphics(context: ExperimentContext | None = None) -> Dict[str, object]:
    """Reproduce Fig. 8: per-benchmark improvements on the three 3DMark variants."""
    if context is None:
        context = build_context()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = graphics_suite()
    pairs = context.simulate_policy_matrix(
        [TraceSpec.make("graphics", name=trace.name) for trace in traces],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "memscale_redist": memscale.project(trace).performance_improvement,
                "coscale_redist": coscale.project(trace).performance_improvement,
                "sysscale": sysscale.performance_improvement_over(baseline),
                "baseline_gfx_mhz": baseline.average_gfx_frequency / 1e6,
                "sysscale_gfx_mhz": sysscale.average_gfx_frequency / 1e6,
            }
        )

    return {
        "experiment": "fig8",
        "rows": rows,
        "average": {
            "memscale_redist": mean(row["memscale_redist"] for row in rows),
            "coscale_redist": mean(row["coscale_redist"] for row in rows),
            "sysscale": mean(row["sysscale"] for row in rows),
        },
    }
