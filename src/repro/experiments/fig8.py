"""Fig. 8: 3DMark performance improvement of MemScale-R, CoScale-R, SysScale."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.coscale import CoScaleRedistProjection
from repro.baselines.memscale import MemScaleRedistProjection
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec, TraceSpec
from repro.workloads.graphics import graphics_suite

TITLE = "Fig. 8: 3DMark performance improvement"


def run_fig8_graphics(context: ExperimentContext | None = None) -> ExperimentReport:
    """Reproduce Fig. 8: per-benchmark improvements on the three 3DMark variants."""
    if context is None:
        context = build_context()
    before = context.runtime.accounting()
    memscale = MemScaleRedistProjection(platform=context.platform)
    coscale = CoScaleRedistProjection(platform=context.platform)

    traces = graphics_suite()
    pairs = context.simulate_policy_matrix(
        [TraceSpec.make("graphics", name=trace.name) for trace in traces],
        (PolicySpec.make("baseline"), PolicySpec.make("sysscale")),
    )

    rows: List[Dict[str, object]] = []
    for trace, (baseline, sysscale) in zip(traces, pairs):
        rows.append(
            {
                "workload": trace.name,
                "memscale_redist": memscale.project(trace).performance_improvement,
                "coscale_redist": coscale.project(trace).performance_improvement,
                "sysscale": sysscale.performance_improvement_over(baseline),
                "baseline_gfx_mhz": baseline.average_gfx_frequency / 1e6,
                "sysscale_gfx_mhz": sysscale.average_gfx_frequency / 1e6,
            }
        )

    techniques = ("memscale_redist", "coscale_redist", "sysscale")
    return ExperimentReport(
        experiment="fig8",
        title=TITLE,
        params={"tdp": context.platform.tdp},
        blocks=(
            Table.from_records(
                "rows",
                rows,
                units={
                    **{technique: "fraction" for technique in techniques},
                    "baseline_gfx_mhz": "MHz",
                    "sysscale_gfx_mhz": "MHz",
                },
            ),
            *Metric.group(
                "average",
                {t: mean(row[t] for row in rows) for t in techniques},
                unit="fraction",
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment("fig8", title=TITLE, flags=("--tdp",))
def _fig8(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """Per-benchmark improvements on the three 3DMark variants."""
    return run_fig8_graphics(context)
