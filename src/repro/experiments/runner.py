"""Shared experiment plumbing: platform/engine construction and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro import config
from repro.core.operating_points import OperatingPointTable, build_default_operating_points
from repro.core.sysscale import SysScaleController, default_thresholds
from repro.core.thresholds import CounterThresholds
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import Platform, build_platform


@dataclass
class ExperimentContext:
    """Everything an experiment needs: platform, engine, thresholds, operating points.

    Building the context once and sharing it across experiments avoids repeating
    the threshold calibration (the paper's offline procedure) for every figure.
    """

    platform: Platform
    engine: SimulationEngine
    thresholds: CounterThresholds
    operating_points: OperatingPointTable
    workload_duration: float = 1.0

    def sysscale(self) -> SysScaleController:
        """A fresh SysScale controller bound to this context's platform."""
        return SysScaleController(
            platform=self.platform,
            operating_points=self.operating_points,
            thresholds=self.thresholds,
        )


def build_context(
    tdp: float = config.SKYLAKE_DEFAULT_TDP,
    workload_duration: float = 1.0,
    sim_config: Optional[SimulationConfig] = None,
) -> ExperimentContext:
    """Build the default experiment context (Skylake M-6Y75, Table 2)."""
    platform = build_platform(tdp=tdp)
    operating_points = build_default_operating_points(platform)
    thresholds = default_thresholds(platform, operating_points)
    engine = SimulationEngine(platform, sim_config)
    return ExperimentContext(
        platform=platform,
        engine=engine,
        thresholds=thresholds,
        operating_points=operating_points,
        workload_duration=workload_duration,
    )


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)
