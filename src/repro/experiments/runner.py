"""Shared experiment plumbing: context construction and the runtime bridge.
(The result types and renderers live in :mod:`repro.experiments.report`;
``format_table`` is re-exported here for compatibility.)

Experiments no longer loop ``SimulationEngine.run`` themselves: they build
declarative jobs (``repro.runtime.jobs``) and submit them through the context's
:class:`ExperimentRuntime`, which deduplicates, consults the content-addressed
result cache, and optionally fans the work out over a process pool.  The
default runtime (serial, no cache) reproduces the old in-process behaviour
exactly, so calling any ``run_*`` function with no arguments still works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro import config
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import span as obs_span
from repro.core.operating_points import OperatingPointTable, build_default_operating_points
from repro.core.sysscale import SysScaleController, default_thresholds
from repro.core.thresholds import CounterThresholds
from repro.hw import HardwareSpec, resolve_hardware
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    ExecutionReport,
    Executor,
    ProgressCallback,
    SerialExecutor,
)
from repro.experiments.report import RunInfo, format_table
from repro.runtime.jobs import (
    DegradationJob,
    DegradationMeasurement,
    Job,
    PlatformSpec,
    PolicySpec,
    SimSpec,
    SimulationJob,
    TraceSpec,
)
from repro.sim.engine import SimulationConfig, SimulationEngine
from repro.sim.platform import Platform
from repro.sim.result import SimulationResult


class ExperimentRuntime:
    """The execution backend experiments submit their jobs through.

    Wraps one executor and (optionally) one result cache.  Accounting lives
    in a :class:`~repro.obs.metrics.MetricsRegistry` owned by the runtime --
    always live, independent of whether ambient ``repro.obs`` telemetry is
    enabled -- and every submission folds its :class:`ExecutionReport` (job
    counts, batch latency, engine loop totals) into it.  The legacy
    ``submitted``/``unique``/``executed``/``cache_hits`` integers are now
    read-only views over the registry, so report run accounting is populated
    from the registry rather than ad-hoc counters.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.progress = progress
        self.metrics = metrics if metrics is not None else MetricsRegistry("runtime")

    # ------------------------------------------------------------------
    # Registry-backed accounting views
    # ------------------------------------------------------------------
    @property
    def submitted(self) -> int:
        return int(self.metrics.counter("runtime.jobs_submitted").value)

    @property
    def unique(self) -> int:
        return int(self.metrics.counter("runtime.jobs_unique").value)

    @property
    def executed(self) -> int:
        return int(self.metrics.counter("runtime.jobs_executed").value)

    @property
    def cache_hits(self) -> int:
        return int(self.metrics.counter("runtime.cache_hits").value)

    def run_jobs(self, jobs: Sequence[Job]) -> ExecutionReport:
        """Execute ``jobs`` and fold the report into the metrics registry."""
        with obs_span("runtime.run_jobs", jobs=len(jobs)):
            report = self.executor.run(jobs, cache=self.cache, progress=self.progress)
        metrics = self.metrics
        metrics.counter("runtime.jobs_submitted").inc(report.submitted)
        metrics.counter("runtime.jobs_unique").inc(report.unique_jobs)
        metrics.counter("runtime.jobs_executed").inc(report.executed)
        metrics.counter("runtime.cache_hits").inc(report.cache_hits)
        metrics.timer("runtime.batch_seconds").observe(report.elapsed)
        for name, value in report.engine_stats().items():
            metrics.counter(f"runtime.engine_{name}").inc(value)
        return report

    def simulate(self, jobs: Sequence[SimulationJob]) -> List[SimulationResult]:
        """Run simulation jobs and decode the results in submission order."""
        return self.run_jobs(jobs).results()

    def measure(self, jobs: Sequence[DegradationJob]) -> List[DegradationMeasurement]:
        """Run degradation jobs and decode the measurements in submission order."""
        return self.run_jobs(jobs).results()

    def summary(self) -> str:
        """One-line accounting across every submission so far."""
        return (
            f"{self.submitted} job(s) submitted, {self.unique} unique, "
            f"{self.executed} simulated, {self.cache_hits} cache hit(s)"
        )

    def close(self) -> None:
        """Release the executor's resources (the parallel worker pool).

        One runtime serves every experiment of a session, so its
        :class:`~repro.runtime.executor.ParallelExecutor` keeps a single warm
        process pool alive across submissions; call this when the session is
        done (the CLI does, after its last target).
        """
        self.executor.close()

    def accounting(self) -> RunInfo:
        """A snapshot of the running totals (see :meth:`RunInfo.since`)."""
        return RunInfo(
            submitted=self.submitted,
            unique=self.unique,
            executed=self.executed,
            cache_hits=self.cache_hits,
        )


@dataclass
class ExperimentContext:
    """Everything an experiment needs: platform, engine, thresholds, operating
    points, and the runtime its jobs are submitted through.

    Building the context once and sharing it across experiments avoids repeating
    the threshold calibration (the paper's offline procedure) for every figure.
    """

    platform: Platform
    engine: SimulationEngine
    thresholds: CounterThresholds
    operating_points: OperatingPointTable
    workload_duration: float = 1.0
    runtime: ExperimentRuntime = field(default_factory=ExperimentRuntime)
    #: The hardware description ``platform`` was built from, when known.
    #: ``build_context`` always sets it; contexts wrapping hand-built
    #: platforms leave it ``None`` and fall back to spec verification.
    hardware: Optional[HardwareSpec] = None
    _verified_platform_spec: Optional[PlatformSpec] = field(
        default=None, init=False, repr=False
    )

    def sysscale(self) -> SysScaleController:
        """A fresh SysScale controller bound to this context's platform."""
        return SysScaleController(
            platform=self.platform,
            operating_points=self.operating_points,
            thresholds=self.thresholds,
        )

    # ------------------------------------------------------------------
    # Job construction
    # ------------------------------------------------------------------
    def platform_spec(self) -> PlatformSpec:
        """The declarative hardware description matching this context's platform.

        Contexts built by :func:`build_context` carry their
        :class:`~repro.hw.spec.HardwareSpec` directly -- the platform was
        materialized from it, so jobs built from the spec simulate exactly
        this hardware.  For contexts wrapping a hand-built platform the
        default description is derived from the platform's knobs and verified
        against it once; a platform the derived spec cannot reproduce (a
        customized SoC, modified DRAM timings) raises rather than letting
        runtime jobs silently simulate different hardware.
        """
        if self.hardware is not None:
            return self.hardware
        spec = PlatformSpec(
            tdp=self.platform.tdp,
            dram=self.platform.dram.technology.value,
            platform_fixed_power=self.platform.soc_power.platform_fixed_power,
        )
        if self._verified_platform_spec != spec:
            # describe() reports live state too (DRAM frequency, self-refresh)
            # which a previous direct engine run may have left at the low
            # operating point; compare boot states so only *configuration*
            # differences are flagged.
            self.platform.reset_to_boot()
            if spec.build().describe() != self.platform.describe():
                raise ValueError(
                    "this context's platform cannot be expressed as a "
                    "PlatformSpec (customized SoC or DRAM device?); runtime "
                    "jobs would simulate different hardware"
                )
            self._verified_platform_spec = spec
        return spec

    def sim_spec(self) -> SimSpec:
        """The declarative spec matching this context's engine configuration."""
        return SimSpec.from_config(self.engine.config)

    def simulation_job(
        self,
        trace: TraceSpec,
        policy: PolicySpec,
        peripherals: Optional[str] = None,
    ) -> SimulationJob:
        """A simulation job on this context's platform and engine configuration."""
        return SimulationJob(
            trace=trace,
            policy=policy,
            platform=self.platform_spec(),
            sim=self.sim_spec(),
            peripherals=peripherals,
        )

    def simulate_policy_matrix(
        self,
        traces: Sequence[TraceSpec],
        policies: Sequence[PolicySpec],
        peripherals: Optional[str] = None,
    ) -> List[tuple]:
        """Simulate every trace under every policy; one result tuple per trace.

        Keeps the submit-order/read-order pairing in one place: figures that
        compare policies per workload (Figs. 7-9) get ``(baseline, sysscale,
        ...)`` tuples aligned with ``traces`` instead of hand-indexing a flat
        result list.
        """
        jobs = [
            self.simulation_job(trace, policy, peripherals=peripherals)
            for trace in traces
            for policy in policies
        ]
        results = self.runtime.simulate(jobs)
        width = len(policies)
        return [
            tuple(results[index * width : (index + 1) * width])
            for index in range(len(traces))
        ]

    def degradation_job(self, trace: TraceSpec, high, low) -> DegradationJob:
        """A degradation measurement between two operating points (specs or points)."""
        from repro.runtime.jobs import PointSpec

        if not isinstance(high, PointSpec):
            high = PointSpec.from_point(high)
        if not isinstance(low, PointSpec):
            low = PointSpec.from_point(low)
        return DegradationJob(
            trace=trace, high=high, low=low, platform=self.platform_spec()
        )


def build_context(
    tdp: Optional[float] = None,
    workload_duration: float = 1.0,
    sim_config: Optional[SimulationConfig] = None,
    runtime: Optional[ExperimentRuntime] = None,
    hardware: Optional[object] = None,
) -> ExperimentContext:
    """Build an experiment context for a hardware description.

    ``hardware`` is a registered platform name, a
    :class:`~repro.hw.spec.HardwareSpec`, or ``None`` for the default Skylake
    M-6Y75 of Table 2.  ``tdp``, when given, is applied as a derivation over
    that description (the historical ``build_context(tdp=...)`` call shape).
    """
    spec = resolve_hardware(hardware)
    if tdp is not None and tdp != spec.tdp:
        spec = spec.derive(tdp=tdp)
    platform = spec.build()
    if spec.dram.technology == "ddr4":
        # Match the operating-point table to the DRAM family, exactly as the
        # runtime's sysscale builder does for DDR4 platforms.
        from repro.core.operating_points import build_ddr4_operating_points

        operating_points = build_ddr4_operating_points()
    else:
        operating_points = build_default_operating_points(platform)
    thresholds = default_thresholds(platform, operating_points)
    engine = SimulationEngine(platform, sim_config)
    return ExperimentContext(
        platform=platform,
        engine=engine,
        thresholds=thresholds,
        operating_points=operating_points,
        workload_duration=workload_duration,
        runtime=runtime or ExperimentRuntime(),
        hardware=spec,
    )


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    values = list(values)
    if not values:
        raise ValueError("cannot average an empty sequence")
    return sum(values) / len(values)
