"""Fig. 3: memory bandwidth demand over time and per IO/compute component.

(a) bandwidth demand over time for three SPEC workloads and a 3DMark workload;
(b) average bandwidth demand of the display engine, ISP engine, and graphics
    engines across configurations.
"""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Series, Table
from repro.experiments.runner import ExperimentContext, build_context
from repro.workloads.graphics import graphics_workload
from repro.workloads.io_devices import STANDARD_CONFIGURATIONS
from repro.workloads.spec2006 import spec_workload

#: The workloads plotted in Fig. 3(a).
FIG3_WORKLOADS = ("400.perlbench", "473.astar", "470.lbm")

TITLE = "Fig. 3: memory bandwidth demand of workloads and displays"


def run_fig3_bandwidth_demand(
    context: ExperimentContext | None = None,
    sample_interval: float = config.ms(100),
) -> ExperimentReport:
    """Reproduce Fig. 3(a) time series and Fig. 3(b) per-component demands."""
    if context is None:
        context = build_context()

    timelines: List[Series] = []
    traces = [
        spec_workload(name, duration=context.workload_duration)
        for name in FIG3_WORKLOADS
    ] + [graphics_workload("3DMark06")]
    for trace in traces:
        timelines.append(
            Series.from_points(
                f"timelines/{trace.name}",
                (
                    (t, bw / config.GBPS)
                    for t, bw in trace.bandwidth_timeline(sample_interval)
                ),
                x_label="time_s",
                y_label="bandwidth_gbps",
                unit="GB/s",
            )
        )

    component_rows: List[Dict[str, object]] = []
    peak = config.LPDDR3_PEAK_BANDWIDTH
    for config_name, peripheral in STANDARD_CONFIGURATIONS.items():
        component_rows.append(
            {
                "configuration": config_name,
                "display_bandwidth_gbps": peripheral.display.bandwidth_demand / config.GBPS,
                "isp_bandwidth_gbps": peripheral.camera.bandwidth_demand / config.GBPS,
                "fraction_of_peak": peripheral.static_bandwidth_demand / peak,
            }
        )
    for gfx_name in ("3DMark06", "3DMark11", "3DMark Vantage"):
        trace = graphics_workload(gfx_name)
        gfx_demand = sum(
            phase.gfx_bandwidth_demand * phase.duration for phase in trace.phases
        ) / trace.total_duration
        component_rows.append(
            {
                "configuration": f"gfx_{gfx_name}",
                "display_bandwidth_gbps": 0.0,
                "isp_bandwidth_gbps": 0.0,
                "gfx_bandwidth_gbps": gfx_demand / config.GBPS,
                "fraction_of_peak": gfx_demand / peak,
            }
        )

    return ExperimentReport(
        experiment="fig3",
        title=TITLE,
        params={
            "duration": context.workload_duration,
            "sample_interval": sample_interval,
        },
        blocks=(
            *timelines,
            Table.from_records(
                "component_demand",
                component_rows,
                units={
                    "display_bandwidth_gbps": "GB/s",
                    "isp_bandwidth_gbps": "GB/s",
                    "gfx_bandwidth_gbps": "GB/s",
                    "fraction_of_peak": "fraction",
                },
            ),
        ),
    )


@experiment("fig3", title=TITLE)
def _fig3(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """Bandwidth-demand timelines plus per-component display/ISP/graphics demand."""
    return run_fig3_bandwidth_demand(context)
