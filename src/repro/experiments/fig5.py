"""Fig. 5 / Sec. 5: the SysScale DVFS transition flow and its latency budget."""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.core.flow import TransitionFlow
from repro.experiments.runner import ExperimentContext, build_context


def run_fig5_transition_flow(
    context: ExperimentContext | None = None,
) -> Dict[str, object]:
    """Execute the Fig. 5 flow in both directions and report per-step latencies."""
    if context is None:
        context = build_context()
    platform = context.platform
    points = context.operating_points

    flow = TransitionFlow(
        rails=platform.soc.rails,
        interconnect=platform.soc.interconnect_fabric,
        dram=platform.dram,
        mrc_sram=platform.mrc_sram,
        mrc_registers=platform.mrc_registers,
    )

    reports: List[Dict[str, object]] = []
    down = flow.execute(points.high, points.low)
    reports.append(down.as_dict())
    up = flow.execute(points.low, points.high)
    reports.append(up.as_dict())

    return {
        "experiment": "fig5",
        "transitions": reports,
        "budget_us": config.TRANSITION_TOTAL_LATENCY_BUDGET / config.US,
        "worst_latency_us": flow.worst_observed_latency / config.US,
        "within_budget": all(report["within_budget"] for report in reports),
    }
