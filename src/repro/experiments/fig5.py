"""Fig. 5 / Sec. 5: the SysScale DVFS transition flow and its latency budget."""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.core.flow import TransitionFlow
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context

TITLE = "Fig. 5: SysScale transition-flow latency breakdown"


def run_fig5_transition_flow(
    context: ExperimentContext | None = None,
) -> ExperimentReport:
    """Execute the Fig. 5 flow in both directions and report per-step latencies."""
    if context is None:
        context = build_context()
    platform = context.platform
    points = context.operating_points

    flow = TransitionFlow(
        rails=platform.soc.rails,
        interconnect=platform.soc.interconnect_fabric,
        dram=platform.dram,
        mrc_sram=platform.mrc_sram,
        mrc_registers=platform.mrc_registers,
    )

    reports: List[Dict[str, object]] = []
    down = flow.execute(points.high, points.low)
    reports.append(down.as_dict())
    up = flow.execute(points.low, points.high)
    reports.append(up.as_dict())

    return ExperimentReport(
        experiment="fig5",
        title=TITLE,
        params={"tdp": platform.tdp},
        blocks=(
            Table.from_records("transitions", reports),
            Metric(
                "budget_us",
                config.TRANSITION_TOTAL_LATENCY_BUDGET / config.US,
                "us",
            ),
            Metric("worst_latency_us", flow.worst_observed_latency / config.US, "us"),
            Metric(
                "within_budget",
                all(report["within_budget"] for report in reports),
            ),
        ),
    )


@experiment("fig5", title=TITLE, flags=("--tdp",))
def _fig5(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """Per-step latencies of the Fig. 5 DVFS flow in both directions."""
    return run_fig5_transition_flow(context)
