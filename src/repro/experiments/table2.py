"""Table 2: SoC and memory parameters of the evaluation platform."""

from __future__ import annotations

from typing import Dict, List

from repro import config
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Table
from repro.experiments.runner import ExperimentContext, build_context
from repro.hw import get_hardware

TITLE = "Table 2: evaluated system parameters"


def run_table2(context: ExperimentContext | None = None) -> ExperimentReport:
    """Reproduce Table 2: the platform parameters used throughout the evaluation."""
    if context is None:
        context = build_context()
    skylake = context.platform.soc
    # The motivation platform is addressable by name like every other spec; no
    # SoC needs to be materialized just to quote its identity.
    broadwell = get_hardware("broadwell")

    rows: List[Dict[str, object]] = [
        {"parameter": "Motivation SoC", "value": broadwell.soc_name},
        {"parameter": "Evaluation SoC", "value": skylake.name},
        {
            "parameter": "CPU core base frequency (GHz)",
            "value": skylake.cpu.base_frequency / config.GHZ,
        },
        {
            "parameter": "Graphics engine base frequency (MHz)",
            "value": skylake.gfx.base_frequency / config.MHZ,
        },
        {
            "parameter": "L3 cache / LLC (MiB)",
            "value": skylake.uncore.llc_bytes / (1024 * 1024),
        },
        {"parameter": "Thermal design power (W)", "value": skylake.tdp},
        {"parameter": "Process node (nm)", "value": skylake.process_node_nm},
        {
            "parameter": "Memory",
            "value": (
                f"LPDDR3-{int(skylake.dram.max_frequency / config.MHZ)}, non-ECC, "
                f"{skylake.dram.channels}-channel, "
                f"{skylake.dram.organization.capacity_bytes // 1024 ** 3} GB"
            ),
        },
        {
            "parameter": "Peak memory bandwidth (GB/s)",
            "value": skylake.peak_memory_bandwidth / config.GBPS,
        },
    ]
    return ExperimentReport(
        experiment="table2",
        title=TITLE,
        params={"tdp": skylake.tdp},
        blocks=(Table.from_records("rows", rows),),
    )


@experiment("table2", title=TITLE, flags=("--tdp",))
def _table2(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """The SoC and memory parameters of the evaluation platform."""
    return run_table2(context)
