"""The experiment registry: typed specs behind every table/figure entry point.

Each experiment module registers itself with the :func:`experiment` decorator::

    @experiment(
        "fig7",
        title="Fig. 7: SPEC CPU2006 performance improvement",
        flags=("--duration", "--tdp"),
        quick="12-benchmark representative SPEC subset",
        params=("subset",),
    )
    def _fig7(context, quick, **overrides):
        ...
        return ExperimentReport(...)

The registered :class:`ExperimentSpec` is the single source of truth the CLI is
generated from: target names, per-target help text, which context flags an
experiment honors (the ignored-flags warnings are *derived* -- see
:attr:`ExperimentSpec.ignored_flags` -- instead of hand-synced), what
``--quick`` does, and which extra keyword parameters the programmatic API
(:class:`repro.api.Session`) accepts for it.

Specs live in their experiment modules, so the registry is complete exactly
when ``repro.experiments`` is imported; :func:`registry` forces that import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.experiments.report import ExperimentReport
from repro.experiments.runner import ExperimentContext
from repro.obs.spans import span as obs_span

#: Context flags the ``run`` CLI exposes that not every experiment honors.
CONTEXT_FLAGS: Tuple[str, ...] = ("--duration", "--tdp")

#: A registered entry point: ``fn(context, quick, **overrides) -> ExperimentReport``.
ExperimentRunner = Callable[..., ExperimentReport]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: identity, CLI surface, and entry point."""

    name: str
    title: str
    runner: ExperimentRunner
    description: str = ""
    #: The context flags (subset of :data:`CONTEXT_FLAGS`) this experiment honors.
    flags: Tuple[str, ...] = CONTEXT_FLAGS
    #: What ``--quick`` changes, or ``None`` if quick mode has no effect.
    quick: Optional[str] = None
    #: Extra keyword overrides the runner accepts (Session API parameters).
    params: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = tuple(flag for flag in self.flags if flag not in CONTEXT_FLAGS)
        if unknown:
            raise ValueError(
                f"experiment {self.name!r} declares unknown context flags {unknown}; "
                f"known: {CONTEXT_FLAGS}"
            )

    @property
    def ignored_flags(self) -> Tuple[str, ...]:
        """Context flags this experiment does *not* honor (derived, not synced)."""
        return tuple(flag for flag in CONTEXT_FLAGS if flag not in self.flags)

    def run(
        self,
        context: ExperimentContext,
        quick: bool = False,
        **overrides: object,
    ) -> ExperimentReport:
        """Execute the experiment and validate the report it returns."""
        unknown = sorted(set(overrides) - set(self.params))
        if unknown:
            accepted = ", ".join(self.params) if self.params else "none"
            raise TypeError(
                f"experiment {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: {accepted}"
            )
        with obs_span("experiment.run", experiment=self.name, quick=quick):
            report = self.runner(context, quick, **overrides)
        if not isinstance(report, ExperimentReport):
            raise TypeError(
                f"experiment {self.name!r} returned {type(report).__name__}, "
                "expected ExperimentReport"
            )
        if report.experiment != self.name:
            raise ValueError(
                f"experiment {self.name!r} returned a report named "
                f"{report.experiment!r}"
            )
        return report

    @property
    def help_text(self) -> str:
        """One per-target help line assembled entirely from the spec."""
        notes = []
        if self.quick:
            notes.append(f"--quick: {self.quick}")
        if self.ignored_flags:
            notes.append(f"ignores {'/'.join(self.ignored_flags)}")
        if self.params:
            notes.append(f"api params: {', '.join(self.params)}")
        suffix = f" ({'; '.join(notes)})" if notes else ""
        return f"{self.title}{suffix}"


#: Every registered experiment, by name (populated by module import).
REGISTRY: Dict[str, ExperimentSpec] = {}


def experiment(
    name: str,
    *,
    title: str,
    description: str = "",
    flags: Tuple[str, ...] = CONTEXT_FLAGS,
    quick: Optional[str] = None,
    params: Tuple[str, ...] = (),
) -> Callable[[ExperimentRunner], ExperimentRunner]:
    """Register ``fn(context, quick, **overrides)`` as an experiment spec."""

    def decorate(fn: ExperimentRunner) -> ExperimentRunner:
        if name in REGISTRY:
            raise ValueError(f"experiment {name!r} is already registered")
        doc = (fn.__doc__ or "").strip()
        REGISTRY[name] = ExperimentSpec(
            name=name,
            title=title,
            runner=fn,
            description=description or (doc.splitlines()[0] if doc else ""),
            flags=tuple(flags),
            quick=quick,
            params=tuple(params),
        )
        return fn

    return decorate


def registry() -> Dict[str, ExperimentSpec]:
    """The complete registry (forces every experiment module to be imported)."""
    import repro.experiments  # noqa: F401  (registers all specs on import)

    return REGISTRY


def get_spec(name: str) -> ExperimentSpec:
    """Look up one spec by name, with a helpful error listing known targets."""
    specs = registry()
    spec = specs.get(name)
    if spec is None:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(specs))}"
        )
    return spec
