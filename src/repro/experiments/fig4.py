"""Fig. 4: impact of unoptimized MRC values on a peak-bandwidth microbenchmark."""

from __future__ import annotations

from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric
from repro.experiments.runner import ExperimentContext, build_context
from repro.workloads.microbenchmarks import peak_bandwidth_microbenchmark

TITLE = "Fig. 4: impact of unoptimized MRC register values"


def run_fig4_mrc_impact(context: ExperimentContext | None = None) -> ExperimentReport:
    """Reproduce Fig. 4: performance and power penalty of stale MRC registers.

    Both runs use the reduced (MD-DVFS) memory operating point; the only
    difference is whether the MC/DDRIO/DRAM configuration registers were
    re-trained for the new frequency (SysScale behaviour) or left at the values
    trained for the boot frequency (prior-work behaviour).
    """
    if context is None:
        context = build_context()
    # A dedicated engine with bandwidth recording enabled, so the achieved
    # throughput of the microbenchmark can be reported alongside the penalties.
    from repro.sim.engine import SimulationConfig, SimulationEngine

    engine = SimulationEngine(
        context.platform, SimulationConfig(record_bandwidth_samples=True)
    )
    trace = peak_bandwidth_microbenchmark()

    optimized = engine.run(trace, StaticMdDvfsPolicy(mrc_optimized=True))
    unoptimized = engine.run(trace, StaticMdDvfsPolicy(mrc_optimized=False))

    performance_degradation = (
        unoptimized.execution_time / optimized.execution_time - 1.0
    )
    memory_power_optimized = (
        optimized.energy.memory + optimized.energy.io
    ) / optimized.execution_time
    memory_power_unoptimized = (
        unoptimized.energy.memory + unoptimized.energy.io
    ) / unoptimized.execution_time
    memory_power_increase = memory_power_unoptimized / memory_power_optimized - 1.0
    soc_power_increase = unoptimized.average_power / optimized.average_power - 1.0

    return ExperimentReport(
        experiment="fig4",
        title=TITLE,
        params={"tdp": context.platform.tdp},
        blocks=(
            Metric("performance_degradation", performance_degradation, "fraction"),
            Metric("memory_power_increase", memory_power_increase, "fraction"),
            Metric("soc_power_increase", soc_power_increase, "fraction"),
            Metric(
                "optimized_bandwidth_gbps",
                optimized.average_achieved_bandwidth / 1e9,
                "GB/s",
            ),
            Metric(
                "unoptimized_bandwidth_gbps",
                unoptimized.average_achieved_bandwidth / 1e9,
                "GB/s",
            ),
        ),
    )


@experiment("fig4", title=TITLE, flags=("--tdp",))
def _fig4(context: ExperimentContext, quick: bool) -> ExperimentReport:
    """Performance and power penalty of stale MRC registers at the low point."""
    return run_fig4_mrc_impact(context)
