"""Fig. 4: impact of unoptimized MRC values on a peak-bandwidth microbenchmark."""

from __future__ import annotations

from typing import Dict

from repro.baselines.md_dvfs import StaticMdDvfsPolicy
from repro.experiments.runner import ExperimentContext, build_context
from repro.workloads.microbenchmarks import peak_bandwidth_microbenchmark


def run_fig4_mrc_impact(context: ExperimentContext | None = None) -> Dict[str, object]:
    """Reproduce Fig. 4: performance and power penalty of stale MRC registers.

    Both runs use the reduced (MD-DVFS) memory operating point; the only
    difference is whether the MC/DDRIO/DRAM configuration registers were
    re-trained for the new frequency (SysScale behaviour) or left at the values
    trained for the boot frequency (prior-work behaviour).
    """
    if context is None:
        context = build_context()
    # A dedicated engine with bandwidth recording enabled, so the achieved
    # throughput of the microbenchmark can be reported alongside the penalties.
    from repro.sim.engine import SimulationConfig, SimulationEngine

    engine = SimulationEngine(
        context.platform, SimulationConfig(record_bandwidth_samples=True)
    )
    trace = peak_bandwidth_microbenchmark()

    optimized = engine.run(trace, StaticMdDvfsPolicy(mrc_optimized=True))
    unoptimized = engine.run(trace, StaticMdDvfsPolicy(mrc_optimized=False))

    performance_degradation = (
        unoptimized.execution_time / optimized.execution_time - 1.0
    )
    memory_power_optimized = (
        optimized.energy.memory + optimized.energy.io
    ) / optimized.execution_time
    memory_power_unoptimized = (
        unoptimized.energy.memory + unoptimized.energy.io
    ) / unoptimized.execution_time
    memory_power_increase = memory_power_unoptimized / memory_power_optimized - 1.0
    soc_power_increase = unoptimized.average_power / optimized.average_power - 1.0

    return {
        "experiment": "fig4",
        "performance_degradation": performance_degradation,
        "memory_power_increase": memory_power_increase,
        "soc_power_increase": soc_power_increase,
        "optimized_bandwidth_gbps": optimized.average_achieved_bandwidth / 1e9,
        "unoptimized_bandwidth_gbps": unoptimized.average_achieved_bandwidth / 1e9,
    }
