"""Scenario robustness: SysScale vs. baselines across the synthesized catalog.

The paper's evaluation (Figs. 7-9) shows SysScale winning on the workloads it
was designed around.  This experiment asks the harder question the ROADMAP's
north star implies: does the policy stay ahead on workloads *nobody hand-built*
-- bursty, ramping, idle-heavy, adversarially memory-thrashing, co-resident --
and does it ever lose?  Every scenario in the :data:`repro.scenarios.SCENARIOS`
catalog is simulated under the fixed baseline, SysScale, and the static MD-DVFS
baseline (Table 1), through the runtime, so the whole study parallelizes and
caches like any other figure.

Reported per scenario: energy reduction and performance impact of each managed
policy vs. the fixed baseline, plus SysScale's low-point residency (how often
the policy judged scaling safe).  The summary singles out worst cases: the
scenario where SysScale helps least, and the largest performance loss it ever
inflicts -- the numbers a skeptical reviewer would ask for first.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.api import experiment
from repro.experiments.report import ExperimentReport, Metric, Table
from repro.experiments.runner import ExperimentContext, build_context, mean
from repro.runtime.jobs import PolicySpec
from repro.scenarios.generators import GENERATORS
from repro.scenarios.registry import SCENARIOS, catalog_trace_specs

#: Managed policies compared against the fixed baseline.
MANAGED_POLICIES = ("sysscale", "md_dvfs")

TITLE = "Scenario robustness: SysScale vs. baselines across the synthesized catalog"


def run_scenario_robustness(
    context: Optional[ExperimentContext] = None,
    subset: Optional[Sequence[str]] = None,
) -> ExperimentReport:
    """Sweep the scenario catalog under baseline, SysScale, and MD-DVFS."""
    if context is None:
        context = build_context()
    before = context.runtime.accounting()
    names = sorted(SCENARIOS) if subset is None else list(subset)
    policies = [PolicySpec.make("baseline")] + [
        PolicySpec.make(name) for name in MANAGED_POLICIES
    ]
    tuples = context.simulate_policy_matrix(catalog_trace_specs(names), policies)

    rows: List[Dict[str, object]] = []
    for name, (baseline, sysscale, md_dvfs) in zip(names, tuples):
        spec = SCENARIOS[name]
        rows.append(
            {
                "scenario": name,
                "generator": spec.generator,
                "class": GENERATORS[spec.generator].workload_class.value,
                "baseline_energy_j": baseline.energy.total,
                "sysscale_energy_reduction": sysscale.energy_reduction_vs(baseline),
                "sysscale_perf_impact": sysscale.performance_improvement_over(baseline),
                "sysscale_low_residency": sysscale.low_point_residency,
                "md_dvfs_energy_reduction": md_dvfs.energy_reduction_vs(baseline),
                "md_dvfs_perf_impact": md_dvfs.performance_improvement_over(baseline),
            }
        )

    worst_energy = min(rows, key=lambda row: row["sysscale_energy_reduction"])
    worst_perf = min(rows, key=lambda row: row["sysscale_perf_impact"])
    return ExperimentReport(
        experiment="robustness",
        title=TITLE,
        params={"subset": subset},
        blocks=(
            Metric("scenarios", len(rows)),
            Table.from_records(
                "rows",
                rows,
                units={
                    "baseline_energy_j": "J",
                    "sysscale_energy_reduction": "fraction",
                    "sysscale_perf_impact": "fraction",
                    "sysscale_low_residency": "fraction",
                    "md_dvfs_energy_reduction": "fraction",
                    "md_dvfs_perf_impact": "fraction",
                },
            ),
            *Metric.group(
                "average",
                {
                    "sysscale_energy_reduction": mean(
                        row["sysscale_energy_reduction"] for row in rows
                    ),
                    "sysscale_perf_impact": mean(
                        row["sysscale_perf_impact"] for row in rows
                    ),
                    "md_dvfs_energy_reduction": mean(
                        row["md_dvfs_energy_reduction"] for row in rows
                    ),
                    "md_dvfs_perf_impact": mean(
                        row["md_dvfs_perf_impact"] for row in rows
                    ),
                },
                unit="fraction",
            ),
            Metric(
                "worst_case/min_energy_reduction_scenario",
                worst_energy["scenario"],
            ),
            Metric(
                "worst_case/min_energy_reduction",
                worst_energy["sysscale_energy_reduction"],
                "fraction",
            ),
            Metric("worst_case/max_perf_loss_scenario", worst_perf["scenario"]),
            Metric(
                "worst_case/max_perf_loss",
                worst_perf["sysscale_perf_impact"],
                "fraction",
            ),
            Metric(
                "wins_on_energy",
                sum(
                    1
                    for row in rows
                    if row["sysscale_energy_reduction"]
                    >= row["md_dvfs_energy_reduction"]
                ),
            ),
        ),
        run=context.runtime.accounting().since(before),
    )


@experiment(
    "robustness",
    title=TITLE,
    flags=("--tdp",),
    quick="one representative scenario per generator family",
    params=("subset",),
)
def _robustness(
    context: ExperimentContext, quick: bool, **overrides: object
) -> ExperimentReport:
    """Per-scenario energy/performance deltas plus SysScale's worst cases."""
    if quick:
        from repro.runtime.campaign import QUICK_SCENARIO_SUBSET

        overrides.setdefault("subset", QUICK_SCENARIO_SUBSET)
    return run_scenario_robustness(context, **overrides)
