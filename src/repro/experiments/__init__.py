"""Experiment harness: one module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning a structured
:class:`~repro.experiments.report.ExperimentReport` (typed ``Table`` /
``Series`` / ``Metric`` blocks plus run metadata; the report also supports
read-only dict access over the pre-report legacy shape), and registers itself
in the :mod:`repro.experiments.api` registry with an :func:`@experiment
<repro.experiments.api.experiment>` decorator.  The ``python -m repro`` CLI,
the :class:`repro.api.Session` facade, and the benchmark suite
(``benchmarks/``) are all generated from / driven by that registry.
"""

from repro.experiments.api import (
    CONTEXT_FLAGS,
    REGISTRY,
    ExperimentSpec,
    experiment,
    get_spec,
    registry,
)
from repro.experiments.report import (
    ExperimentReport,
    Metric,
    RunInfo,
    Series,
    Table,
    format_table,
    render_csv,
    render_json,
    render_text,
)
from repro.experiments.runner import (
    ExperimentContext,
    ExperimentRuntime,
    build_context,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig2 import run_fig2_motivation
from repro.experiments.fig3 import run_fig3_bandwidth_demand
from repro.experiments.fig4 import run_fig4_mrc_impact
from repro.experiments.fig5 import run_fig5_transition_flow
from repro.experiments.fig6 import run_fig6_prediction
from repro.experiments.fig7 import run_fig7_spec
from repro.experiments.fig8 import run_fig8_graphics
from repro.experiments.fig9 import run_fig9_battery_life
from repro.experiments.fig10 import run_fig10_tdp_sensitivity
from repro.experiments.hwsweep import run_hwsweep
from repro.experiments.scenario_robustness import run_scenario_robustness
from repro.experiments.sensitivity import run_dram_frequency_sensitivity

__all__ = [
    "CONTEXT_FLAGS",
    "REGISTRY",
    "ExperimentContext",
    "ExperimentReport",
    "ExperimentRuntime",
    "ExperimentSpec",
    "Metric",
    "RunInfo",
    "Series",
    "Table",
    "build_context",
    "experiment",
    "format_table",
    "get_spec",
    "registry",
    "render_csv",
    "render_json",
    "render_text",
    "run_table1",
    "run_table2",
    "run_fig2_motivation",
    "run_fig3_bandwidth_demand",
    "run_fig4_mrc_impact",
    "run_fig5_transition_flow",
    "run_fig6_prediction",
    "run_fig7_spec",
    "run_fig8_graphics",
    "run_fig9_battery_life",
    "run_fig10_tdp_sensitivity",
    "run_hwsweep",
    "run_scenario_robustness",
    "run_dram_frequency_sensitivity",
]
