"""Experiment harness: one module per table/figure of the paper's evaluation.

Each experiment module exposes a ``run_*`` function returning a plain-dict result
(rows/series mirroring what the paper reports) and a ``format_*`` helper that turns
it into a printable table.  The benchmark suite (``benchmarks/``) calls these
functions so every table and figure can be regenerated with
``pytest benchmarks/ --benchmark-only`` or by running the example scripts.
"""

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentRuntime,
    build_context,
    format_table,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.fig2 import run_fig2_motivation
from repro.experiments.fig3 import run_fig3_bandwidth_demand
from repro.experiments.fig4 import run_fig4_mrc_impact
from repro.experiments.fig5 import run_fig5_transition_flow
from repro.experiments.fig6 import run_fig6_prediction
from repro.experiments.fig7 import run_fig7_spec
from repro.experiments.fig8 import run_fig8_graphics
from repro.experiments.fig9 import run_fig9_battery_life
from repro.experiments.fig10 import run_fig10_tdp_sensitivity
from repro.experiments.scenario_robustness import run_scenario_robustness
from repro.experiments.sensitivity import run_dram_frequency_sensitivity

__all__ = [
    "ExperimentContext",
    "ExperimentRuntime",
    "build_context",
    "format_table",
    "run_table1",
    "run_table2",
    "run_fig2_motivation",
    "run_fig3_bandwidth_demand",
    "run_fig4_mrc_impact",
    "run_fig5_transition_flow",
    "run_fig6_prediction",
    "run_fig7_spec",
    "run_fig8_graphics",
    "run_fig9_battery_life",
    "run_fig10_tdp_sensitivity",
    "run_scenario_robustness",
    "run_dram_frequency_sensitivity",
]
